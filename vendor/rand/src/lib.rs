//! Offline, dependency-free subset of the [`rand`] crate (0.8 API).
//!
//! Vendored because the build environment has no network access to
//! crates.io. Provides [`rngs::StdRng`] (an xoshiro256++ generator),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension trait with
//! `gen_range`/`gen`/`gen_bool` over integer and float ranges — the
//! surface the netsim traffic generators use. Determinism is the whole
//! point: the same seed must always yield the same stream.
//!
//! [`rand`]: https://docs.rs/rand/0.8

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// RNGs that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is < 2^-64 for every span the workspace
                // uses; acceptable for simulation traffic.
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $ty
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low must be < high");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! inclusive_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range: low must be <= high");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $ty
            }
        }
    )*};
}

inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a value from the full domain of the type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value from the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let s = [
                StdRng::splitmix(&mut sm),
                StdRng::splitmix(&mut sm),
                StdRng::splitmix(&mut sm),
                StdRng::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }
}
