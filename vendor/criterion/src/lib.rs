//! Offline, dependency-free subset of the [`criterion`] benchmark
//! harness.
//!
//! Vendored because the build environment has no network access to
//! crates.io. The statistical machinery of real criterion is replaced by
//! a simple calibrated loop: each benchmark warms up for
//! `warm_up_time`, then runs batches until `measurement_time` elapses,
//! and the mean ns/iteration (plus throughput, when declared) is printed
//! in a criterion-like format. The API mirror is faithful enough that
//! swapping the real crate back in is a one-line Cargo.toml change.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting how much work one iteration performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// One iteration processes this many bytes (binary prefixes).
    Bytes(u64),
    /// One iteration processes this many bytes (decimal prefixes).
    BytesDecimal(u64),
    /// One iteration processes this many elements/packets/messages.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with both a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            function: Some(s.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut batch = 1u64;
        while Instant::now() < warm_deadline {
            for _ in 0..batch {
                black_box(routine());
            }
            batch = (batch * 2).min(4096);
        }
        // Measurement: timed batches until the measurement budget is
        // spent, with at least `sample_size` iterations overall.
        let mut total_iters = 0u64;
        let mut total_ns = 0u128;
        let deadline = Instant::now() + self.config.measurement_time;
        while Instant::now() < deadline || total_iters < self.config.sample_size as u64 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_ns += start.elapsed().as_nanos();
            total_iters += batch;
            if total_iters >= u64::MAX / 2 {
                break;
            }
        }
        self.mean_ns = total_ns as f64 / total_iters as f64;
    }

    /// `iter` variant that feeds each call a fresh input.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut inputs = Vec::new();
        self.iter(|| {
            if inputs.is_empty() {
                inputs = (0..64).map(|_| setup()).collect();
            }
            routine(inputs.pop().expect("batch refilled above"))
        });
    }
}

/// How many inputs `iter_batched` materializes per batch.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

#[derive(Debug, Clone)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
            sample_size: 30,
        }
    }
}

/// The benchmark manager: owns configuration, doles out groups.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets how long each benchmark warms up before measurement.
    pub fn warm_up_time(mut self, dur: Duration) -> Criterion {
        self.config.warm_up_time = dur;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, dur: Duration) -> Criterion {
        self.config.measurement_time = dur;
        self
    }

    /// Sets the minimum number of measured iterations.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 10, "sample_size must be >= 10");
        self.config.sample_size = n;
        self
    }

    /// Accepted for CLI compatibility; argument filtering is not
    /// implemented in the vendored harness.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let config = self.config.clone();
        run_one(&config, None, id.into(), None, f);
        self
    }
}

/// A set of benchmarks reported under a common name.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration of subsequent benchmarks does.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.criterion.config.measurement_time = dur;
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.config.sample_size = n;
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let config = self.criterion.config.clone();
        run_one(&config, Some(&self.name), id.into(), self.throughput, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let config = self.criterion.config.clone();
        run_one(&config, Some(&self.name), id.into(), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (formatting no-op in the vendored harness).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    config: &Config,
    group: Option<&str>,
    id: BenchmarkId,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        config,
        mean_ns: f64::NAN,
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{}", id.render()),
        None => id.render(),
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            let gib_s = n as f64 / bencher.mean_ns * 1e9 / (1u64 << 30) as f64;
            format!("  thrpt: {gib_s:.3} GiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let melem_s = n as f64 / bencher.mean_ns * 1e9 / 1e6;
            format!("  thrpt: {melem_s:.3} Melem/s")
        }
        None => String::new(),
    };
    println!("{label:<50} time: {:>12.1} ns/iter{rate}", bencher.mean_ns);
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; the
            // vendored harness runs everything unconditionally.
            $( $group(); )+
        }
    };
}
