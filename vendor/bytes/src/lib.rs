//! Offline, dependency-free subset of the [`bytes`] crate.
//!
//! The workspace vendors this because the build environment has no
//! network access to crates.io. Only the API surface the workspace
//! actually uses is implemented: [`Bytes`] (cheaply clonable,
//! reference-counted immutable buffer), [`BytesMut`] (growable builder
//! buffer), and the [`Buf`]/[`BufMut`] cursor traits with big-endian
//! integer accessors.
//!
//! Semantics match the real crate for this subset: `get_*`/`advance`
//! panic on underflow, `Bytes::clone` is O(1), `BytesMut::freeze` hands
//! the accumulated storage to a `Bytes` without copying.
//!
//! [`bytes`]: https://docs.rs/bytes

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Count of fresh backing buffers materialised since process start.
///
/// Stub-only diagnostic (the real `bytes` crate has no equivalent):
/// bumped whenever new backing storage for payload bytes is allocated
/// or deep-copied — [`Bytes::copy_from_slice`], `BytesMut::from(&[u8])`,
/// [`BytesMut::with_capacity`] with a non-zero capacity. *Not* bumped by
/// ownership transfers ([`BytesMut::freeze`], `Bytes::from(Vec<u8>)`),
/// refcount clones, slicing, or in-place growth of an existing
/// `BytesMut`. Zero-copy regression tests take deltas of
/// [`buffer_allocs`] around a hot path to prove it never copies.
static BUFFER_ALLOCS: AtomicU64 = AtomicU64::new(0);

#[inline]
fn note_buffer_alloc() {
    BUFFER_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Returns the process-wide count of backing-buffer allocations.
///
/// See the module's private `BUFFER_ALLOCS` counter documentation for
/// exactly what is counted. Take a delta
/// around the code under test; the counter is monotonic and shared by
/// all threads, so single-threaded tests get exact counts.
pub fn buffer_allocs() -> u64 {
    BUFFER_ALLOCS.load(Ordering::Relaxed)
}

/// Backing storage: refcounted heap vector or borrowed static slice.
///
/// Keeping the heap variant an `Arc<Vec<u8>>` (rather than `Arc<[u8]>`)
/// makes `BytesMut::freeze` a true ownership transfer — `Arc::new(vec)`
/// moves the existing heap block instead of copying it the way
/// `Arc::<[u8]>::from(vec)` does.
#[derive(Clone)]
enum Data {
    Heap(Arc<Vec<u8>>),
    Static(&'static [u8]),
}

impl Data {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            Data::Heap(v) => v,
            Data::Static(s) => s,
        }
    }
}

/// A cheaply clonable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Data,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from_static(&[])
    }

    /// Creates `Bytes` from a static slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Data::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        note_buffer_alloc();
        Bytes::from(data.to_vec())
    }

    /// Number of bytes contained in this `Bytes`.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns true if this `Bytes` has a length of zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a slice of self for the provided range, sharing storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Returns a `Bytes` for `subset`, which must be a sub-slice of
    /// `self` (e.g. a parsed header view), sharing storage with `self`.
    ///
    /// # Panics
    ///
    /// Panics if `subset` does not point into `self`'s memory.
    pub fn slice_ref(&self, subset: &[u8]) -> Bytes {
        if subset.is_empty() {
            return Bytes::new();
        }
        let base = self.as_slice();
        let base_ptr = base.as_ptr() as usize;
        let sub_ptr = subset.as_ptr() as usize;
        assert!(
            sub_ptr >= base_ptr && sub_ptr + subset.len() <= base_ptr + base.len(),
            "subset is not contained within self"
        );
        let off = sub_ptr - base_ptr;
        self.slice(off..off + subset.len())
    }

    /// Returns the contents as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }

    /// Copies the contents into a new `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        // Ownership transfer: the vector's heap block becomes the shared
        // storage as-is. Not counted as a buffer allocation.
        let end = v.len();
        Bytes {
            data: Data::Heap(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable buffer for assembling wire formats, frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates a new, empty `BytesMut`.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// Creates a new `BytesMut` with the given capacity pre-allocated.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        if capacity > 0 {
            note_buffer_alloc();
        }
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns true if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Remaining pre-allocated capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends the given slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Resizes the buffer, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Shortens the buffer to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.buf.split_off(at);
        let head = std::mem::replace(&mut self.buf, rest);
        BytesMut { buf: head }
    }

    /// Converts into an immutable [`Bytes`] without copying: the
    /// accumulated heap storage is moved, not cloned.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Returns the contents as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> BytesMut {
        BytesMut { buf }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        note_buffer_alloc();
        BytesMut { buf: s.to_vec() }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.buf.extend(iter);
    }
}

macro_rules! buf_get_impl {
    ($this:ident, $ty:ty) => {{
        const N: usize = std::mem::size_of::<$ty>();
        let chunk = $this.chunk();
        assert!(chunk.len() >= N, "buffer underflow reading {} bytes", N);
        let mut arr = [0u8; N];
        arr.copy_from_slice(&chunk[..N]);
        $this.advance(N);
        <$ty>::from_be_bytes(arr)
    }};
}

/// Read access to a buffer of bytes, consumed front-to-back.
pub trait Buf {
    /// Number of bytes between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// Returns the bytes left in the buffer, starting at the cursor.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Returns true if there are bytes left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes from the buffer into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow copying {} bytes",
            dst.len()
        );
        let chunk = self.chunk();
        dst.copy_from_slice(&chunk[..dst.len()]);
        self.advance(dst.len());
    }

    /// Gets an unsigned 8-bit integer, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        buf_get_impl!(self, u8)
    }
    /// Gets a signed 8-bit integer, advancing the cursor.
    fn get_i8(&mut self) -> i8 {
        buf_get_impl!(self, i8)
    }
    /// Gets a big-endian unsigned 16-bit integer, advancing the cursor.
    fn get_u16(&mut self) -> u16 {
        buf_get_impl!(self, u16)
    }
    /// Gets a big-endian signed 16-bit integer, advancing the cursor.
    fn get_i16(&mut self) -> i16 {
        buf_get_impl!(self, i16)
    }
    /// Gets a big-endian unsigned 32-bit integer, advancing the cursor.
    fn get_u32(&mut self) -> u32 {
        buf_get_impl!(self, u32)
    }
    /// Gets a big-endian signed 32-bit integer, advancing the cursor.
    fn get_i32(&mut self) -> i32 {
        buf_get_impl!(self, i32)
    }
    /// Gets a big-endian unsigned 64-bit integer, advancing the cursor.
    fn get_u64(&mut self) -> u64 {
        buf_get_impl!(self, u64)
    }
    /// Gets a big-endian signed 64-bit integer, advancing the cursor.
    fn get_i64(&mut self) -> i64 {
        buf_get_impl!(self, i64)
    }
    /// Gets a big-endian unsigned 128-bit integer, advancing the cursor.
    fn get_u128(&mut self) -> u128 {
        buf_get_impl!(self, u128)
    }
    /// Gets a big-endian signed 128-bit integer, advancing the cursor.
    fn get_i128(&mut self) -> i128 {
        buf_get_impl!(self, i128)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of buffer");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of buffer");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.buf.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.buf
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.buf.len(), "cannot advance past end of buffer");
        self.buf.drain(..cnt);
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

macro_rules! buf_put_impl {
    ($this:ident, $val:expr) => {{
        $this.put_slice(&$val.to_be_bytes());
    }};
}

/// Write access to an append-only buffer of bytes.
pub trait BufMut {
    /// Appends the given slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize);

    /// Appends all bytes from `src`.
    fn put<B: Buf>(&mut self, mut src: B)
    where
        Self: Sized,
    {
        while src.has_remaining() {
            let chunk_len = {
                let c = src.chunk();
                self.put_slice(c);
                c.len()
            };
            src.advance(chunk_len);
        }
    }

    /// Appends an unsigned 8-bit integer.
    fn put_u8(&mut self, n: u8) {
        buf_put_impl!(self, n)
    }
    /// Appends a signed 8-bit integer.
    fn put_i8(&mut self, n: i8) {
        buf_put_impl!(self, n)
    }
    /// Appends a big-endian unsigned 16-bit integer.
    fn put_u16(&mut self, n: u16) {
        buf_put_impl!(self, n)
    }
    /// Appends a big-endian signed 16-bit integer.
    fn put_i16(&mut self, n: i16) {
        buf_put_impl!(self, n)
    }
    /// Appends a big-endian unsigned 32-bit integer.
    fn put_u32(&mut self, n: u32) {
        buf_put_impl!(self, n)
    }
    /// Appends a big-endian signed 32-bit integer.
    fn put_i32(&mut self, n: i32) {
        buf_put_impl!(self, n)
    }
    /// Appends a big-endian unsigned 64-bit integer.
    fn put_u64(&mut self, n: u64) {
        buf_put_impl!(self, n)
    }
    /// Appends a big-endian signed 64-bit integer.
    fn put_i64(&mut self, n: i64) {
        buf_put_impl!(self, n)
    }
    /// Appends a big-endian unsigned 128-bit integer.
    fn put_u128(&mut self, n: u128) {
        buf_put_impl!(self, n)
    }
    /// Appends a big-endian signed 128-bit integer.
    fn put_i128(&mut self, n: i128) {
        buf_put_impl!(self, n)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.buf.resize(self.buf.len() + cnt, val);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        (**self).put_bytes(val, cnt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that assert exact [`buffer_allocs`] deltas —
    /// the counter is process-global, so a concurrent test thread
    /// bumping it would make equality asserts flaky.
    static COUNTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn bytes_clone_shares_and_slices() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(&b[..], &c[..]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = b.slice(..2);
        assert_eq!(&s2[..], &[1, 2]);
    }

    #[test]
    fn round_trip_ints() {
        let mut m = BytesMut::new();
        m.put_u8(0xab);
        m.put_u16(0x1234);
        m.put_u32(0xdead_beef);
        m.put_u64(0x0102_0304_0506_0708);
        m.put_bytes(0xff, 3);
        let frozen = m.freeze();
        let mut s = &frozen[..];
        assert_eq!(s.get_u8(), 0xab);
        assert_eq!(s.get_u16(), 0x1234);
        assert_eq!(s.get_u32(), 0xdead_beef);
        assert_eq!(s.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(s.remaining(), 3);
        let mut out = [0u8; 3];
        s.copy_to_slice(&mut out);
        assert_eq!(out, [0xff; 3]);
        assert!(!s.has_remaining());
    }

    #[test]
    #[should_panic]
    fn get_underflow_panics() {
        let mut s: &[u8] = &[1];
        let _ = s.get_u16();
    }

    #[test]
    fn clone_is_refcount_not_copy() {
        let _guard = COUNTER_LOCK.lock().unwrap();
        let b = Bytes::from(vec![7u8; 1500]);
        let before = buffer_allocs();
        let clones: Vec<Bytes> = (0..32).map(|_| b.clone()).collect();
        assert_eq!(buffer_allocs(), before, "clone must not allocate");
        for c in &clones {
            // Same backing storage, not a copy.
            assert_eq!(c.as_slice().as_ptr(), b.as_slice().as_ptr());
        }
    }

    #[test]
    fn freeze_transfers_storage_without_copying() {
        let _guard = COUNTER_LOCK.lock().unwrap();
        let mut m = BytesMut::new();
        m.extend_from_slice(&[1, 2, 3, 4]);
        let ptr = m.as_slice().as_ptr();
        let before = buffer_allocs();
        let frozen = m.freeze();
        assert_eq!(buffer_allocs(), before, "freeze must not allocate a buffer");
        assert_eq!(frozen.as_slice().as_ptr(), ptr, "freeze must move storage");
    }

    #[test]
    fn slice_ref_shares_storage() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let view = &b.as_slice()[2..6];
        let sub = b.slice_ref(view);
        assert_eq!(&sub[..], &[2, 3, 4, 5]);
        assert_eq!(sub.as_slice().as_ptr(), view.as_ptr());
        assert!(b.slice_ref(&[]).is_empty());
    }

    #[test]
    #[should_panic]
    fn slice_ref_rejects_foreign_slice() {
        let b = Bytes::from(vec![0u8; 8]);
        let other = [0u8; 8];
        let _ = b.slice_ref(&other[..]);
    }

    #[test]
    fn alloc_counter_tracks_copies() {
        let _guard = COUNTER_LOCK.lock().unwrap();
        let before = buffer_allocs();
        let _c = Bytes::copy_from_slice(&[1, 2, 3]);
        let _m = BytesMut::from(&[1u8, 2, 3][..]);
        let _w = BytesMut::with_capacity(64);
        assert_eq!(buffer_allocs(), before + 3);
        // Transfers and slices are free.
        let b = Bytes::from(vec![9u8; 16]);
        let _s = b.slice(2..9);
        let _r = b.slice_ref(&b.as_slice()[1..3]);
        assert_eq!(buffer_allocs(), before + 3);
    }
}
