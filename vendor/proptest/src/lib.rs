//! Offline, dependency-free subset of the [`proptest`] crate.
//!
//! Vendored because the build environment has no network access to
//! crates.io. It implements the surface the workspace's property tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_filter` / `boxed`, [`arbitrary::any`], range and tuple
//! strategies, [`collection::vec`], [`option::of`], [`prop_oneof!`], a
//! tiny character-class string-regex strategy, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, by design of the stub:
//!
//! * **Greedy shrinking.** On failure the driver asks each strategy for
//!   simpler candidates ([`strategy::Strategy::shrink`]) and descends
//!   while the failure reproduces, then panics with the assertion
//!   message of the *minimal* case found. Integer ranges bisect toward
//!   their lower bound, `any` integers toward zero, tuples shrink
//!   component-wise and `collection::vec` drops elements before
//!   shrinking them; `prop_map` outputs do not shrink (the map is not
//!   invertible). Unlike real proptest there is no lazy value tree —
//!   the search is bounded (256 candidate evaluations) and greedy.
//! * **Deterministic.** The RNG seed is derived from the test name, so
//!   runs are reproducible without a persistence file.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`] entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical strategy covering their whole domain.
    pub trait Arbitrary: Sized {
        /// Generates one value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Simpler candidates for a failing `value` (see
        /// [`Strategy::shrink`]); the default proposes nothing.
        fn shrink_value(value: &Self) -> Vec<Self> {
            let _ = value;
            Vec::new()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    /// A strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            T::shrink_value(value)
        }
    }

    macro_rules! arb_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.inner().gen::<$ty>()
                }
                fn shrink_value(value: &Self) -> Vec<Self> {
                    // Toward zero: zero itself, the halfway point, and
                    // one step closer (negative values step upward).
                    let v = *value;
                    let mut out = Vec::new();
                    if v != 0 {
                        out.push(0);
                        let mid = v / 2;
                        if mid != 0 && mid != v {
                            out.push(mid);
                        }
                        let step = if v > 0 { v - 1 } else { v + 1 };
                        if step != 0 && step != mid {
                            out.push(step);
                        }
                    }
                    out
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.inner().gen::<bool>()
        }
        fn shrink_value(value: &Self) -> Vec<Self> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.inner().gen::<u128>() as i128
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mostly ASCII, occasionally any scalar value.
            if rng.inner().gen_bool(0.9) {
                rng.inner().gen_range(0x20u32..0x7f) as u8 as char
            } else {
                char::from_u32(rng.inner().gen_range(0u32..0xd800)).unwrap_or('\u{fffd}')
            }
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.inner().gen_bool(0.25) {
                None
            } else {
                Some(T::arbitrary(rng))
            }
        }
        fn shrink_value(value: &Self) -> Vec<Self> {
            match value {
                None => Vec::new(),
                Some(inner) => std::iter::once(None)
                    .chain(T::shrink_value(inner).into_iter().map(Some))
                    .collect(),
            }
        }
    }

    macro_rules! arb_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }

    arb_tuple!(A);
    arb_tuple!(A, B);
    arb_tuple!(A, B, C);
    arb_tuple!(A, B, C, D);
    arb_tuple!(A, B, C, D, E);
    arb_tuple!(A, B, C, D, E, F);
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates a `Vec` whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.inner().gen_range(self.len.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.len.start;
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            // Structural first: halve toward the minimum length, then
            // drop single elements, then shrink elements in place.
            if value.len() > min {
                let half = min + (value.len() - min) / 2;
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                for i in 0..value.len() {
                    let mut v = value.clone();
                    v.remove(i);
                    if v.len() >= min {
                        out.push(v);
                    }
                }
            }
            for (i, elem) in value.iter().enumerate() {
                for cand in self.element.shrink(elem) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

pub mod option {
    //! Strategies for `Option<T>`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` about a quarter of the time, otherwise
    /// `Some(value)` from the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.inner().gen_bool(0.25) {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

pub mod string {
    //! A tiny string strategy driven by a character-class regex subset.
    //!
    //! Supports patterns made of literal characters and `[a-z0-9_]`-style
    //! classes, each optionally followed by `{m}`, `{m,n}`, `+`, `*`, or
    //! `?`. This covers patterns like `"[a-z]{1,12}"`; anything fancier
    //! is rejected at generation time with a panic naming the pattern.

    use crate::test_runner::TestRng;
    use rand::Rng;

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    #[derive(Debug, Clone)]
    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = match chars.next() {
                            Some(']') => break,
                            Some('\\') => chars.next().unwrap_or_else(|| {
                                panic!("unterminated escape in string pattern {pattern:?}")
                            }),
                            Some(ch) => ch,
                            None => panic!("unterminated class in string pattern {pattern:?}"),
                        };
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars.next().unwrap_or_else(|| {
                                panic!("unterminated range in string pattern {pattern:?}")
                            });
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Atom::Class(ranges)
                }
                '\\' => Atom::Literal(chars.next().unwrap_or_else(|| {
                    panic!("unterminated escape in string pattern {pattern:?}")
                })),
                '.' => Atom::Class(vec![(' ', '~')]),
                other => Atom::Literal(other),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|&ch| ch != '}').collect();
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad repetition min"),
                            n.trim().parse().expect("bad repetition max"),
                        ),
                        None => {
                            let m: usize = spec.trim().parse().expect("bad repetition count");
                            (m, m)
                        }
                    }
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "bad repetition {{{min},{max}}} in {pattern:?}");
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub(crate) fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = rng.inner().gen_range(piece.min..piece.max + 1);
            for _ in 0..n {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.inner().gen_range(0..ranges.len())];
                        out.push(
                            char::from_u32(rng.inner().gen_range(lo as u32..hi as u32 + 1))
                                .unwrap_or(lo),
                        );
                    }
                }
            }
        }
        out
    }
}

pub mod prelude {
    //! The imports property tests conventionally glob in.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// Alias so `prop::collection::vec(..)`-style paths work.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests: each argument is drawn from its strategy and
/// the body is run for `cases` iterations.
///
/// Stub limitation: each argument must be a plain identifier (`x in
/// strategy`); patterns like `mut x` or `(a, b)` are not accepted —
/// rebind inside the body instead.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            // All argument strategies combine into one tuple strategy so
            // the shrink loop in `run_proptest` can treat the whole case
            // as a single value. The tuple draws components in
            // declaration order, matching the per-argument draws the
            // pre-shrinking driver performed.
            $crate::test_runner::run_proptest(
                stringify!($name),
                $cfg,
                ($(($strategy),)*),
                |vals| {
                    let ($($arg,)*) = ::std::clone::Clone::clone(vals);
                    (|| { $body ::std::result::Result::Ok(()) })()
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Like `assert!` but fails the current case instead of unwinding, so
/// the runner can report the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!` for property-test bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*),
        );
    }};
}

/// Like `assert_ne!` for property-test bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($left), stringify!($right), l, format!($($fmt)*),
        );
    }};
}

/// Discards the current case (without failing) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
