//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keeps only values for which `f` returns true; gives up (panics)
    /// after too many consecutive rejections.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Generates a `Vec` of values from this strategy with length in
    /// `len` (convenience mirror of `collection::vec`).
    fn prop_vec(self, len: Range<usize>) -> crate::collection::VecStrategy<Self>
    where
        Self: Sized,
    {
        crate::collection::vec(self, len)
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Uniform choice between type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given (non-empty) options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "Union of zero strategies");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.inner().gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.inner().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.inner().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.inner().gen_range(self.clone())
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A => 0);
tuple_strategy!(A => 0, B => 1);
tuple_strategy!(A => 0, B => 1, C => 2);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
