//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest, shrinking is a single optional hook rather
/// than a lazy value tree: [`Strategy::shrink`] proposes strictly
/// "smaller" candidates for a failing value and the [`crate::proptest!`]
/// driver greedily descends while the failure reproduces. Strategies
/// that do not override it simply never shrink.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler candidates derived from a failing `value`,
    /// ordered most-aggressive first. Every candidate must be strictly
    /// "smaller" under some well-founded measure, so the driver's
    /// greedy descent terminates. The default proposes nothing.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keeps only values for which `f` returns true; gives up (panics)
    /// after too many consecutive rejections.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Generates a `Vec` of values from this strategy with length in
    /// `len` (convenience mirror of `collection::vec`).
    fn prop_vec(self, len: Range<usize>) -> crate::collection::VecStrategy<Self>
    where
        Self: Sized,
    {
        crate::collection::vec(self, len)
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        // Source candidates survive only if they still satisfy the filter.
        self.source
            .shrink(value)
            .into_iter()
            .filter(|v| (self.f)(v))
            .collect()
    }
}

/// Uniform choice between type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given (non-empty) options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "Union of zero strategies");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.inner().gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

/// Shrink candidates for an integer failing at `v` with range start
/// `lo`: the start itself, the midpoint and the predecessor — greedy
/// bisection toward the smallest value the range admits.
macro_rules! int_shrink {
    ($v:expr, $lo:expr) => {{
        let (v, lo) = ($v, $lo);
        let mut out = Vec::new();
        if v != lo {
            out.push(lo);
            let mid = lo + (v - lo) / 2;
            if mid != lo && mid != v {
                out.push(mid);
            }
            if v - 1 != lo && v - 1 != mid {
                out.push(v - 1);
            }
        }
        out
    }};
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.inner().gen_range(self.clone())
            }
            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                int_shrink!(*value, self.start)
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.inner().gen_range(self.clone())
            }
            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                int_shrink!(*value, *self.start())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.inner().gen_range(self.clone())
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

/// The empty strategy tuple generates the unit value; the
/// [`crate::proptest!`] driver uses it for zero-argument properties.
impl Strategy for () {
    type Value = ();
    fn new_value(&self, _rng: &mut TestRng) {}
}

macro_rules! tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Component-wise: each candidate shrinks exactly one
                // position, cloning the rest of the failing tuple.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!(A => 0);
tuple_strategy!(A => 0, B => 1);
tuple_strategy!(A => 0, B => 1, C => 2);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8, J => 9);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8, J => 9, K => 10);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8, J => 9, K => 10, L => 11);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{Config, TestCaseError};

    #[test]
    fn range_shrink_bisects_toward_start() {
        let s = 10u32..100;
        let cands = s.shrink(&57);
        assert!(cands.contains(&10), "start is always the first candidate");
        assert!(cands.iter().all(|&c| (10..57).contains(&c)));
        assert!(s.shrink(&10).is_empty(), "the start value cannot shrink");
    }

    #[test]
    fn tuple_shrink_changes_one_component_per_candidate() {
        let s = (0u8..=20, 0u8..=20);
        let failing = (8u8, 13u8);
        for cand in s.shrink(&failing) {
            let moved = usize::from(cand.0 != failing.0) + usize::from(cand.1 != failing.1);
            assert_eq!(moved, 1, "candidate {cand:?} must shrink exactly one slot");
        }
    }

    #[test]
    fn filter_shrink_keeps_only_passing_candidates() {
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        assert!(s.shrink(&88).iter().all(|v| v % 2 == 0));
    }

    #[test]
    fn driver_shrinks_to_minimal_failing_input() {
        let caught = std::panic::catch_unwind(|| {
            crate::test_runner::run_proptest(
                "driver_shrinks_to_minimal_failing_input",
                Config::with_cases(64),
                0u32..1000,
                |v| {
                    if *v >= 37 {
                        Err(TestCaseError::fail(format!("v={v}")))
                    } else {
                        Ok(())
                    }
                },
            );
        })
        .expect_err("a failing property must panic");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic payload is the formatted message");
        assert!(
            msg.contains("v=37") && msg.contains("shrink step"),
            "greedy descent should reach the boundary value: {msg}"
        );
    }
}
