//! Runner plumbing: configuration, RNG, and case outcomes.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-`proptest!` block configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// The RNG handed to strategies.
///
/// Seeded from the test's name so every test explores a distinct but
/// reproducible stream — there is no failure-persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Creates the deterministic RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, folded into a fixed salt.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Access the underlying `rand` generator.
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` — try another input.
    Reject(&'static str),
    /// A `prop_assert*!` failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Convenience constructor for a failed assertion.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}
