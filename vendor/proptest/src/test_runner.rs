//! Runner plumbing: configuration, RNG, and case outcomes.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-`proptest!` block configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// The RNG handed to strategies.
///
/// Seeded from the test's name so every test explores a distinct but
/// reproducible stream — there is no failure-persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Creates the deterministic RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, folded into a fixed salt.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Access the underlying `rand` generator.
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` — try another input.
    Reject(&'static str),
    /// A `prop_assert*!` failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Convenience constructor for a failed assertion.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

/// Drives one `proptest!`-defined test: draws cases from `strat` until
/// `config.cases` pass, and on the first failure greedily shrinks the
/// failing tuple before panicking.
///
/// Lives here (rather than expanded inline by the macro) so the case
/// closure's parameter type is pinned to `S::Value` — the test bodies
/// themselves give the compiler no way to infer it.
///
/// Shrinking is greedy and bounded: the first candidate from
/// [`crate::strategy::Strategy::shrink`] that still fails becomes the
/// new best value, and
/// at most 256 candidates are ever evaluated. Candidates that pass or
/// are rejected by `prop_assume!` simply don't reproduce the failure.
pub fn run_proptest<S, F>(name: &str, config: Config, strat: S, run: F)
where
    S: crate::strategy::Strategy,
    S::Value: Clone,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(name);
    let mut accepted: u32 = 0;
    let mut rejected: u32 = 0;
    while accepted < config.cases {
        let vals = strat.new_value(&mut rng);
        match run(&vals) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < 65_536,
                    "{}: too many prop_assume rejections ({} accepted so far)",
                    name,
                    accepted,
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                let mut best_vals = vals;
                let mut best_msg = msg;
                let mut evals: u32 = 0;
                let mut steps: u32 = 0;
                'shrink: loop {
                    let mut advanced = false;
                    for cand in strat.shrink(&best_vals) {
                        if evals >= 256 {
                            break 'shrink;
                        }
                        evals += 1;
                        if let Err(TestCaseError::Fail(m)) = run(&cand) {
                            best_vals = cand;
                            best_msg = m;
                            steps += 1;
                            advanced = true;
                            break;
                        }
                    }
                    if !advanced {
                        break;
                    }
                }
                // `best_vals` itself is only consulted through the shrink
                // loop; the minimal case speaks through its message.
                let _ = &best_vals;
                if steps == 0 {
                    panic!(
                        "proptest `{}` failed after {} passing case(s): {}",
                        name, accepted, best_msg,
                    );
                }
                panic!(
                    "proptest `{}` failed after {} passing case(s) ({} shrink step(s)): {}",
                    name, accepted, steps, best_msg,
                );
            }
        }
    }
}
