//! Integration-test-only package: all content lives in `tests/`.
