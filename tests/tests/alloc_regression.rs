//! Allocation-count regression tests for the zero-copy datapath.
//!
//! The vendored `bytes` crate counts every fresh backing buffer in a
//! process-global counter ([`bytes::buffer_allocs`]); refcount clones,
//! slices and ownership transfers do not move it. These tests pin the
//! zero-copy contract of the hot path: once a flow is cached, serving
//! it must not allocate — flood fan-out included — and copy-on-write
//! paths must allocate exactly one buffer per rewritten frame.
//!
//! The counter is process-global, so this suite lives in its own test
//! binary and serialises its tests with a mutex; keep counter-exact
//! assertions out of other binaries.

use bytes::{buffer_allocs, Bytes};
use netpkt::{builder, MacAddr};
use openflow::message::FlowMod;
use openflow::{port_no, Action, Match};
use softswitch::batch::FrameBatch;
use softswitch::datapath::{Datapath, DpConfig, PipelineMode};
use std::net::Ipv4Addr;
use std::sync::Mutex;

/// Serialises tests that assert exact counter deltas.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn dp_with_ports(n_ports: u32) -> Datapath {
    let mut dp = Datapath::new(DpConfig::software(1).with_mode(PipelineMode::full()));
    for p in 1..=n_ports {
        dp.add_port(p, format!("p{p}"), 1_000_000);
    }
    dp
}

fn udp_frame(payload: &[u8]) -> Bytes {
    builder::udp_packet(
        MacAddr::host(1),
        MacAddr::host(2),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        1000,
        53,
        payload,
    )
}

/// A cached flood of a full-MTU frame to 32 ports must be pure refcount
/// bumps: at most one buffer allocation for the whole fan-out,
/// regardless of the output port count.
#[test]
fn cached_flood_to_32_ports_allocates_at_most_one_buffer() {
    let _g = COUNTER_LOCK.lock().unwrap();
    let mut dp = dp_with_ports(33);
    dp.apply_flow_mod(
        &FlowMod::add(0)
            .priority(1)
            .apply(vec![Action::output(port_no::FLOOD)]),
        0,
    )
    .unwrap();
    // 1500-byte frame: 42 bytes of headers + 1458 of payload.
    let frame = udp_frame(&[0xab; 1458]);
    assert_eq!(frame.len(), 1500);
    // Warm the caches: the first frame takes the slow path (recording,
    // cache install) and may allocate.
    let warm = dp.process(1, frame.clone(), 0);
    assert_eq!(warm.outputs.len(), 32, "flood fans out to every other port");

    let before = buffer_allocs();
    let r = dp.process(1, frame.clone(), 1);
    let allocs = buffer_allocs() - before;
    assert_eq!(r.outputs.len(), 32);
    assert!(
        allocs <= 1,
        "cached flood must be refcount bumps, got {allocs} buffer allocations for 32 outputs"
    );
    // Every flood copy shares the ingress frame's backing storage.
    for (_port, out) in &r.outputs {
        assert_eq!(out.as_slice().as_ptr(), frame.as_slice().as_ptr());
    }
}

/// A batch of cached pure-forward frames must not allocate any frame
/// buffers at all: parse, memo probe, cache hit and emit all operate on
/// borrowed or refcounted storage.
#[test]
fn cached_path_batch_allocates_no_buffers() {
    let _g = COUNTER_LOCK.lock().unwrap();
    let mut dp = dp_with_ports(2);
    dp.apply_flow_mod(
        &FlowMod::add(0)
            .priority(1)
            .match_(Match::new().in_port(1))
            .apply(vec![Action::output(2)]),
        0,
    )
    .unwrap();
    let frame = udp_frame(b"payload");
    dp.process(1, frame.clone(), 0); // warm: slow path + cache install

    const N: usize = 64;
    let mut batch = FrameBatch::with_capacity(N);
    for _ in 0..N {
        batch.push(1, frame.clone());
    }
    let before = buffer_allocs();
    let result = dp.process_batch(&mut batch, 1);
    let allocs = buffer_allocs() - before;
    assert_eq!(result.len(), N);
    assert_eq!(result.total_outputs(), N);
    assert_eq!(
        allocs, 0,
        "{N} cached pure-forward frames allocated {allocs} buffers; expected zero"
    );
}

/// Copy-on-write ceiling: a cached flow whose actions rewrite the frame
/// (TTL decrement via the routed pipeline's DecNwTtl analogue — here a
/// set-field) allocates exactly one buffer per frame: the private copy
/// made by the first mutation. Emitting the rewritten frame is a
/// transfer, not another copy.
#[test]
fn cow_rewrite_allocates_exactly_one_buffer_per_frame() {
    let _g = COUNTER_LOCK.lock().unwrap();
    let mut dp = dp_with_ports(2);
    dp.apply_flow_mod(
        &FlowMod::add(0)
            .priority(1)
            .match_(Match::new().in_port(1))
            .apply(vec![
                Action::SetField(openflow::OxmField::EthDst(MacAddr::host(9), None)),
                Action::output(2),
            ]),
        0,
    )
    .unwrap();
    let frame = udp_frame(b"rewrite-me");
    dp.process(1, frame.clone(), 0); // warm

    const N: u64 = 16;
    let before = buffer_allocs();
    for i in 0..N {
        let r = dp.process(1, frame.clone(), 1 + i);
        assert_eq!(r.outputs.len(), 1);
    }
    let allocs = buffer_allocs() - before;
    assert_eq!(
        allocs, N,
        "a rewriting flow must take exactly one CoW copy per frame, got {allocs} for {N} frames"
    );
}
