//! Smoke test: every demo in `examples/` must build and run to
//! completion, so the quickstart, migration, and use-case walkthroughs
//! cannot silently rot.
//!
//! Runs the examples through `cargo run --example` (sequentially — the
//! nested invocations share the target directory and its build lock).

use std::path::Path;
use std::process::Command;

const EXAMPLES: [&str; 5] = [
    "quickstart",
    "migration",
    "load_balancer",
    "parental_control",
    "dmz",
];

#[test]
fn all_examples_run_to_completion() {
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests/ lives directly under the workspace root");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .current_dir(workspace_root)
            .args(["run", "--quiet", "--offline", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
