//! Sharded-engine integration tests: thread-count determinism and
//! equivalence with the classic single-queue loop on a full fabric
//! workload (hosts, generators, sinks, learning controller, spine).
//!
//! The contract under test: `Network::set_threads` must never change
//! simulation results — per-pod rollups, latency histograms, host reply
//! counts, arrival times and the total event count are byte-identical
//! for every thread count.

use controller::apps::LearningSwitch;
use controller::ControllerNode;
use harmless::fabric::{FabricSpec, Interconnect};
use harmless::instance::HarmlessSpec;
use netsim::host::Host;
use netsim::stats::Rollup;
use netsim::traffic::{FlowSpec, Generator, Pattern, Sink};
use netsim::{Network, NodeId, PortId, SimTime};

const PODS: u16 = 3;
const PORTS: u16 = 3; // ports 1..2 carry pinging hosts, port 3 gen/sink

/// Run the scenario and render every observable the ISSUE cares about
/// into one string: per-pod `Rollup` stats, host reply counts, sink
/// arrival times and the event count. `threads = None` runs the classic
/// single-queue loop; `Some(n)` runs the sharded engine on `n` threads.
fn observables(threads: Option<usize>) -> String {
    let mut net = Network::new(11);
    let ctrl = net.add_node(ControllerNode::new(
        "ctrl",
        vec![Box::new(LearningSwitch::new())],
    ));
    let mut fx = FabricSpec::new(PODS, HarmlessSpec::new(PORTS))
        .with_interconnect(Interconnect::SpineSoft)
        .build(&mut net)
        .expect("valid spec");
    fx.configure_direct(&mut net);
    fx.connect_controller(&mut net, ctrl);

    // Ports 1..2 of every pod: pinging hosts.
    let mut hosts: Vec<Vec<NodeId>> = Vec::new();
    for p in 0..usize::from(PODS) {
        hosts.push(
            (1..PORTS)
                .map(|i| fx.attach_host(&mut net, p, i).expect("free port"))
                .collect(),
        );
    }
    // Port 3: a stamped generator in pod 0 feeding a sink in pod 1 —
    // cross-pod measured traffic so the per-pod rollups have latency
    // histograms, not just counters.
    let g = net.add_node(Generator::new(
        "xpod-gen",
        PortId(0),
        Pattern::Cbr { pps: 20_000.0 },
        vec![{
            let mut f = FlowSpec::simple(1, 2, 128);
            f.src_mac = fx.host_mac(0, PORTS);
            f.dst_mac = fx.host_mac(1, PORTS);
            f.src_ip = fx.host_ip(0, PORTS);
            f.dst_ip = fx.host_ip(1, PORTS);
            f
        }],
        SimTime::from_millis(120),
        SimTime::from_millis(140),
    ));
    let s = net.add_node(Sink::new("xpod-sink"));
    fx.attach_node(&mut net, 0, PORTS, g).expect("free port");
    fx.attach_node(&mut net, 1, PORTS, s).expect("free port");

    if let Some(t) = threads {
        net.set_shards(&fx.shard_map());
        net.set_threads(t);
        assert_eq!(net.n_shards(), usize::from(PODS) + 1);
    }

    net.run_until(SimTime::from_millis(100));
    // Every host pings its partner in the next pod, staggered.
    for i in 1..PORTS {
        for (p, pod_hosts) in hosts.iter().enumerate() {
            let target = fx.host_ip((p + 1) % usize::from(PODS), i);
            let h = pod_hosts[usize::from(i) - 1];
            net.with_node_ctx::<Host, _>(h, move |h, ctx| {
                h.ping(b"determinism", target);
                h.flush(ctx);
            });
        }
        net.run_for(SimTime::from_micros(300));
    }
    net.run_until(SimTime::from_millis(400));

    let mut out = String::new();
    for (p, pod_hosts) in hosts.iter().enumerate() {
        let mut roll = Rollup::new();
        for &h in pod_hosts {
            let host = net.node_ref::<Host>(h);
            roll.absorb(host.rx_frames(), 0, &netsim::Histogram::new());
            out.push_str(&format!(
                "pod{p} host n{}: replies={} answered={} rx={}\n",
                h.0,
                host.echo_replies_received(),
                host.echo_requests_answered(),
                host.rx_frames()
            ));
        }
        if p == 1 {
            net.node_ref::<Sink>(s).roll_into(&mut roll);
        }
        let lat = &roll.latency;
        out.push_str(&format!(
            "pod{p} rollup: frames={} bytes={} lat_count={} p50={} p99={} max={} mean={:.3}\n",
            roll.frames,
            roll.bytes,
            lat.count(),
            lat.p50(),
            lat.p99(),
            lat.max(),
            lat.mean()
        ));
    }
    let sink = net.node_ref::<Sink>(s);
    out.push_str(&format!(
        "sink: received={} unstamped={} rx_pps={:.3}\n",
        sink.received(),
        sink.unstamped(),
        sink.rx_pps()
    ));
    out.push_str(&format!(
        "ctrl: packet_ins={} flow_mods={}\n",
        net.node_ref::<ControllerNode>(ctrl).packet_ins(),
        net.node_ref::<ControllerNode>(ctrl).flow_mods_sent()
    ));
    out.push_str(&format!("events={}\n", net.events_processed()));
    out
}

#[test]
fn thread_count_never_changes_results() {
    let t1 = observables(Some(1));
    let t2 = observables(Some(2));
    let t4 = observables(Some(4));
    assert_eq!(t1, t2, "threads=1 vs threads=2");
    assert_eq!(t1, t4, "threads=1 vs threads=4");
    // The workload actually converged (this is not vacuous).
    assert!(t1.contains("replies=1"), "hosts got replies:\n{t1}");
    assert!(!t1.contains("received=0"), "sink saw traffic:\n{t1}");
}

#[test]
fn sharded_engine_matches_single_queue_loop() {
    let legacy = observables(None);
    let sharded = observables(Some(2));
    assert_eq!(legacy, sharded, "engines must agree on all observables");
}

/// The persistent runtime on a full fabric stack: a staggered multi-round
/// driver issues hundreds of `run_for` calls, and the worker pool must
/// serve all of them with the threads spawned at `set_threads` — while
/// steady-state windows draw every mailbox buffer from the free-list.
#[test]
fn fabric_runs_reuse_the_worker_pool() {
    let mut net = Network::new(11);
    let ctrl = net.add_node(ControllerNode::new(
        "ctrl",
        vec![Box::new(LearningSwitch::new())],
    ));
    let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
        .with_interconnect(Interconnect::SpineSoft)
        .build(&mut net)
        .expect("valid spec");
    fx.configure_direct(&mut net);
    fx.connect_controller(&mut net, ctrl);
    let a = fx.attach_host(&mut net, 0, 1).expect("free port");
    let b = fx.attach_host(&mut net, 1, 1).expect("free port");
    net.set_shards(&fx.shard_map());
    net.set_threads(2);
    net.run_until(SimTime::from_millis(100));
    assert_eq!(net.runtime_stats().workers_spawned, 2);

    let mut warm = netsim::RuntimeStats::default();
    for round in 0..3 {
        for (h, peer) in [(a, fx.host_ip(1, 1)), (b, fx.host_ip(0, 1))] {
            net.with_node_ctx::<Host, _>(h, move |h, ctx| {
                h.ping(b"pool", peer);
                h.flush(ctx);
            });
        }
        for _ in 0..40 {
            net.run_for(SimTime::from_micros(300));
        }
        if round == 1 {
            warm = net.runtime_stats();
        }
    }
    let end = net.runtime_stats();
    assert_eq!(
        end.workers_spawned, 2,
        "3 rounds × 40 run_for calls must not spawn a single thread"
    );
    assert!(end.windows > warm.windows, "the last round ran windows");
    assert_eq!(
        end.mailbox_allocs, warm.mailbox_allocs,
        "a warm pool serves every window from the free-list"
    );
    assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 3);
    assert_eq!(net.node_ref::<Host>(b).echo_replies_received(), 3);
}
