//! Property-based tests over the workspace's codecs and core invariants.
//!
//! Three families:
//! * round-trip properties (encode ∘ decode = id) for OpenFlow, SNMP/BER
//!   and packet formats;
//! * fuzz-decode safety (arbitrary bytes never panic, only error);
//! * semantic invariants (cache result = slow-path result, translator
//!   bijectivity, flow-table priority order).

use bytes::Bytes;
use proptest::prelude::*;

use netpkt::vlan::{pop_vlan, push_vlan, VlanTag};
use netpkt::{builder, FlowKey, MacAddr};
use openflow::message::{FlowMod, Message};
use openflow::{Action, Match, OxmField};
use softswitch::datapath::{Datapath, DpConfig, PipelineMode};
use softswitch::FrameBatch;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_ipv4() -> impl Strategy<Value = std::net::Ipv4Addr> {
    any::<u32>().prop_map(std::net::Ipv4Addr::from)
}

fn arb_oxm_field() -> impl Strategy<Value = OxmField> {
    prop_oneof![
        (1u32..48).prop_map(OxmField::InPort),
        (any::<u64>(), any::<Option<u64>>()).prop_map(|(v, m)| OxmField::Metadata(v, m)),
        (arb_mac(), proptest::option::of(arb_mac())).prop_map(|(v, m)| OxmField::EthDst(v, m)),
        (arb_mac(), proptest::option::of(arb_mac())).prop_map(|(v, m)| OxmField::EthSrc(v, m)),
        any::<u16>().prop_map(OxmField::EthType),
        (0u16..4096).prop_map(|v| OxmField::VlanVid(0x1000 | v, None)),
        (0u8..8).prop_map(OxmField::VlanPcp),
        any::<u8>().prop_map(OxmField::IpProto),
        (arb_ipv4(), proptest::option::of(arb_ipv4())).prop_map(|(v, m)| OxmField::Ipv4Src(v, m)),
        (arb_ipv4(), proptest::option::of(arb_ipv4())).prop_map(|(v, m)| OxmField::Ipv4Dst(v, m)),
        any::<u16>().prop_map(OxmField::TcpSrc),
        any::<u16>().prop_map(OxmField::TcpDst),
        any::<u16>().prop_map(OxmField::UdpSrc),
        any::<u16>().prop_map(OxmField::UdpDst),
        any::<u8>().prop_map(OxmField::Icmpv4Type),
        (any::<u16>()).prop_map(OxmField::ArpOp),
        (arb_ipv4(), proptest::option::of(arb_ipv4())).prop_map(|(v, m)| OxmField::ArpSpa(v, m)),
        (any::<u128>(), proptest::option::of(any::<u128>()))
            .prop_map(|(v, m)| OxmField::Ipv6Src(v, m)),
    ]
}

fn arb_match() -> impl Strategy<Value = Match> {
    proptest::collection::vec(arb_oxm_field(), 0..6)
        .prop_map(|fields| fields.into_iter().fold(Match::new(), |m, f| m.with(f)))
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u32..48).prop_map(Action::output),
        Just(Action::to_controller()),
        any::<u32>().prop_map(Action::Group),
        any::<u32>().prop_map(Action::SetQueue),
        Just(Action::PushVlan(0x8100)),
        Just(Action::PushVlan(0x88a8)),
        Just(Action::PopVlan),
        (0u16..4095).prop_map(Action::set_vlan_vid),
        arb_mac().prop_map(|m| Action::SetField(OxmField::EthDst(m, None))),
        arb_ipv4().prop_map(|a| Action::SetField(OxmField::Ipv4Dst(a, None))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn of_match_round_trips(m in arb_match()) {
        let mut buf = bytes::BytesMut::new();
        m.encode(&mut buf);
        prop_assert_eq!(buf.len(), m.encoded_len());
        let mut s = &buf[..];
        let got = Match::decode(&mut s).unwrap();
        prop_assert!(s.is_empty());
        prop_assert_eq!(got, m);
    }

    #[test]
    fn of_flow_mod_round_trips(
        m in arb_match(),
        actions in proptest::collection::vec(arb_action(), 0..5),
        priority in any::<u16>(),
        cookie in any::<u64>(),
        idle in any::<u16>(),
        hard in any::<u16>(),
        xid in any::<u32>(),
    ) {
        let fm = FlowMod::add(0)
            .priority(priority)
            .match_(m)
            .apply(actions)
            .timeouts(idle, hard)
            .cookie(cookie);
        let wire = Message::FlowMod(fm.clone()).encode(xid);
        let (got_xid, got, used) = Message::decode(&wire).unwrap();
        prop_assert_eq!(got_xid, xid);
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(got, Message::FlowMod(fm));
    }

    #[test]
    fn of_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&data); // must not panic
    }

    #[test]
    fn snmp_message_round_trips(
        community in "[a-z]{1,12}",
        request_id in any::<i64>(),
        // X.690 §8.19: arc1 ∈ {0,1,2}; arc2 < 40 unless arc1 == 2. Keep
        // the generator inside the standard — OIDs like 0.40 are
        // inherently ambiguous on the wire.
        arc1 in 0u32..3,
        arc2 in 0u32..40,
        rest in proptest::collection::vec(0u32..100_000, 0..10),
        int_val in any::<i64>(),
        bytes_val in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        use mgmt::pdu::{Pdu, PduType, SnmpMessage, Value};
        let mut arcs = vec![arc1, arc2];
        arcs.extend(rest);
        let oid = mgmt::Oid(arcs);
        let msg = SnmpMessage::new(
            community,
            Pdu::request(
                PduType::Set,
                request_id,
                vec![
                    (oid.clone(), Value::Integer(int_val)),
                    (oid.child(1), Value::OctetString(bytes_val)),
                    (oid.child(2), Value::Counter64(int_val as u64)),
                ],
            ),
        );
        let wire = msg.encode();
        prop_assert_eq!(SnmpMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn snmp_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = mgmt::SnmpMessage::decode(&data); // must not panic
    }

    #[test]
    fn flowkey_extract_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = FlowKey::extract_lossy(1, &data); // must not panic
    }

    #[test]
    fn vlan_push_pop_identity(
        src in any::<u32>(),
        dst in any::<u32>(),
        vid in 1u16..4095,
        payload_len in 0usize..512,
    ) {
        let frame = builder::udp_packet(
            MacAddr::host(src),
            MacAddr::host(dst),
            std::net::Ipv4Addr::from(src),
            std::net::Ipv4Addr::from(dst),
            1,
            2,
            &vec![0u8; payload_len],
        );
        let tagged = push_vlan(&frame, VlanTag::new(vid)).unwrap();
        let key = FlowKey::extract(1, &tagged).unwrap();
        prop_assert_eq!(key.vlan_vid, 0x1000 | vid);
        let popped = pop_vlan(&tagged).unwrap();
        prop_assert_eq!(&popped[..], &frame[..]);
    }

    #[test]
    fn masking_is_idempotent_and_monotone(
        src in any::<u32>(),
        dport in any::<u16>(),
    ) {
        let frame = builder::udp_packet(
            MacAddr::host(src),
            MacAddr::host(2),
            std::net::Ipv4Addr::from(src),
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            1000,
            dport,
            b"x",
        );
        let key = FlowKey::extract(1, &frame).unwrap();
        let mut mask = FlowKey::empty_mask();
        mask.ipv4_src = 0xffff_0000;
        mask.udp_dst = u16::MAX;
        let m1 = key.masked(&mask);
        prop_assert_eq!(m1.masked(&mask), m1, "masking twice = masking once");
        // Union with another mask only preserves or adds bits.
        let mut mask2 = FlowKey::empty_mask();
        mask2.eth_type = u16::MAX;
        let u = mask.mask_union(&mask2);
        prop_assert_eq!(key.masked(&u).masked(&mask), m1);
    }

    /// The cache hierarchy must be semantically invisible: for any mix of
    /// rules and packets, `full` mode forwards exactly like `linear` mode.
    #[test]
    fn caches_preserve_forwarding_semantics(
        rules in proptest::collection::vec((0u16..32, 1u32..4), 1..20),
        packets in proptest::collection::vec((any::<u32>(), 0u16..32), 1..60),
    ) {
        let build = |mode: PipelineMode| {
            let mut dp = Datapath::new(DpConfig::software(1).with_mode(mode));
            for p in 1..=4 {
                dp.add_port(p, format!("p{p}"), 1_000_000);
            }
            for (i, &(dport, out)) in rules.iter().enumerate() {
                dp.apply_flow_mod(
                    &FlowMod::add(0)
                        .priority(10 + (i % 3) as u16)
                        .match_(Match::new().eth_type(0x0800).ip_proto(17).udp_dst(dport))
                        .apply(vec![Action::output(out)]),
                    0,
                ).unwrap();
            }
            dp
        };
        let mut slow = build(PipelineMode::linear());
        let mut fast = build(PipelineMode::full());
        for (i, &(src, dport)) in packets.iter().enumerate() {
            let frame: Bytes = builder::udp_packet(
                MacAddr::host(src),
                MacAddr::host(2),
                std::net::Ipv4Addr::from(src),
                std::net::Ipv4Addr::new(10, 0, 0, 2),
                1000,
                dport,
                b"x",
            );
            let a = slow.process(1, frame.clone(), i as u64);
            let b = fast.process(1, frame, i as u64);
            prop_assert_eq!(a.dropped, b.dropped, "packet {}", i);
            prop_assert_eq!(a.outputs, b.outputs, "packet {}", i);
        }
    }

    /// The batched fast path must be semantically invisible: for any mix
    /// of rules, pipeline mode and packet sequence, one `process_batch`
    /// call produces exactly the outputs, packet-ins and drop decisions
    /// of N sequential `process` calls, in the same per-frame order.
    #[test]
    fn process_batch_equals_sequential_process(
        rules in proptest::collection::vec((0u16..16, 1u32..4), 1..16),
        packets in proptest::collection::vec((0u32..6, 0u16..16), 1..80),
        mode_sel in 0usize..4,
        with_miss_to_controller in any::<bool>(),
    ) {
        let mode = [
            PipelineMode::linear(),
            PipelineMode::tss(),
            PipelineMode::microflow(),
            PipelineMode::full(),
        ][mode_sel];
        let build = || {
            let mut dp = Datapath::new(DpConfig::software(1).with_mode(mode));
            for p in 1..=4 {
                dp.add_port(p, format!("p{p}"), 1_000_000);
            }
            for (i, &(dport, out)) in rules.iter().enumerate() {
                dp.apply_flow_mod(
                    &FlowMod::add(0)
                        .priority(10 + (i % 3) as u16)
                        .match_(Match::new().eth_type(0x0800).ip_proto(17).udp_dst(dport))
                        .apply(vec![Action::output(out)]),
                    0,
                ).unwrap();
            }
            if with_miss_to_controller {
                dp.apply_flow_mod(
                    &FlowMod::add(0).priority(0).apply(vec![Action::to_controller()]),
                    0,
                ).unwrap();
            }
            dp
        };
        let frame = |&(src, dport): &(u32, u16)| -> Bytes {
            builder::udp_packet(
                MacAddr::host(src),
                MacAddr::host(2),
                std::net::Ipv4Addr::from(src),
                std::net::Ipv4Addr::new(10, 0, 0, 2),
                1000,
                dport,
                b"x",
            )
        };
        let now = 5u64;
        let mut seq_dp = build();
        let sequential: Vec<_> = packets
            .iter()
            .map(|p| seq_dp.process(1, frame(p), now))
            .collect();
        let mut batch_dp = build();
        let mut batch: FrameBatch = packets.iter().map(|p| (1u32, frame(p))).collect();
        let batched = batch_dp.process_batch(&mut batch, now);
        let batched = batched.per_frame();
        prop_assert_eq!(batched.len(), sequential.len());
        for (i, (s, b)) in sequential.iter().zip(&batched).enumerate() {
            prop_assert_eq!(&s.outputs, &b.outputs, "outputs of packet {}", i);
            prop_assert_eq!(&s.packet_ins, &b.packet_ins, "packet-ins of packet {}", i);
            prop_assert_eq!(s.dropped, b.dropped, "drop decision of packet {}", i);
        }
        // Aggregate state agrees too: every frame was processed and flow
        // counters saw identical traffic.
        prop_assert_eq!(seq_dp.packets_processed(), batch_dp.packets_processed());
        prop_assert_eq!(
            seq_dp.table(0).unwrap().entries().iter().map(|e| e.packets).collect::<Vec<_>>(),
            batch_dp.table(0).unwrap().entries().iter().map(|e| e.packets).collect::<Vec<_>>()
        );
    }

    /// Copy-on-write equivalence for frame-rewriting actions: batched
    /// service of interleaved VLAN-push, VLAN-pop and pure-forward flows
    /// produces byte-identical frames to scalar service, and a flow's
    /// rewrite never leaks into a neighbouring frame that shares the
    /// same backing storage (the CoW copy must be private).
    #[test]
    fn vlan_rewrite_batch_equals_sequential_process(
        packets in proptest::collection::vec((0u32..6, 0u16..3), 1..60),
    ) {
        use netpkt::VlanTag;
        // The UDP destination port selects the treatment: 0 → push a
        // tag, 1 → pure forward (never copied), 2 → arrives tagged and
        // gets the tag popped.
        let build = || {
            let mut dp = Datapath::new(DpConfig::software(1).with_mode(PipelineMode::full()));
            for p in 1..=4 {
                dp.add_port(p, format!("p{p}"), 1_000_000);
            }
            dp.apply_flow_mod(
                &FlowMod::add(0)
                    .priority(10)
                    .match_(Match::new().eth_type(0x0800).ip_proto(17).udp_dst(0))
                    .apply(vec![
                        Action::PushVlan(0x8100),
                        Action::set_vlan_vid(100),
                        Action::output(2),
                    ]),
                0,
            ).unwrap();
            dp.apply_flow_mod(
                &FlowMod::add(0)
                    .priority(10)
                    .match_(Match::new().eth_type(0x0800).ip_proto(17).udp_dst(1))
                    .apply(vec![Action::output(3)]),
                0,
            ).unwrap();
            dp.apply_flow_mod(
                &FlowMod::add(0)
                    .priority(5)
                    .apply(vec![Action::PopVlan, Action::output(4)]),
                0,
            ).unwrap();
            dp
        };
        let frame = |&(src, dport): &(u32, u16)| -> Bytes {
            let f = builder::udp_packet(
                MacAddr::host(src),
                MacAddr::host(2),
                std::net::Ipv4Addr::from(src),
                std::net::Ipv4Addr::new(10, 0, 0, 2),
                1000,
                dport,
                b"vlan",
            );
            if dport == 2 {
                netpkt::vlan::push_vlan(&f, VlanTag::new(101)).unwrap()
            } else {
                f
            }
        };
        let now = 3u64;
        let mut seq_dp = build();
        let sequential: Vec<_> = packets
            .iter()
            .map(|p| seq_dp.process(1, frame(p), now))
            .collect();
        let mut batch_dp = build();
        let originals: Vec<Bytes> = packets.iter().map(frame).collect();
        let mut batch: FrameBatch = originals.iter().map(|f| (1u32, f.clone())).collect();
        let batched = batch_dp.process_batch(&mut batch, now).per_frame();
        prop_assert_eq!(batched.len(), sequential.len());
        for (i, (s, b)) in sequential.iter().zip(&batched).enumerate() {
            prop_assert_eq!(&s.outputs, &b.outputs, "rewritten frames of packet {}", i);
            prop_assert_eq!(s.dropped, b.dropped, "drop decision of packet {}", i);
        }
        // CoW isolation: the ingress frames the batch shared storage
        // with are bit-for-bit what was submitted.
        for (i, (orig, p)) in originals.iter().zip(&packets).enumerate() {
            prop_assert_eq!(orig, &frame(p), "ingress frame {} was mutated in place", i);
        }
        prop_assert_eq!(seq_dp.packets_processed(), batch_dp.packets_processed());
    }

    /// Translator invariant: any packet entering tagged with a mapped
    /// VLAN exits untagged on the right patch port, and vice versa.
    #[test]
    fn translator_is_a_bijection(
        port in 1u16..48,
        src in any::<u32>(),
    ) {
        let map = harmless::PortMap::with_defaults(48).unwrap();
        let mut dp = Datapath::new(DpConfig::software(0x51));
        dp.add_port(1, "trunk", 10_000_000);
        for p in 1..=48u16 {
            dp.add_port(harmless::translator::patch_port(p), format!("patch{p}"), 10_000_000);
        }
        for fm in harmless::translator::translator_rules(&map, 1) {
            dp.apply_flow_mod(&fm, 0).unwrap();
        }
        let vlan = map.vlan_of(port).unwrap();
        let frame = builder::udp_packet(
            MacAddr::host(src),
            MacAddr::host(2),
            std::net::Ipv4Addr::from(src),
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            b"x",
        );
        // Down: trunk → patch(port), untagged.
        let tagged = push_vlan(&frame, VlanTag::new(vlan)).unwrap();
        let down = dp.process(1, tagged, 0);
        prop_assert_eq!(down.outputs.len(), 1);
        prop_assert_eq!(down.outputs[0].0, harmless::translator::patch_port(port));
        prop_assert_eq!(&down.outputs[0].1[..], &frame[..]);
        // Up: patch(port) → trunk, tagged with the same VLAN.
        let up = dp.process(harmless::translator::patch_port(port), frame, 1);
        prop_assert_eq!(up.outputs.len(), 1);
        prop_assert_eq!(up.outputs[0].0, 1);
        let key = FlowKey::extract(1, &up.outputs[0].1).unwrap();
        prop_assert_eq!(key.vlan_vid, 0x1000 | vlan);
    }

    /// Cross-pod forwarding equivalence: traffic between hosts in
    /// different pods arrives with identical application-visible content
    /// whether the network is plain legacy L2 (factory switches behind a
    /// spine, `Legacy`-direct) or a HARMLESS fabric (VLAN hairpinning,
    /// translators and a reactive SDN learning path). The retrofit must
    /// be invisible above L2.
    #[test]
    fn cross_pod_harmless_equals_legacy_direct(
        src_port in 1u16..5,
        dst_port in 1u16..5,
        dport in 1u16..1024,
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        use harmless::fabric::{FabricSpec, Interconnect};
        use harmless::instance::HarmlessSpec;
        use netsim::host::Host;
        use netsim::{LinkSpec, Network, PortId, SimTime};

        let deliver = |net: &mut Network, a: netsim::NodeId, b: netsim::NodeId,
                       dst_ip: std::net::Ipv4Addr, dport: u16, payload: &[u8]| {
            net.run_until(SimTime::from_millis(100));
            let p = payload.to_vec();
            net.with_node_ctx::<Host, _>(a, move |h, ctx| {
                h.send_udp(dst_ip, dport, &p);
                h.ping(b"equivalence", dst_ip);
                h.flush(ctx);
            });
            net.run_until(SimTime::from_millis(600));
            let replies = net.node_ref::<Host>(a).echo_replies_received();
            let mail: Vec<(std::net::Ipv4Addr, u16, u16, Vec<u8>)> = net
                .node_ref::<Host>(b)
                .mailbox()
                .iter()
                .map(|d| (d.src_ip, d.src_port, d.dst_port, d.payload.to_vec()))
                .collect();
            (replies, mail)
        };

        // World 1: the HARMLESS fabric, SDN-controlled.
        let (harmless_replies, harmless_mail) = {
            let mut net = Network::new(4242);
            let ctrl = net.add_node(controller::ControllerNode::new(
                "ctrl",
                vec![Box::new(controller::apps::LearningSwitch::new())],
            ));
            let mut fx = FabricSpec::new(2, HarmlessSpec::new(4))
                .with_interconnect(Interconnect::SpineLegacy)
                .build(&mut net)
                .expect("valid fabric spec");
            fx.configure_direct(&mut net);
            fx.connect_controller(&mut net, ctrl);
            let a = fx.attach_host(&mut net, 0, src_port).expect("free port");
            let b = fx.attach_host(&mut net, 1, dst_port).expect("free port");
            let dst_ip = fx.host_ip(1, dst_port);
            deliver(&mut net, a, b, dst_ip, dport, &payload)
        };

        // World 2: the same stations on plain factory-default legacy
        // switches behind the same spine — no VLANs, no SDN.
        let (legacy_replies, legacy_mail) = {
            let mut net = Network::new(4242);
            let sw0 = net.add_node(legacy_switch::LegacySwitchNode::new("sw0", 5));
            let sw1 = net.add_node(legacy_switch::LegacySwitchNode::new("sw1", 5));
            let spine = net.add_node(legacy_switch::LegacySwitchNode::new("spine", 2));
            net.connect(sw0, PortId(5), spine, PortId(1), LinkSpec::ten_gigabit());
            net.connect(sw1, PortId(5), spine, PortId(2), LinkSpec::ten_gigabit());
            // Identical station identities to the fabric world.
            let a = net.add_node(Host::new(
                "a",
                MacAddr::host(u32::from(src_port)),
                std::net::Ipv4Addr::new(10, 0, 0, src_port as u8),
            ));
            let b = net.add_node(Host::new(
                "b",
                MacAddr::host(1 << 16 | u32::from(dst_port)),
                std::net::Ipv4Addr::new(10, 1, 0, dst_port as u8),
            ));
            net.connect(a, PortId(0), sw0, PortId(src_port), LinkSpec::gigabit());
            net.connect(b, PortId(0), sw1, PortId(dst_port), LinkSpec::gigabit());
            let dst_ip = std::net::Ipv4Addr::new(10, 1, 0, dst_port as u8);
            deliver(&mut net, a, b, dst_ip, dport, &payload)
        };

        prop_assert_eq!(harmless_replies, 1, "fabric ping must complete");
        prop_assert_eq!(legacy_replies, 1, "legacy ping must complete");
        prop_assert_eq!(harmless_mail, legacy_mail,
            "datagrams must arrive identically in both worlds");
    }

    /// The sharded conservative engine is an *engine*, not a model: on
    /// any random small fabric with arbitrary ping traffic it must
    /// reproduce the classic single-queue loop's per-pod observable
    /// state — per-host reply/answer/rx counters, controller totals and
    /// the processed event count — for any thread count.
    #[test]
    fn sharded_engine_equals_single_queue_engine(
        n_pods in 1u16..=3,
        n_ports in 2u16..=4,
        ic_pick in 0u8..3,
        threads in 1usize..=4,
        pings in proptest::collection::vec(
            (any::<u16>(), any::<u16>(), any::<u16>(), any::<u16>()),
            1..6,
        ),
    ) {
        use harmless::fabric::{FabricSpec, Interconnect};
        use harmless::instance::HarmlessSpec;
        use netsim::host::Host;
        use netsim::{Network, NodeId, SimTime};

        let run = |threads: Option<usize>| -> (Vec<(u64, u64, u64)>, u64, u64, u64) {
            let mut net = Network::new(2026);
            let ctrl = net.add_node(controller::ControllerNode::new(
                "ctrl",
                vec![Box::new(controller::apps::LearningSwitch::new())],
            ));
            let ic = if n_pods == 1 {
                Interconnect::None
            } else {
                match ic_pick {
                    0 => Interconnect::Line,
                    1 => Interconnect::SpineSoft,
                    _ => Interconnect::SpineLegacy,
                }
            };
            let mut fx = FabricSpec::new(n_pods, HarmlessSpec::new(n_ports))
                .with_interconnect(ic)
                .build(&mut net)
                .expect("valid fabric spec");
            fx.configure_direct(&mut net);
            fx.connect_controller(&mut net, ctrl);
            let mut hosts: Vec<NodeId> = Vec::new();
            for p in 0..usize::from(n_pods) {
                for i in 1..=n_ports {
                    hosts.push(fx.attach_host(&mut net, p, i).expect("free port"));
                }
            }
            if let Some(t) = threads {
                net.set_shards(&fx.shard_map());
                net.set_threads(t);
            }
            net.run_until(SimTime::from_millis(100));
            // Arbitrary (src, dst) ping pairs, staggered 50 µs apart.
            for (k, &(sp, spo, dp, dpo)) in pings.iter().enumerate() {
                let src_pod = usize::from(sp) % usize::from(n_pods);
                let src_port = 1 + spo % n_ports;
                let dst_pod = usize::from(dp) % usize::from(n_pods);
                let dst_port = 1 + dpo % n_ports;
                let h = hosts[src_pod * usize::from(n_ports) + usize::from(src_port) - 1];
                let target = fx.host_ip(dst_pod, dst_port);
                net.with_node_ctx::<Host, _>(h, move |h, ctx| {
                    h.ping(format!("p{k}").as_bytes(), target);
                    h.flush(ctx);
                });
                net.run_for(SimTime::from_micros(50));
            }
            net.run_until(SimTime::from_millis(700));
            let per_host: Vec<(u64, u64, u64)> = hosts
                .iter()
                .map(|&h| {
                    let host = net.node_ref::<Host>(h);
                    (
                        host.echo_replies_received(),
                        host.echo_requests_answered(),
                        host.rx_frames(),
                    )
                })
                .collect();
            let c = net.node_ref::<controller::ControllerNode>(ctrl);
            (per_host, c.packet_ins(), c.flow_mods_sent(), net.events_processed())
        };

        let legacy = run(None);
        let sharded = run(Some(threads));
        prop_assert_eq!(&legacy.0, &sharded.0, "per-host observables diverged");
        prop_assert_eq!(legacy.1, sharded.1, "packet-in counts diverged");
        prop_assert_eq!(legacy.2, sharded.2, "flow-mod counts diverged");
        prop_assert_eq!(legacy.3, sharded.3, "event counts diverged");
        // Pings to other hosts must actually complete (self-pings cannot
        // resolve ARP and legitimately stay pending).
        let total: u64 = legacy.0.iter().map(|h| h.0).sum();
        let self_pings = pings.iter().filter(|&&(sp, spo, dp, dpo)| {
            usize::from(sp) % usize::from(n_pods) == usize::from(dp) % usize::from(n_pods)
                && spo % n_ports == dpo % n_ports
        }).count() as u64;
        prop_assert!(
            total + self_pings >= pings.len() as u64,
            "pings lost: {} replies + {} self of {}",
            total, self_pings, pings.len()
        );
    }

    /// Bridge invariant: frames never exit their ingress port and never
    /// leave their VLAN.
    #[test]
    fn bridge_isolation_invariant(
        in_port in 1u16..9,
        src in any::<u32>(),
        dst in any::<u32>(),
    ) {
        let mut bridge = legacy_switch::Bridge::new(9);
        for p in 1..=4u16 {
            bridge.make_access_port(p, 100 + p).unwrap();
        }
        bridge.make_trunk_port(9, &[101, 102, 103, 104]).unwrap();
        let frame = builder::udp_packet(
            MacAddr::host(src),
            MacAddr::host(dst),
            std::net::Ipv4Addr::from(src),
            std::net::Ipv4Addr::from(dst),
            1,
            2,
            b"x",
        );
        let out = bridge.forward(in_port, &frame, 0);
        for (p, f) in &out.outputs {
            prop_assert_ne!(*p, in_port, "no hairpin to ingress");
            if out.vlan >= 101 && out.vlan <= 104 {
                // Members of per-port VLANs: only the access port + trunk.
                let access = (out.vlan - 100) as u16;
                prop_assert!(*p == access || *p == 9, "port {} outside VLAN {}", p, out.vlan);
            }
            // Egress tagging discipline: per-port VLANs leave the trunk
            // tagged and access ports untagged. (The factory VLAN 1 is
            // untagged everywhere, including the trunk, so it is exempt.)
            let tag = netpkt::vlan::outer_tag(f);
            if (101..=104).contains(&out.vlan) {
                if *p == 9 {
                    prop_assert!(tag.is_some());
                } else {
                    prop_assert!(tag.is_none());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// L3 pipeline properties (routing, NAT, TTL/checksum) — the oracle
// suites pinning the edge-router datapath of the `exp_l3` scenarios.
// ---------------------------------------------------------------------

use softswitch::actions::{dec_ttl, TtlResult};
use softswitch::nat::{NatProto, NatTable};
use softswitch::route::prefix_mask;
use softswitch::{LpmTable, NatConfig};

/// Addresses drawn from a deliberately tiny pool so generated prefixes
/// overlap (nested supernets, sibling subnets, exact duplicates).
fn arb_lpm_base() -> impl Strategy<Value = u32> {
    prop_oneof![
        Just(0x0a00_0000u32), // 10.0.0.0
        Just(0x0a01_0000u32), // 10.1.0.0
        Just(0x0a01_8000u32), // 10.1.128.0
        Just(0x0aff_0000u32), // 10.255.0.0
        any::<u32>(),
    ]
}

/// One step of the NAT state machine:
/// `0` = egress(host, id), `1` = ingress(ext), `2` = sweep, `3` = wait.
fn arb_nat_op() -> impl Strategy<Value = (u8, u8, u16, u64)> {
    (0u8..4, any::<u8>(), any::<u16>(), 0u64..1500)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// LPM table ≡ naive linear-scan oracle, under heavy prefix
    /// overlap, duplicate inserts and default-route (`/0`) fallback.
    #[test]
    fn lpm_lookup_matches_linear_scan_oracle(
        routes in proptest::collection::vec((arb_lpm_base(), 0u8..=32, any::<u16>()), 0..24),
        with_default in any::<bool>(),
        probes in proptest::collection::vec((any::<usize>(), any::<u32>(), any::<bool>()), 1..48),
    ) {
        let mut table: LpmTable<u16> = LpmTable::new();
        // The oracle: a flat list of (masked prefix, len, value),
        // replace-on-duplicate, scanned linearly per lookup.
        let mut oracle: Vec<(u32, u8, u16)> = Vec::new();
        let mut insert = |table: &mut LpmTable<u16>, addr: u32, len: u8, val: u16| {
            let masked = addr & prefix_mask(len);
            table.insert(std::net::Ipv4Addr::from(addr), len, val);
            if let Some(slot) = oracle.iter_mut().find(|r| (r.0, r.1) == (masked, len)) {
                slot.2 = val;
            } else {
                oracle.push((masked, len, val));
            }
        };
        for &(addr, len, val) in &routes {
            insert(&mut table, addr, len, val);
        }
        if with_default {
            insert(&mut table, 0, 0, 0xd00d);
        }
        prop_assert_eq!(table.len(), oracle.len());
        for &(idx, bits, random) in &probes {
            // Half the probes land inside an installed prefix (random
            // host bits), half are fully random.
            let addr = if random || oracle.is_empty() {
                bits
            } else {
                let (p, len, _) = oracle[idx % oracle.len()];
                p | (bits & !prefix_mask(len))
            };
            let want = oracle
                .iter()
                .filter(|&&(p, len, _)| addr & prefix_mask(len) == p)
                .max_by_key(|&&(_, len, _)| len)
                .map(|&(_, len, val)| (len, val));
            let got = table
                .lookup(std::net::Ipv4Addr::from(addr))
                .map(|(len, &val)| (len, val));
            prop_assert_eq!(got, want, "probe {:?}", std::net::Ipv4Addr::from(addr));
        }
    }

    /// NAT connection table vs an exact model, under arbitrary
    /// egress/ingress/sweep/wait interleavings: every live mapping
    /// round-trips, no two live connections share an external
    /// identifier, and idle/LRU eviction behaves deterministically.
    #[test]
    fn nat_state_machine_matches_model_under_interleavings(
        ops in proptest::collection::vec(arb_nat_op(), 1..80),
    ) {
        const IDLE_NS: u64 = 1_000;
        const MAX_CONNS: usize = 4;
        let mut nat = NatTable::new();
        nat.configure(NatConfig {
            external_ip: std::net::Ipv4Addr::new(198, 18, 0, 254),
            port_lo: 49152,
            port_hi: 49159, // 8 ids for 4 conns: allocation never starves
            idle_timeout_ns: IDLE_NS,
            max_conns: MAX_CONNS,
        });
        // Model: token → (proto, int_ip, int_id, ext_id, last_used).
        let mut model: std::collections::BTreeMap<u64, (NatProto, std::net::Ipv4Addr, u16, u16, u64)> =
            std::collections::BTreeMap::new();
        let mut now = 0u64;
        let protos = [NatProto::Tcp, NatProto::Udp, NatProto::Icmp];
        for &(kind, host, id16, dt) in &ops {
            match kind {
                0 => {
                    // Egress from a small key space (2 ips × 4 ids × 3
                    // protos) to force reuse and LRU churn.
                    let proto = protos[usize::from(host) % 3];
                    let int_ip = std::net::Ipv4Addr::new(10, 0, 0, 1 + host % 2);
                    let int_id = id16 % 4;
                    let existing = model
                        .iter()
                        .find(|(_, c)| (c.0, c.1, c.2) == (proto, int_ip, int_id))
                        .map(|(&t, _)| t);
                    let m = nat.egress(proto, int_ip, int_id, now).expect("configured");
                    match existing {
                        Some(t) => {
                            let c = model.get_mut(&t).unwrap();
                            prop_assert_eq!(m.ext_id, c.3, "stable mapping for a live flow");
                            prop_assert!(!m.evicted);
                            c.4 = now;
                        }
                        None => {
                            let full = model.len() == MAX_CONNS;
                            prop_assert_eq!(m.evicted, full, "evict exactly when full");
                            if full {
                                // LRU = least (last_used, token), as documented.
                                let lru = *model
                                    .iter()
                                    .min_by_key(|(&t, c)| (c.4, t))
                                    .map(|(t, _)| t)
                                    .unwrap();
                                model.remove(&lru);
                            }
                            prop_assert!(
                                model.values().all(|c| c.3 != m.ext_id),
                                "external id {} handed out twice", m.ext_id
                            );
                            model.insert(m.token, (proto, int_ip, int_id, m.ext_id, now));
                        }
                    }
                    // Round-trip: the mapping must reverse immediately.
                    let back = nat.ingress(proto, m.ext_id, now).expect("fresh mapping reverses");
                    prop_assert_eq!((back.int_ip, back.int_id), (int_ip, int_id));
                    prop_assert_eq!(back.token, m.token);
                }
                1 => {
                    // Ingress for an arbitrary external id (sometimes a
                    // live one, sometimes garbage / wrong protocol).
                    let proto = protos[usize::from(host) % 3];
                    let ext = 49152 + id16 % 10;
                    let want = model
                        .iter()
                        .find(|(_, c)| c.3 == ext)
                        .map(|(&t, c)| (c.0 == proto).then_some((t, c.1, c.2)));
                    let got = nat.ingress(proto, ext, now);
                    match want {
                        Some(Some((t, ip, id))) => {
                            let got = got.expect("live mapping answers");
                            prop_assert_eq!((got.token, got.int_ip, got.int_id), (t, ip, id));
                            model.get_mut(&t).unwrap().4 = now;
                        }
                        _ => prop_assert!(got.is_none(), "dead/mismatched ext id must drop"),
                    }
                }
                2 => {
                    let dead: Vec<u64> = model
                        .iter()
                        .filter(|(_, c)| now.saturating_sub(c.4) >= IDLE_NS)
                        .map(|(&t, _)| t)
                        .collect();
                    prop_assert_eq!(nat.sweep(now), dead.len(), "idle reclaim count");
                    for t in dead {
                        model.remove(&t);
                    }
                }
                _ => now += dt,
            }
            prop_assert_eq!(nat.live_conns(), model.len());
            let exts: std::collections::HashSet<u16> = model.values().map(|c| c.3).collect();
            prop_assert_eq!(exts.len(), model.len(), "live external ids must be unique");
        }
    }

    /// The edge-router pipeline (classifier → NAT → LPM routes) must
    /// behave identically whether frames take the scalar slow path or
    /// the batched/cached fast path: same rewritten bytes, same drops,
    /// same TTL expiries, same NAT connection state.
    #[test]
    fn routed_nat_pipeline_batch_equals_scalar(
        packets in proptest::collection::vec((0u8..4, 0u8..3, 0u16..8, any::<bool>()), 1..60),
        mode_sel in 0usize..4,
    ) {
        use openflow::{Instruction, NatDir};
        let mode = [
            PipelineMode::linear(),
            PipelineMode::tss(),
            PipelineMode::microflow(),
            PipelineMode::full(),
        ][mode_sel];
        let ext = std::net::Ipv4Addr::new(198, 18, 0, 254);
        let router_mac = MacAddr::host(0x4e);
        let build = || {
            let mut dp = Datapath::new(DpConfig::software(1).with_mode(mode));
            for p in 1..=4 {
                dp.add_port(p, format!("p{p}"), 1_000_000);
            }
            dp.set_router(std::net::Ipv4Addr::new(10, 0, 255, 254), router_mac);
            dp.configure_nat(softswitch::NatConfig::new(ext));
            // Table 0: IPv4 classifier. Table 1: reverse NAT for the
            // external address, else fall through. Table 2: LPM routes.
            dp.apply_flow_mod(
                &FlowMod::add(0).priority(10).match_(Match::new().eth_type(0x0800)).goto(1),
                0,
            ).unwrap();
            dp.apply_flow_mod(
                &FlowMod::add(1).priority(50)
                    .match_(Match::new().eth_type(0x0800).ipv4_dst(ext))
                    .instructions(vec![
                        Instruction::ApplyActions(vec![Action::Nat(NatDir::Ingress)]),
                        Instruction::GotoTable(2),
                    ]),
                0,
            ).unwrap();
            dp.apply_flow_mod(&FlowMod::add(1).priority(0).goto(2), 0).unwrap();
            let route = |prefix: [u8; 4], len: u8, prio: u16, nat: Option<NatDir>, out: u32| {
                let mask = std::net::Ipv4Addr::from(softswitch::route::prefix_mask(len));
                let m = if len == 0 {
                    Match::new().eth_type(0x0800)
                } else {
                    Match::new().eth_type(0x0800)
                        .ipv4_dst_masked(std::net::Ipv4Addr::from(prefix), mask)
                };
                let mut acts = vec![Action::DecNwTtl];
                if let Some(dir) = nat {
                    acts.push(Action::Nat(dir));
                }
                acts.push(Action::SetField(OxmField::EthSrc(router_mac, None)));
                acts.push(Action::SetField(OxmField::EthDst(MacAddr::host(0x77), None)));
                acts.push(Action::output(out));
                FlowMod::add(2).priority(prio).match_(m).apply(acts)
            };
            dp.apply_flow_mod(&route([10, 0, 0, 2], 32, 72, None, 2), 0).unwrap();
            dp.apply_flow_mod(&route([10, 1, 0, 0], 16, 56, None, 3), 0).unwrap();
            dp.apply_flow_mod(&route([0, 0, 0, 0], 0, 40, Some(NatDir::Egress), 4), 0).unwrap();
            dp
        };
        let frame = |&(kind, host, port, low_ttl): &(u8, u8, u16, bool)| -> Bytes {
            let src = std::net::Ipv4Addr::new(10, 0, 0, 1 + host);
            // Local /32, aggregate /16, NAT'd default route, and
            // inbound-to-external (reverse NAT, drops unless a prior
            // egress packet established the connection).
            let dst = match kind {
                0 => std::net::Ipv4Addr::new(10, 0, 0, 2),
                1 => std::net::Ipv4Addr::new(10, 1, 0, 5),
                2 => std::net::Ipv4Addr::new(8, 8, 8, 8),
                _ => ext,
            };
            let f = builder::udp_packet(
                MacAddr::host(u32::from(host)), router_mac, src, dst,
                1000 + port, 49152 + port, b"pl",
            );
            if low_ttl {
                let mut buf = bytes::BytesMut::from(&f[..]);
                let mut ip = netpkt::Ipv4Packet::new_unchecked(&mut buf[14..]);
                ip.set_ttl(1);
                ip.fill_checksum();
                buf.freeze()
            } else {
                f
            }
        };
        let now = 7u64;
        let mut seq_dp = build();
        let sequential: Vec<_> = packets.iter().map(|p| seq_dp.process(1, frame(p), now)).collect();
        let mut batch_dp = build();
        let mut batch: FrameBatch = packets.iter().map(|p| (1u32, frame(p))).collect();
        let batched = batch_dp.process_batch(&mut batch, now);
        let batched = batched.per_frame();
        prop_assert_eq!(batched.len(), sequential.len());
        for (i, (s, b)) in sequential.iter().zip(&batched).enumerate() {
            prop_assert_eq!(&s.outputs, &b.outputs, "rewritten frames of packet {}", i);
            prop_assert_eq!(s.dropped, b.dropped, "drop decision of packet {}", i);
            prop_assert_eq!(&s.packet_ins, &b.packet_ins, "packet-ins of packet {}", i);
        }
        prop_assert_eq!(seq_dp.ttl_expired_total(), batch_dp.ttl_expired_total());
        prop_assert_eq!(seq_dp.nat_dropped_total(), batch_dp.nat_dropped_total());
        prop_assert_eq!(seq_dp.nat().created(), batch_dp.nat().created());
        prop_assert_eq!(seq_dp.nat().live_conns(), batch_dp.nat().live_conns());
        prop_assert_eq!(seq_dp.packets_processed(), batch_dp.packets_processed());
    }

    /// The routing stage's incremental TTL/checksum patch produces, at
    /// every hop, exactly the checksum a full `netpkt::checksum`
    /// recompute over the header yields — until the TTL hits 1, at
    /// which point the frame is left untouched.
    #[test]
    fn ttl_decrement_patches_checksum_like_a_full_recompute(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        ttl in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let frame = builder::udp_packet(
            MacAddr::host(1), MacAddr::host(2), src, dst, sport, dport, &payload,
        );
        let mut buf = bytes::BytesMut::from(&frame[..]);
        {
            let mut ip = netpkt::Ipv4Packet::new_unchecked(&mut buf[14..]);
            ip.set_ttl(ttl);
            ip.fill_checksum();
        }
        for hop in 0..4u8 {
            let before = netpkt::Ipv4Packet::new_checked(&buf[14..]).unwrap().ttl();
            let res = dec_ttl(&mut buf);
            let ip = netpkt::Ipv4Packet::new_checked(&buf[14..]).unwrap();
            if before <= 1 {
                prop_assert_eq!(res, TtlResult::Expired);
                prop_assert_eq!(ip.ttl(), before, "expired frames stay untouched");
                break;
            }
            prop_assert_eq!(res, TtlResult::Decremented, "hop {}", hop);
            prop_assert_eq!(ip.ttl(), before - 1);
            // Oracle: zero the checksum field and recompute from scratch.
            let hdr_len = ip.header_len();
            let mut hdr = buf[14..14 + hdr_len].to_vec();
            hdr[10] = 0;
            hdr[11] = 0;
            prop_assert_eq!(
                netpkt::checksum::checksum(&hdr),
                ip.header_checksum(),
                "incremental patch diverged from full recompute at hop {}", hop
            );
            prop_assert!(ip.verify_checksum());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fail-standalone equivalence: with the controller unreachable
    /// from the first instant and every software switch in
    /// `FailMode::Standalone`, cross-pod traffic must arrive with
    /// identical application-visible content to the plain legacy-L2
    /// world — the local flood fallback stands in for the reactive SDN
    /// path, invisibly above L2.
    #[test]
    fn fail_standalone_equals_legacy_direct(
        src_port in 1u16..5,
        dst_port in 1u16..5,
        dport in 1u16..1024,
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        use harmless::fabric::{FabricSpec, Interconnect};
        use harmless::instance::HarmlessSpec;
        use netsim::host::Host;
        use netsim::{LinkSpec, Network, PortId, SimTime};
        use softswitch::FailMode;

        let deliver = |net: &mut Network, a: netsim::NodeId, b: netsim::NodeId,
                       dst_ip: std::net::Ipv4Addr, dport: u16, payload: &[u8]| {
            net.run_until(SimTime::from_millis(100));
            let p = payload.to_vec();
            net.with_node_ctx::<Host, _>(a, move |h, ctx| {
                h.send_udp(dst_ip, dport, &p);
                h.ping(b"equivalence", dst_ip);
                h.flush(ctx);
            });
            net.run_until(SimTime::from_millis(600));
            let replies = net.node_ref::<Host>(a).echo_replies_received();
            let mail: Vec<(std::net::Ipv4Addr, u16, u16, Vec<u8>)> = net
                .node_ref::<Host>(b)
                .mailbox()
                .iter()
                .map(|d| (d.src_ip, d.src_port, d.dst_port, d.payload.to_vec()))
                .collect();
            (replies, mail)
        };

        // World 1: the HARMLESS fabric whose controller is partitioned
        // away before anything runs. Fast keepalives declare it dead
        // well inside the warm-up window; fail-standalone takes over.
        let (standalone_replies, standalone_mail) = {
            let mut net = Network::new(4242);
            let ctrl = net.add_node(controller::ControllerNode::new(
                "ctrl",
                vec![Box::new(controller::apps::LearningSwitch::new())],
            ));
            let mut fx = FabricSpec::new(2, HarmlessSpec::new(4))
                .with_interconnect(Interconnect::SpineLegacy)
                .build(&mut net)
                .expect("valid fabric spec");
            fx.configure_direct(&mut net);
            fx.connect_controller(&mut net, ctrl);
            fx.for_each_softswitch(&mut net, |sw| {
                sw.set_fail_mode(FailMode::Standalone);
                sw.set_keepalive(SimTime::from_millis(20), 2);
                sw.set_backoff(SimTime::from_millis(20), SimTime::from_millis(80));
            });
            net.ctrl_down(ctrl);
            let a = fx.attach_host(&mut net, 0, src_port).expect("free port");
            let b = fx.attach_host(&mut net, 1, dst_port).expect("free port");
            let dst_ip = fx.host_ip(1, dst_port);
            deliver(&mut net, a, b, dst_ip, dport, &payload)
        };

        // World 2: the same stations on plain factory-default legacy
        // switches behind the same spine — no VLANs, no SDN.
        let (legacy_replies, legacy_mail) = {
            let mut net = Network::new(4242);
            let sw0 = net.add_node(legacy_switch::LegacySwitchNode::new("sw0", 5));
            let sw1 = net.add_node(legacy_switch::LegacySwitchNode::new("sw1", 5));
            let spine = net.add_node(legacy_switch::LegacySwitchNode::new("spine", 2));
            net.connect(sw0, PortId(5), spine, PortId(1), LinkSpec::ten_gigabit());
            net.connect(sw1, PortId(5), spine, PortId(2), LinkSpec::ten_gigabit());
            let a = net.add_node(Host::new(
                "a",
                MacAddr::host(u32::from(src_port)),
                std::net::Ipv4Addr::new(10, 0, 0, src_port as u8),
            ));
            let b = net.add_node(Host::new(
                "b",
                MacAddr::host(1 << 16 | u32::from(dst_port)),
                std::net::Ipv4Addr::new(10, 1, 0, dst_port as u8),
            ));
            net.connect(a, PortId(0), sw0, PortId(src_port), LinkSpec::gigabit());
            net.connect(b, PortId(0), sw1, PortId(dst_port), LinkSpec::gigabit());
            let dst_ip = std::net::Ipv4Addr::new(10, 1, 0, dst_port as u8);
            deliver(&mut net, a, b, dst_ip, dport, &payload)
        };

        prop_assert_eq!(standalone_replies, 1, "standalone ping must complete");
        prop_assert_eq!(legacy_replies, 1, "legacy ping must complete");
        prop_assert_eq!(standalone_mail, legacy_mail,
            "datagrams must arrive identically with a dead controller");
    }

    /// Resync idempotence: on a control channel that randomly drops,
    /// duplicates and reorders messages, the barrier fate-sharing
    /// resync must converge every datapath to the *exact* rule set of
    /// a lossless run — and the whole impaired run must be
    /// bit-identical for any worker-thread count.
    #[test]
    fn lossy_ctrl_resync_converges_to_fault_free_rules(
        seed in any::<u64>(),
        drop in 0.02f64..0.15,
        dup in 0.0f64..0.10,
        reorder in 0.0f64..0.10,
        threads in 2usize..=4,
    ) {
        use harmless::fabric::{FabricSpec, Interconnect};
        use harmless::instance::HarmlessSpec;
        use netsim::{CtrlProfile, Network, SimTime};

        let run = |profile: CtrlProfile, threads: Option<usize>| {
            let mut net = Network::new(seed);
            let ctrl = net.add_node(controller::ControllerNode::new(
                "ctrl",
                vec![
                    Box::new(controller::apps::ArpProxy::new()),
                    Box::new(controller::apps::LearningSwitch::new()),
                ],
            ));
            let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
                .with_interconnect(Interconnect::SpineSoft)
                .with_arp_proxy(true)
                .build(&mut net)
                .expect("valid fabric spec");
            fx.configure_direct(&mut net);
            fx.connect_controller(&mut net, ctrl);
            fx.attach_host(&mut net, 0, 1).expect("free port");
            fx.attach_host(&mut net, 1, 1).expect("free port");
            // Fast retry so even an unlucky drop streak leaves dozens
            // of handshake attempts inside the window.
            fx.for_each_softswitch(&mut net, |sw| {
                sw.set_keepalive(SimTime::from_millis(50), 2);
                sw.set_backoff(SimTime::from_millis(50), SimTime::from_millis(200));
            });
            net.set_ctrl_profile(profile);
            if let Some(t) = threads {
                net.set_shards(&fx.shard_map());
                net.set_threads(t);
            }
            net.run_until(SimTime::from_secs(3));
            // Heal the channel and let the periodic resync quiesce: the
            // convergence claim is about where the state settles once
            // the impairment ends, not about a lucky mid-handshake
            // snapshot (a reply lost just before the cutoff is only
            // re-driven on the next 1 s controller tick).
            net.set_ctrl_profile(CtrlProfile::lossless());
            net.run_until(SimTime::from_secs(6));
            let nodes = [fx.pod(0).ss2, fx.pod(1).ss2, fx.spine().expect("soft spine").node()];
            let rules: Vec<Vec<String>> = nodes
                .iter()
                .map(|&n| {
                    let mut v: Vec<String> = net
                        .node_ref::<softswitch::SoftSwitchNode>(n)
                        .datapath()
                        .table(0)
                        .expect("table 0")
                        .entries()
                        .iter()
                        .map(|e| format!("{}|{:?}|{:?}", e.priority, e.match_, e.instructions))
                        .collect();
                    v.sort();
                    v
                })
                .collect();
            (rules, net.events_processed(), net.ctrl_stats().dropped)
        };

        let profile = CtrlProfile::lossy(drop)
            .with_dup(dup)
            .with_reorder(reorder, SimTime::from_micros(200));
        let clean = run(CtrlProfile::lossless(), None);
        let lossy = run(profile, Some(1));
        prop_assert_eq!(&lossy.0, &clean.0,
            "impaired control channel must converge to the fault-free rule set");
        let sharded = run(profile, Some(threads));
        prop_assert_eq!(
            (&sharded.0, sharded.1, sharded.2),
            (&lossy.0, lossy.1, lossy.2),
            "impaired run must be bit-identical for any thread count"
        );
    }
}
