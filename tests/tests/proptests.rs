//! Property-based tests over the workspace's codecs and core invariants.
//!
//! Three families:
//! * round-trip properties (encode ∘ decode = id) for OpenFlow, SNMP/BER
//!   and packet formats;
//! * fuzz-decode safety (arbitrary bytes never panic, only error);
//! * semantic invariants (cache result = slow-path result, translator
//!   bijectivity, flow-table priority order).

use bytes::Bytes;
use proptest::prelude::*;

use netpkt::vlan::{pop_vlan, push_vlan, VlanTag};
use netpkt::{builder, FlowKey, MacAddr};
use openflow::message::{FlowMod, Message};
use openflow::{Action, Match, OxmField};
use softswitch::datapath::{Datapath, DpConfig, PipelineMode};
use softswitch::FrameBatch;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_ipv4() -> impl Strategy<Value = std::net::Ipv4Addr> {
    any::<u32>().prop_map(std::net::Ipv4Addr::from)
}

fn arb_oxm_field() -> impl Strategy<Value = OxmField> {
    prop_oneof![
        (1u32..48).prop_map(OxmField::InPort),
        (any::<u64>(), any::<Option<u64>>()).prop_map(|(v, m)| OxmField::Metadata(v, m)),
        (arb_mac(), proptest::option::of(arb_mac())).prop_map(|(v, m)| OxmField::EthDst(v, m)),
        (arb_mac(), proptest::option::of(arb_mac())).prop_map(|(v, m)| OxmField::EthSrc(v, m)),
        any::<u16>().prop_map(OxmField::EthType),
        (0u16..4096).prop_map(|v| OxmField::VlanVid(0x1000 | v, None)),
        (0u8..8).prop_map(OxmField::VlanPcp),
        any::<u8>().prop_map(OxmField::IpProto),
        (arb_ipv4(), proptest::option::of(arb_ipv4())).prop_map(|(v, m)| OxmField::Ipv4Src(v, m)),
        (arb_ipv4(), proptest::option::of(arb_ipv4())).prop_map(|(v, m)| OxmField::Ipv4Dst(v, m)),
        any::<u16>().prop_map(OxmField::TcpSrc),
        any::<u16>().prop_map(OxmField::TcpDst),
        any::<u16>().prop_map(OxmField::UdpSrc),
        any::<u16>().prop_map(OxmField::UdpDst),
        any::<u8>().prop_map(OxmField::Icmpv4Type),
        (any::<u16>()).prop_map(OxmField::ArpOp),
        (arb_ipv4(), proptest::option::of(arb_ipv4())).prop_map(|(v, m)| OxmField::ArpSpa(v, m)),
        (any::<u128>(), proptest::option::of(any::<u128>()))
            .prop_map(|(v, m)| OxmField::Ipv6Src(v, m)),
    ]
}

fn arb_match() -> impl Strategy<Value = Match> {
    proptest::collection::vec(arb_oxm_field(), 0..6)
        .prop_map(|fields| fields.into_iter().fold(Match::new(), |m, f| m.with(f)))
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u32..48).prop_map(Action::output),
        Just(Action::to_controller()),
        any::<u32>().prop_map(Action::Group),
        any::<u32>().prop_map(Action::SetQueue),
        Just(Action::PushVlan(0x8100)),
        Just(Action::PushVlan(0x88a8)),
        Just(Action::PopVlan),
        (0u16..4095).prop_map(Action::set_vlan_vid),
        arb_mac().prop_map(|m| Action::SetField(OxmField::EthDst(m, None))),
        arb_ipv4().prop_map(|a| Action::SetField(OxmField::Ipv4Dst(a, None))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn of_match_round_trips(m in arb_match()) {
        let mut buf = bytes::BytesMut::new();
        m.encode(&mut buf);
        prop_assert_eq!(buf.len(), m.encoded_len());
        let mut s = &buf[..];
        let got = Match::decode(&mut s).unwrap();
        prop_assert!(s.is_empty());
        prop_assert_eq!(got, m);
    }

    #[test]
    fn of_flow_mod_round_trips(
        m in arb_match(),
        actions in proptest::collection::vec(arb_action(), 0..5),
        priority in any::<u16>(),
        cookie in any::<u64>(),
        idle in any::<u16>(),
        hard in any::<u16>(),
        xid in any::<u32>(),
    ) {
        let fm = FlowMod::add(0)
            .priority(priority)
            .match_(m)
            .apply(actions)
            .timeouts(idle, hard)
            .cookie(cookie);
        let wire = Message::FlowMod(fm.clone()).encode(xid);
        let (got_xid, got, used) = Message::decode(&wire).unwrap();
        prop_assert_eq!(got_xid, xid);
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(got, Message::FlowMod(fm));
    }

    #[test]
    fn of_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&data); // must not panic
    }

    #[test]
    fn snmp_message_round_trips(
        community in "[a-z]{1,12}",
        request_id in any::<i64>(),
        // X.690 §8.19: arc1 ∈ {0,1,2}; arc2 < 40 unless arc1 == 2. Keep
        // the generator inside the standard — OIDs like 0.40 are
        // inherently ambiguous on the wire.
        arc1 in 0u32..3,
        arc2 in 0u32..40,
        rest in proptest::collection::vec(0u32..100_000, 0..10),
        int_val in any::<i64>(),
        bytes_val in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        use mgmt::pdu::{Pdu, PduType, SnmpMessage, Value};
        let mut arcs = vec![arc1, arc2];
        arcs.extend(rest);
        let oid = mgmt::Oid(arcs);
        let msg = SnmpMessage::new(
            community,
            Pdu::request(
                PduType::Set,
                request_id,
                vec![
                    (oid.clone(), Value::Integer(int_val)),
                    (oid.child(1), Value::OctetString(bytes_val)),
                    (oid.child(2), Value::Counter64(int_val as u64)),
                ],
            ),
        );
        let wire = msg.encode();
        prop_assert_eq!(SnmpMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn snmp_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = mgmt::SnmpMessage::decode(&data); // must not panic
    }

    #[test]
    fn flowkey_extract_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = FlowKey::extract_lossy(1, &data); // must not panic
    }

    #[test]
    fn vlan_push_pop_identity(
        src in any::<u32>(),
        dst in any::<u32>(),
        vid in 1u16..4095,
        payload_len in 0usize..512,
    ) {
        let frame = builder::udp_packet(
            MacAddr::host(src),
            MacAddr::host(dst),
            std::net::Ipv4Addr::from(src),
            std::net::Ipv4Addr::from(dst),
            1,
            2,
            &vec![0u8; payload_len],
        );
        let tagged = push_vlan(&frame, VlanTag::new(vid)).unwrap();
        let key = FlowKey::extract(1, &tagged).unwrap();
        prop_assert_eq!(key.vlan_vid, 0x1000 | vid);
        let popped = pop_vlan(&tagged).unwrap();
        prop_assert_eq!(&popped[..], &frame[..]);
    }

    #[test]
    fn masking_is_idempotent_and_monotone(
        src in any::<u32>(),
        dport in any::<u16>(),
    ) {
        let frame = builder::udp_packet(
            MacAddr::host(src),
            MacAddr::host(2),
            std::net::Ipv4Addr::from(src),
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            1000,
            dport,
            b"x",
        );
        let key = FlowKey::extract(1, &frame).unwrap();
        let mut mask = FlowKey::empty_mask();
        mask.ipv4_src = 0xffff_0000;
        mask.udp_dst = u16::MAX;
        let m1 = key.masked(&mask);
        prop_assert_eq!(m1.masked(&mask), m1, "masking twice = masking once");
        // Union with another mask only preserves or adds bits.
        let mut mask2 = FlowKey::empty_mask();
        mask2.eth_type = u16::MAX;
        let u = mask.mask_union(&mask2);
        prop_assert_eq!(key.masked(&u).masked(&mask), m1);
    }

    /// The cache hierarchy must be semantically invisible: for any mix of
    /// rules and packets, `full` mode forwards exactly like `linear` mode.
    #[test]
    fn caches_preserve_forwarding_semantics(
        rules in proptest::collection::vec((0u16..32, 1u32..4), 1..20),
        packets in proptest::collection::vec((any::<u32>(), 0u16..32), 1..60),
    ) {
        let build = |mode: PipelineMode| {
            let mut dp = Datapath::new(DpConfig::software(1).with_mode(mode));
            for p in 1..=4 {
                dp.add_port(p, format!("p{p}"), 1_000_000);
            }
            for (i, &(dport, out)) in rules.iter().enumerate() {
                dp.apply_flow_mod(
                    &FlowMod::add(0)
                        .priority(10 + (i % 3) as u16)
                        .match_(Match::new().eth_type(0x0800).ip_proto(17).udp_dst(dport))
                        .apply(vec![Action::output(out)]),
                    0,
                ).unwrap();
            }
            dp
        };
        let mut slow = build(PipelineMode::linear());
        let mut fast = build(PipelineMode::full());
        for (i, &(src, dport)) in packets.iter().enumerate() {
            let frame: Bytes = builder::udp_packet(
                MacAddr::host(src),
                MacAddr::host(2),
                std::net::Ipv4Addr::from(src),
                std::net::Ipv4Addr::new(10, 0, 0, 2),
                1000,
                dport,
                b"x",
            );
            let a = slow.process(1, frame.clone(), i as u64);
            let b = fast.process(1, frame, i as u64);
            prop_assert_eq!(a.dropped, b.dropped, "packet {}", i);
            prop_assert_eq!(a.outputs, b.outputs, "packet {}", i);
        }
    }

    /// The batched fast path must be semantically invisible: for any mix
    /// of rules, pipeline mode and packet sequence, one `process_batch`
    /// call produces exactly the outputs, packet-ins and drop decisions
    /// of N sequential `process` calls, in the same per-frame order.
    #[test]
    fn process_batch_equals_sequential_process(
        rules in proptest::collection::vec((0u16..16, 1u32..4), 1..16),
        packets in proptest::collection::vec((0u32..6, 0u16..16), 1..80),
        mode_sel in 0usize..4,
        with_miss_to_controller in any::<bool>(),
    ) {
        let mode = [
            PipelineMode::linear(),
            PipelineMode::tss(),
            PipelineMode::microflow(),
            PipelineMode::full(),
        ][mode_sel];
        let build = || {
            let mut dp = Datapath::new(DpConfig::software(1).with_mode(mode));
            for p in 1..=4 {
                dp.add_port(p, format!("p{p}"), 1_000_000);
            }
            for (i, &(dport, out)) in rules.iter().enumerate() {
                dp.apply_flow_mod(
                    &FlowMod::add(0)
                        .priority(10 + (i % 3) as u16)
                        .match_(Match::new().eth_type(0x0800).ip_proto(17).udp_dst(dport))
                        .apply(vec![Action::output(out)]),
                    0,
                ).unwrap();
            }
            if with_miss_to_controller {
                dp.apply_flow_mod(
                    &FlowMod::add(0).priority(0).apply(vec![Action::to_controller()]),
                    0,
                ).unwrap();
            }
            dp
        };
        let frame = |&(src, dport): &(u32, u16)| -> Bytes {
            builder::udp_packet(
                MacAddr::host(src),
                MacAddr::host(2),
                std::net::Ipv4Addr::from(src),
                std::net::Ipv4Addr::new(10, 0, 0, 2),
                1000,
                dport,
                b"x",
            )
        };
        let now = 5u64;
        let mut seq_dp = build();
        let sequential: Vec<_> = packets
            .iter()
            .map(|p| seq_dp.process(1, frame(p), now))
            .collect();
        let mut batch_dp = build();
        let mut batch: FrameBatch = packets.iter().map(|p| (1u32, frame(p))).collect();
        let batched = batch_dp.process_batch(&mut batch, now);
        prop_assert_eq!(batched.results.len(), sequential.len());
        for (i, (s, b)) in sequential.iter().zip(&batched.results).enumerate() {
            prop_assert_eq!(&s.outputs, &b.outputs, "outputs of packet {}", i);
            prop_assert_eq!(&s.packet_ins, &b.packet_ins, "packet-ins of packet {}", i);
            prop_assert_eq!(s.dropped, b.dropped, "drop decision of packet {}", i);
        }
        // Aggregate state agrees too: every frame was processed and flow
        // counters saw identical traffic.
        prop_assert_eq!(seq_dp.packets_processed(), batch_dp.packets_processed());
        prop_assert_eq!(
            seq_dp.table(0).unwrap().entries().iter().map(|e| e.packets).collect::<Vec<_>>(),
            batch_dp.table(0).unwrap().entries().iter().map(|e| e.packets).collect::<Vec<_>>()
        );
    }

    /// Translator invariant: any packet entering tagged with a mapped
    /// VLAN exits untagged on the right patch port, and vice versa.
    #[test]
    fn translator_is_a_bijection(
        port in 1u16..48,
        src in any::<u32>(),
    ) {
        let map = harmless::PortMap::with_defaults(48).unwrap();
        let mut dp = Datapath::new(DpConfig::software(0x51));
        dp.add_port(1, "trunk", 10_000_000);
        for p in 1..=48u16 {
            dp.add_port(harmless::translator::patch_port(p), format!("patch{p}"), 10_000_000);
        }
        for fm in harmless::translator::translator_rules(&map, 1) {
            dp.apply_flow_mod(&fm, 0).unwrap();
        }
        let vlan = map.vlan_of(port).unwrap();
        let frame = builder::udp_packet(
            MacAddr::host(src),
            MacAddr::host(2),
            std::net::Ipv4Addr::from(src),
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            b"x",
        );
        // Down: trunk → patch(port), untagged.
        let tagged = push_vlan(&frame, VlanTag::new(vlan)).unwrap();
        let down = dp.process(1, tagged, 0);
        prop_assert_eq!(down.outputs.len(), 1);
        prop_assert_eq!(down.outputs[0].0, harmless::translator::patch_port(port));
        prop_assert_eq!(&down.outputs[0].1[..], &frame[..]);
        // Up: patch(port) → trunk, tagged with the same VLAN.
        let up = dp.process(harmless::translator::patch_port(port), frame, 1);
        prop_assert_eq!(up.outputs.len(), 1);
        prop_assert_eq!(up.outputs[0].0, 1);
        let key = FlowKey::extract(1, &up.outputs[0].1).unwrap();
        prop_assert_eq!(key.vlan_vid, 0x1000 | vlan);
    }

    /// Cross-pod forwarding equivalence: traffic between hosts in
    /// different pods arrives with identical application-visible content
    /// whether the network is plain legacy L2 (factory switches behind a
    /// spine, `Legacy`-direct) or a HARMLESS fabric (VLAN hairpinning,
    /// translators and a reactive SDN learning path). The retrofit must
    /// be invisible above L2.
    #[test]
    fn cross_pod_harmless_equals_legacy_direct(
        src_port in 1u16..5,
        dst_port in 1u16..5,
        dport in 1u16..1024,
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        use harmless::fabric::{FabricSpec, Interconnect};
        use harmless::instance::HarmlessSpec;
        use netsim::host::Host;
        use netsim::{LinkSpec, Network, PortId, SimTime};

        let deliver = |net: &mut Network, a: netsim::NodeId, b: netsim::NodeId,
                       dst_ip: std::net::Ipv4Addr, dport: u16, payload: &[u8]| {
            net.run_until(SimTime::from_millis(100));
            let p = payload.to_vec();
            net.with_node_ctx::<Host, _>(a, move |h, ctx| {
                h.send_udp(dst_ip, dport, &p);
                h.ping(b"equivalence", dst_ip);
                h.flush(ctx);
            });
            net.run_until(SimTime::from_millis(600));
            let replies = net.node_ref::<Host>(a).echo_replies_received();
            let mail: Vec<(std::net::Ipv4Addr, u16, u16, Vec<u8>)> = net
                .node_ref::<Host>(b)
                .mailbox()
                .iter()
                .map(|d| (d.src_ip, d.src_port, d.dst_port, d.payload.clone()))
                .collect();
            (replies, mail)
        };

        // World 1: the HARMLESS fabric, SDN-controlled.
        let (harmless_replies, harmless_mail) = {
            let mut net = Network::new(4242);
            let ctrl = net.add_node(controller::ControllerNode::new(
                "ctrl",
                vec![Box::new(controller::apps::LearningSwitch::new())],
            ));
            let mut fx = FabricSpec::new(2, HarmlessSpec::new(4))
                .with_interconnect(Interconnect::SpineLegacy)
                .build(&mut net)
                .expect("valid fabric spec");
            fx.configure_direct(&mut net);
            fx.connect_controller(&mut net, ctrl);
            let a = fx.attach_host(&mut net, 0, src_port).expect("free port");
            let b = fx.attach_host(&mut net, 1, dst_port).expect("free port");
            let dst_ip = fx.host_ip(1, dst_port);
            deliver(&mut net, a, b, dst_ip, dport, &payload)
        };

        // World 2: the same stations on plain factory-default legacy
        // switches behind the same spine — no VLANs, no SDN.
        let (legacy_replies, legacy_mail) = {
            let mut net = Network::new(4242);
            let sw0 = net.add_node(legacy_switch::LegacySwitchNode::new("sw0", 5));
            let sw1 = net.add_node(legacy_switch::LegacySwitchNode::new("sw1", 5));
            let spine = net.add_node(legacy_switch::LegacySwitchNode::new("spine", 2));
            net.connect(sw0, PortId(5), spine, PortId(1), LinkSpec::ten_gigabit());
            net.connect(sw1, PortId(5), spine, PortId(2), LinkSpec::ten_gigabit());
            // Identical station identities to the fabric world.
            let a = net.add_node(Host::new(
                "a",
                MacAddr::host(u32::from(src_port)),
                std::net::Ipv4Addr::new(10, 0, 0, src_port as u8),
            ));
            let b = net.add_node(Host::new(
                "b",
                MacAddr::host(1 << 16 | u32::from(dst_port)),
                std::net::Ipv4Addr::new(10, 1, 0, dst_port as u8),
            ));
            net.connect(a, PortId(0), sw0, PortId(src_port), LinkSpec::gigabit());
            net.connect(b, PortId(0), sw1, PortId(dst_port), LinkSpec::gigabit());
            let dst_ip = std::net::Ipv4Addr::new(10, 1, 0, dst_port as u8);
            deliver(&mut net, a, b, dst_ip, dport, &payload)
        };

        prop_assert_eq!(harmless_replies, 1, "fabric ping must complete");
        prop_assert_eq!(legacy_replies, 1, "legacy ping must complete");
        prop_assert_eq!(harmless_mail, legacy_mail,
            "datagrams must arrive identically in both worlds");
    }

    /// The sharded conservative engine is an *engine*, not a model: on
    /// any random small fabric with arbitrary ping traffic it must
    /// reproduce the classic single-queue loop's per-pod observable
    /// state — per-host reply/answer/rx counters, controller totals and
    /// the processed event count — for any thread count.
    #[test]
    fn sharded_engine_equals_single_queue_engine(
        n_pods in 1u16..=3,
        n_ports in 2u16..=4,
        ic_pick in 0u8..3,
        threads in 1usize..=4,
        pings in proptest::collection::vec(
            (any::<u16>(), any::<u16>(), any::<u16>(), any::<u16>()),
            1..6,
        ),
    ) {
        use harmless::fabric::{FabricSpec, Interconnect};
        use harmless::instance::HarmlessSpec;
        use netsim::host::Host;
        use netsim::{Network, NodeId, SimTime};

        let run = |threads: Option<usize>| -> (Vec<(u64, u64, u64)>, u64, u64, u64) {
            let mut net = Network::new(2026);
            let ctrl = net.add_node(controller::ControllerNode::new(
                "ctrl",
                vec![Box::new(controller::apps::LearningSwitch::new())],
            ));
            let ic = if n_pods == 1 {
                Interconnect::None
            } else {
                match ic_pick {
                    0 => Interconnect::Line,
                    1 => Interconnect::SpineSoft,
                    _ => Interconnect::SpineLegacy,
                }
            };
            let mut fx = FabricSpec::new(n_pods, HarmlessSpec::new(n_ports))
                .with_interconnect(ic)
                .build(&mut net)
                .expect("valid fabric spec");
            fx.configure_direct(&mut net);
            fx.connect_controller(&mut net, ctrl);
            let mut hosts: Vec<NodeId> = Vec::new();
            for p in 0..usize::from(n_pods) {
                for i in 1..=n_ports {
                    hosts.push(fx.attach_host(&mut net, p, i).expect("free port"));
                }
            }
            if let Some(t) = threads {
                net.set_shards(&fx.shard_map());
                net.set_threads(t);
            }
            net.run_until(SimTime::from_millis(100));
            // Arbitrary (src, dst) ping pairs, staggered 50 µs apart.
            for (k, &(sp, spo, dp, dpo)) in pings.iter().enumerate() {
                let src_pod = usize::from(sp) % usize::from(n_pods);
                let src_port = 1 + spo % n_ports;
                let dst_pod = usize::from(dp) % usize::from(n_pods);
                let dst_port = 1 + dpo % n_ports;
                let h = hosts[src_pod * usize::from(n_ports) + usize::from(src_port) - 1];
                let target = fx.host_ip(dst_pod, dst_port);
                net.with_node_ctx::<Host, _>(h, move |h, ctx| {
                    h.ping(format!("p{k}").as_bytes(), target);
                    h.flush(ctx);
                });
                net.run_for(SimTime::from_micros(50));
            }
            net.run_until(SimTime::from_millis(700));
            let per_host: Vec<(u64, u64, u64)> = hosts
                .iter()
                .map(|&h| {
                    let host = net.node_ref::<Host>(h);
                    (
                        host.echo_replies_received(),
                        host.echo_requests_answered(),
                        host.rx_frames(),
                    )
                })
                .collect();
            let c = net.node_ref::<controller::ControllerNode>(ctrl);
            (per_host, c.packet_ins(), c.flow_mods_sent(), net.events_processed())
        };

        let legacy = run(None);
        let sharded = run(Some(threads));
        prop_assert_eq!(&legacy.0, &sharded.0, "per-host observables diverged");
        prop_assert_eq!(legacy.1, sharded.1, "packet-in counts diverged");
        prop_assert_eq!(legacy.2, sharded.2, "flow-mod counts diverged");
        prop_assert_eq!(legacy.3, sharded.3, "event counts diverged");
        // Pings to other hosts must actually complete (self-pings cannot
        // resolve ARP and legitimately stay pending).
        let total: u64 = legacy.0.iter().map(|h| h.0).sum();
        let self_pings = pings.iter().filter(|&&(sp, spo, dp, dpo)| {
            usize::from(sp) % usize::from(n_pods) == usize::from(dp) % usize::from(n_pods)
                && spo % n_ports == dpo % n_ports
        }).count() as u64;
        prop_assert!(
            total + self_pings >= pings.len() as u64,
            "pings lost: {} replies + {} self of {}",
            total, self_pings, pings.len()
        );
    }

    /// Bridge invariant: frames never exit their ingress port and never
    /// leave their VLAN.
    #[test]
    fn bridge_isolation_invariant(
        in_port in 1u16..9,
        src in any::<u32>(),
        dst in any::<u32>(),
    ) {
        let mut bridge = legacy_switch::Bridge::new(9);
        for p in 1..=4u16 {
            bridge.make_access_port(p, 100 + p).unwrap();
        }
        bridge.make_trunk_port(9, &[101, 102, 103, 104]).unwrap();
        let frame = builder::udp_packet(
            MacAddr::host(src),
            MacAddr::host(dst),
            std::net::Ipv4Addr::from(src),
            std::net::Ipv4Addr::from(dst),
            1,
            2,
            b"x",
        );
        let out = bridge.forward(in_port, &frame, 0);
        for (p, f) in &out.outputs {
            prop_assert_ne!(*p, in_port, "no hairpin to ingress");
            if out.vlan >= 101 && out.vlan <= 104 {
                // Members of per-port VLANs: only the access port + trunk.
                let access = (out.vlan - 100) as u16;
                prop_assert!(*p == access || *p == 9, "port {} outside VLAN {}", p, out.vlan);
            }
            // Egress tagging discipline: per-port VLANs leave the trunk
            // tagged and access ports untagged. (The factory VLAN 1 is
            // untagged everywhere, including the trunk, so it is exempt.)
            let tag = netpkt::vlan::outer_tag(f);
            if (101..=104).contains(&out.vlan) {
                if *p == 9 {
                    prop_assert!(tag.is_some());
                } else {
                    prop_assert!(tag.is_none());
                }
            }
        }
    }
}
