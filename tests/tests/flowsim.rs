//! Flow-level hybrid engine tests: packet ≡ flow equivalence on random
//! small fabrics, demotion-on-fault lifecycle, and bit-identical
//! thread-count determinism for hybrid runs.
//!
//! The contract under test: promoting converged bundles out of the
//! packet engine and advancing them analytically must not change any
//! observable a converged run produces — delivered frame/byte counts,
//! per-destination-port breakdowns, latency sample counts — and the
//! promotion/demotion machinery itself must be deterministic for every
//! thread count.

use harmless::fabric::{Fabric, FabricSpec, Interconnect};
use harmless::instance::HarmlessSpec;
use netsim::flowsim::FlowSim;
use netsim::traffic::{FlowSpec, Generator, Pattern, Sink};
use netsim::{FaultPlan, Network, NodeId, PortId, SimTime};
use proptest::prelude::*;

/// Station ports start here; ports below carry nothing (the fabric
/// needs ≥ 2 access ports per pod for validation anyway).
const PORTS: u16 = 4;

/// `(generator, sink, src (pod, port), dst (pod, port))`.
type Pair = (NodeId, NodeId, (usize, u16), (usize, u16));

struct Rig {
    net: Network,
    fx: Fabric,
    pairs: Vec<Pair>,
}

/// An ARP-proxied (or L3-routed) fabric with one generator→sink station
/// pair per pod, each sending `flows_per_pair` staggered CBR host
/// flows to the station of the next pod (or across the same pod when
/// there is only one). Proactive routes are mandatory for flow-level
/// work: a flooding learning fabric never quiesces.
fn build_rig(seed: u64, n_pods: u16, l3: bool, flows_per_pair: u16, base_pps: f64) -> Rig {
    let mut net = Network::new(seed);
    let apps: Vec<Box<dyn controller::App>> = if l3 {
        vec![
            Box::new(controller::apps::ArpProxy::new()),
            Box::new(controller::apps::router::Router::new()),
        ]
    } else {
        vec![
            Box::new(controller::apps::ArpProxy::new()),
            Box::new(controller::apps::LearningSwitch::new()),
        ]
    };
    let ctrl = net.add_node(controller::ControllerNode::new("ctrl", apps));
    let mut spec = FabricSpec::new(n_pods, HarmlessSpec::new(PORTS))
        .with_interconnect(Interconnect::SpineSoft)
        .with_arp_proxy(true);
    if l3 {
        spec = spec.with_l3_routing();
    }
    let mut fx = spec.build(&mut net).expect("valid fabric spec");
    fx.configure_direct(&mut net);
    fx.connect_controller(&mut net, ctrl);

    let mut pairs = Vec::new();
    for p in 0..usize::from(n_pods) {
        let q = (p + 1) % usize::from(n_pods);
        let (src, dst) = ((p, PORTS - 1), (q, PORTS));
        let flows: Vec<FlowSpec> = (0..flows_per_pair)
            .map(|i| {
                let mut f = FlowSpec::simple(1, 2, 128);
                f.src_mac = fx.host_mac(src.0, src.1);
                f.src_ip = fx.host_ip(src.0, src.1);
                f.dst_ip = fx.host_ip(dst.0, dst.1);
                // Routed frames are addressed to the pod router; L2
                // frames straight to the sink's MAC.
                f.dst_mac = if l3 {
                    harmless::fabric::router_mac(src.0)
                } else {
                    fx.host_mac(dst.0, dst.1)
                };
                f.src_port = 10_000 + i;
                f.dst_port = 20_000 + i;
                f
            })
            .collect();
        // Staggered starts and slightly different rates so bundles do
        // not tick in lockstep; low rates keep service queues shallow
        // (modeled frames do not contend, so equivalence needs an
        // uncongested fabric).
        let g = net.add_node(Generator::new(
            format!("gen{p}"),
            PortId(0),
            Pattern::Cbr {
                pps: base_pps + 130.0 * p as f64,
            },
            flows,
            SimTime::from_millis(220) + SimTime::from_micros(7 * p as u64),
            SimTime::from_millis(420) + SimTime::from_micros(7 * p as u64),
        ));
        let s = net.add_node(Sink::new(format!("sink{q}")));
        fx.attach_station(&mut net, src.0, src.1, g)
            .expect("free src port");
        fx.attach_station(&mut net, dst.0, dst.1, s)
            .expect("free dst port");
        pairs.push((g, s, src, dst));
    }
    Rig { net, fx, pairs }
}

/// Warm up, register every pair as a bundle, drive to `until`, and
/// render the observables the equivalence contract covers.
fn run_and_observe(mut rig: Rig, hybrid: bool, threads: Option<usize>) -> (String, FlowSim, u64) {
    if let Some(t) = threads {
        let map = rig.fx.shard_map();
        rig.net.set_shards(&map);
        rig.net.set_threads(t);
    }
    rig.net.run_until(SimTime::from_millis(200));
    let window = SimTime::from_millis(5);
    let mut fs = if hybrid {
        FlowSim::new(window)
    } else {
        FlowSim::packet_level(window)
    };
    for &(_, _, src, dst) in &rig.pairs {
        let spec = rig.fx.flow_bundle(&rig.net, src, dst);
        fs.add_bundle(&rig.net, spec);
    }
    fs.run_until(&mut rig.net, SimTime::from_millis(500));

    let mut out = String::new();
    for (i, &(g, s, _, _)) in rig.pairs.iter().enumerate() {
        let gen = rig.net.node_ref::<Generator>(g);
        let sink = rig.net.node_ref::<Sink>(s);
        let mut ports: Vec<(u16, u64)> = sink.by_dst_port().iter().map(|(&p, &n)| (p, n)).collect();
        ports.sort_unstable();
        out.push_str(&format!(
            "pair{i}: sent={} sent_bytes={} rx={} rx_bytes={} lat_count={} ports={ports:?}\n",
            gen.sent(),
            gen.sent_bytes(),
            sink.received(),
            sink.rx_bytes(),
            sink.latency().count(),
        ));
    }
    let delivered = rig.net.delivered_bytes();
    (out, fs, delivered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Packet ≡ flow equivalence: on a random 1–3-pod fabric (L2
    /// proxied or L3 routed), the hybrid engine must reproduce the
    /// packet engine's delivered counts, byte totals, per-port
    /// breakdowns and latency sample counts exactly — while actually
    /// promoting (and modeling most of the traffic, or the test is
    /// vacuous).
    #[test]
    fn hybrid_matches_packet_level(
        pods in 1u16..=3,
        l3 in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let flows = 4;
        let pps = 2_000.0;
        let (packet_obs, packet_fs, _) =
            run_and_observe(build_rig(seed, pods, l3, flows, pps), false, None);
        let (hybrid_obs, hybrid_fs, _) =
            run_and_observe(build_rig(seed, pods, l3, flows, pps), true, None);
        prop_assert_eq!(&hybrid_obs, &packet_obs, "observables diverge");
        prop_assert_eq!(packet_fs.stats().promotions, 0);
        prop_assert!(
            hybrid_fs.stats().promotions >= u64::from(pods),
            "every bundle should promote on a quiet fabric: {:?}",
            hybrid_fs.stats()
        );
        prop_assert!(hybrid_fs.all_done());
        prop_assert!(hybrid_fs.stats().frames_modeled > 0);
    }
}

/// Demotion on fault: flap a path link mid-epoch. The bundle must be
/// promoted before the fault, demoted by it, re-promoted after repair,
/// and still retire; packet-level losses are bounded by the outage.
#[test]
fn fault_demotes_and_repromotes() {
    let mut rig = build_rig(77, 2, false, 4, 2_000.0);
    // Flap the spine↔pod1 uplink (the path of pair 0) for 40 ms in the
    // middle of the epoch.
    let uplink = PortId(PORTS + 1);
    let pod1_ss2 = rig.fx.pod(1).ss2;
    let plan = FaultPlan::new().link_flap(
        SimTime::from_millis(300),
        SimTime::from_millis(40),
        pod1_ss2,
        uplink,
    );
    rig.net.apply_faults(&plan);
    rig.net.run_until(SimTime::from_millis(200));

    let mut fs = FlowSim::new(SimTime::from_millis(5));
    let pair0 = (rig.pairs[0].2, rig.pairs[0].3);
    let spec = rig.fx.flow_bundle(&rig.net, pair0.0, pair0.1);
    let (g, s) = (rig.pairs[0].0, rig.pairs[0].1);
    let b = fs.add_bundle(&rig.net, spec);
    fs.run_until(&mut rig.net, SimTime::from_millis(290));
    assert!(
        fs.bundle_modeled(b),
        "bundle should be promoted before the fault: {:?}",
        fs.stats()
    );
    fs.run_until(&mut rig.net, SimTime::from_millis(600));
    let stats = *fs.stats();
    assert!(stats.demotions >= 1, "link flap must demote: {stats:?}");
    assert!(
        stats.promotions >= 2,
        "bundle must re-promote after repair: {stats:?}"
    );
    assert!(fs.all_done(), "bundle must retire: {stats:?}");
    let sent = rig.net.node_ref::<Generator>(g).sent();
    let rx = rig.net.node_ref::<Sink>(s).received();
    assert!(rx < sent, "a 40 ms outage must lose frames");
    // Outage bound: at 2000 pps a 40 ms hole plus the modeled in-flight
    // tail cannot cost more than ~100 frames.
    assert!(
        sent - rx < 150,
        "losses beyond the outage window: sent={sent} rx={rx}"
    );
}

/// Hybrid runs are bit-identical for every thread count: the driver
/// slices at fixed window multiples and mutates nodes only between
/// slices, so the sharded engine's determinism contract extends to
/// promotion/demotion decisions and modeled credits.
#[test]
fn hybrid_thread_count_determinism() {
    let observe = |threads: Option<usize>| -> (String, u64, u64) {
        let (obs, fs, _) = run_and_observe(build_rig(13, 3, false, 4, 2_000.0), true, threads);
        (obs, fs.stats().promotions, fs.stats().frames_modeled)
    };
    let single = observe(None);
    for t in [1, 2, 4] {
        let sharded = observe(Some(t));
        assert_eq!(sharded, single, "threads={t} diverged");
    }
}
