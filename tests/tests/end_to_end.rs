//! Cross-crate integration tests: the full HARMLESS stack assembled from
//! public APIs, exercised end to end.

use controller::apps::{LearningSwitch, StaticForwarder};
use controller::ControllerNode;
use harmless::fabric::{FabricSpec, Interconnect};
use harmless::instance::{HarmlessSpec, Variant};
use harmless::manager::{HarmlessManager, ManagerConfig, ManagerPhase};
use legacy_switch::LegacySwitchNode;
use netsim::host::Host;
use netsim::traffic::{FlowSpec, Generator, Pattern, Sink};
use netsim::{LinkSpec, Network, PortId, SimTime};
use softswitch::SoftSwitchNode;

/// The paper's demo, end to end: full automated migration, then all
/// use-case-style traffic through the migrated switch.
#[test]
fn migrate_then_forward() {
    let mut net = Network::new(1001);
    let ctrl = net.add_node(ControllerNode::new(
        "ctrl",
        vec![Box::new(LearningSwitch::new())],
    ));
    let mut fx = FabricSpec::single(HarmlessSpec::new(8))
        .build(&mut net)
        .expect("valid single-pod spec");
    let mgr = fx
        .run_migration_wave(&mut net, &[0], ctrl)
        .expect("two-switch pod")[0];
    let hosts: Vec<_> = (1..=8)
        .map(|i| fx.attach_host(&mut net, 0, i).expect("free access port"))
        .collect();

    net.run_until(SimTime::from_secs(2));
    assert_eq!(
        *net.node_ref::<HarmlessManager>(mgr).phase(),
        ManagerPhase::Done,
        "migration must complete"
    );

    // All-pairs ping (sequentially, like an operator's smoke test).
    for (i, &host) in hosts.iter().enumerate() {
        let to = std::net::Ipv4Addr::new(10, 0, 0, ((i + 1) % hosts.len() + 1) as u8);
        net.with_node_ctx::<Host, _>(host, move |h, ctx| {
            h.ping(b"smoke", to);
            h.flush(ctx);
        });
        net.run_for(SimTime::from_millis(200));
    }
    for (i, &h) in hosts.iter().enumerate() {
        assert_eq!(
            net.node_ref::<Host>(h).echo_replies_received(),
            1,
            "host {} must reach its neighbour",
            i + 1
        );
    }
}

/// The controller sees SS_2 as an ordinary N-port switch: port numbers in
/// packet-ins match legacy access ports, and no VLAN tags ever leak into
/// controller-visible frames.
#[test]
fn transparency_port_numbering_and_no_tag_leak() {
    let mut net = Network::new(1002);
    let ctrl = net.add_node(ControllerNode::new(
        "ctrl",
        vec![Box::new(LearningSwitch::new())],
    ));
    let mut fx = FabricSpec::single(HarmlessSpec::new(4))
        .build(&mut net)
        .expect("valid single-pod spec");
    fx.configure_direct(&mut net);
    fx.connect_controller(&mut net, ctrl);
    let h3 = fx.attach_host(&mut net, 0, 3).expect("free access port");
    let _h4 = fx.attach_host(&mut net, 0, 4).expect("free access port");
    net.run_until(SimTime::from_millis(100));

    net.with_node_ctx::<Host, _>(h3, |h, ctx| {
        h.ping(b"transparent?", "10.0.0.4".parse().unwrap());
        h.flush(ctx);
    });
    net.run_until(SimTime::from_millis(400));

    // The learning app must have learned h3's MAC on *port 3* — the same
    // number as the legacy access port.
    let mut learned = None;
    net.with_node_ctx::<ControllerNode, _>(ctrl, |c, _| {
        if let Some(app) = c.app_mut::<LearningSwitch>() {
            learned = app.lookup(0x52, netpkt::MacAddr::host(3));
        }
    });
    assert_eq!(
        learned,
        Some(3),
        "controller-visible port = legacy access port"
    );
    assert_eq!(net.node_ref::<Host>(h3).echo_replies_received(), 1);
}

/// Migration against an uncooperative device rolls back and leaves the
/// dataplane functioning as a plain legacy switch.
#[test]
fn failed_migration_leaves_legacy_network_working() {
    let mut net = Network::new(1003);
    let ctrl = net.add_node(ControllerNode::new("ctrl", vec![]));
    let mut fx = FabricSpec::single(HarmlessSpec::new(4))
        .build(&mut net)
        .expect("valid single-pod spec");
    let mut cfg = ManagerConfig::for_instance(fx.pod(0), ctrl);
    cfg.fail_verify_at = Some(2);
    let mgr = net.add_node(HarmlessManager::new(cfg));
    let a = fx.attach_host(&mut net, 0, 1).expect("free access port");
    let b = fx.attach_host(&mut net, 0, 2).expect("free access port");
    net.run_until(SimTime::from_secs(2));
    assert!(matches!(
        net.node_ref::<HarmlessManager>(mgr).phase(),
        ManagerPhase::RolledBack(_)
    ));
    // Factory default = one flat VLAN: hosts still reach each other
    // through the (un-migrated) legacy switch.
    net.with_node_ctx::<Host, _>(a, |h, ctx| {
        h.ping(b"still works", "10.0.0.2".parse().unwrap());
        h.flush(ctx);
    });
    net.run_until(SimTime::from_secs(3));
    assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
    let _ = b;
}

/// Sustained line-rate traffic through the whole stack loses nothing and
/// keeps latency bounded (the E1/E2 claims as a regression test).
#[test]
fn line_rate_no_loss_regression() {
    let mut net = Network::new(1004);
    let ctrl = net.add_node(ControllerNode::new(
        "ctrl",
        vec![Box::new(StaticForwarder::bidirectional(&[(1, 2)]))],
    ));
    let mut fx = FabricSpec::single(HarmlessSpec::new(2))
        .build(&mut net)
        .expect("valid single-pod spec");
    fx.configure_direct(&mut net);
    fx.connect_controller(&mut net, ctrl);
    // 80% of gigabit line rate, 512-byte frames, 100 ms.
    let pps = netsim::measure::line_rate_pps(1_000_000_000, 512) * 0.8;
    let g = net.add_node(Generator::new(
        "gen",
        PortId(0),
        Pattern::Cbr { pps },
        vec![FlowSpec::simple(1, 2, 512)],
        SimTime::from_millis(100),
        SimTime::from_millis(200),
    ));
    let s = net.add_node(Sink::new("sink"));
    fx.attach_node(&mut net, 0, 1, g).expect("free access port");
    fx.attach_node(&mut net, 0, 2, s).expect("free access port");
    net.run_until(SimTime::from_millis(500));
    let sent = net.node_ref::<Generator>(g).sent();
    let sink = net.node_ref::<Sink>(s);
    assert_eq!(sink.received(), sent, "no loss at 80% line rate");
    assert!(
        sink.latency().p99() < 100_000,
        "p99 {}ns under 100µs",
        sink.latency().p99()
    );
}

/// The merged-variant ablation forwards the same traffic with one fewer
/// software hop (E7's functional core).
#[test]
fn merged_variant_equivalence() {
    for variant in [Variant::TwoSwitch, Variant::Merged] {
        let mut net = Network::new(1005);
        let mut fx = FabricSpec::single(HarmlessSpec::new(2).with_variant(variant))
            .build(&mut net)
            .expect("the merged variant is allowed in single-pod fabrics");
        fx.configure_direct(&mut net);
        let hx = fx.pod(0);
        match variant {
            Variant::TwoSwitch => {
                let dp = net.node_mut::<SoftSwitchNode>(hx.ss2).datapath_mut();
                for (a, b) in [(1u32, 2u32), (2, 1)] {
                    dp.apply_flow_mod(
                        &openflow::message::FlowMod::add(0)
                            .priority(10)
                            .match_(openflow::Match::new().in_port(a))
                            .apply(vec![openflow::Action::output(b)]),
                        0,
                    )
                    .unwrap();
                }
            }
            Variant::Merged => {
                let r12 = hx.merged_wiring_rule(1, 2);
                let r21 = hx.merged_wiring_rule(2, 1);
                let dp = net.node_mut::<SoftSwitchNode>(hx.ss2).datapath_mut();
                dp.apply_flow_mod(&r12, 0).unwrap();
                dp.apply_flow_mod(&r21, 0).unwrap();
            }
        }
        let a = fx.attach_host(&mut net, 0, 1).expect("free access port");
        let b = fx.attach_host(&mut net, 0, 2).expect("free access port");
        net.node_mut::<Host>(a)
            .ping(b"variant", "10.0.0.2".parse().unwrap());
        net.run_until(SimTime::from_millis(300));
        assert_eq!(
            net.node_ref::<Host>(a).echo_replies_received(),
            1,
            "variant {variant:?} must forward"
        );
        let _ = b;
    }
}

/// Multi-pod transparency: one controller over a 2-pod fabric sees each
/// pod as an ordinary switch with its own dpid, learns cross-pod MACs on
/// the uplink port, and sustains generator traffic between pods with no
/// loss.
#[test]
fn cross_pod_traffic_and_transparency() {
    let mut net = Network::new(1007);
    let ctrl = net.add_node(ControllerNode::new(
        "ctrl",
        vec![Box::new(LearningSwitch::new())],
    ));
    let mut fx = FabricSpec::new(2, HarmlessSpec::new(4))
        .with_interconnect(Interconnect::SpineSoft)
        .build(&mut net)
        .expect("valid fabric spec");
    fx.configure_direct(&mut net);
    fx.connect_controller(&mut net, ctrl);
    let a = fx.attach_host(&mut net, 0, 1).expect("free access port");
    let b = fx.attach_host(&mut net, 1, 2).expect("free access port");
    net.run_until(SimTime::from_millis(100));
    // Pods + the soft spine all completed the handshake.
    assert_eq!(net.node_ref::<ControllerNode>(ctrl).ready_switches(), 3);

    let b_ip = fx.host_ip(1, 2);
    net.with_node_ctx::<Host, _>(a, move |h, ctx| {
        h.ping(b"cross-pod", b_ip);
        h.flush(ctx);
    });
    net.run_until(SimTime::from_millis(500));
    assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);

    // Transparency per pod: pod 1's learning entry for host b is its
    // access port (2); pod 0 learned b's MAC behind its uplink port.
    let (dpid0, dpid1) = (fx.pod(0).spec.ss2_dpid, fx.pod(1).spec.ss2_dpid);
    assert_ne!(dpid0, dpid1, "pods must be distinct datapaths");
    let b_mac = fx.host_mac(1, 2);
    let uplink = fx.pod(0).uplink_port(1);
    let mut local = None;
    let mut remote = None;
    net.with_node_ctx::<ControllerNode, _>(ctrl, |c, _| {
        if let Some(app) = c.app_mut::<LearningSwitch>() {
            local = app.lookup(dpid1, b_mac);
            remote = app.lookup(dpid0, b_mac);
        }
    });
    assert_eq!(local, Some(2), "pod-local port numbering is preserved");
    assert_eq!(
        remote,
        Some(uplink),
        "cross-pod MACs live behind the uplink"
    );

    // Sustained generator traffic across the fabric, zero loss.
    let pps = 20_000.0;
    let flows = vec![netsim::traffic::FlowSpec {
        src_mac: fx.host_mac(0, 3),
        dst_mac: b_mac,
        src_ip: fx.host_ip(0, 3),
        dst_ip: b_ip,
        src_port: 7000,
        dst_port: 7001,
        frame_len: 256,
    }];
    let g = net.add_node(Generator::new(
        "gen",
        PortId(0),
        Pattern::Cbr { pps },
        flows,
        net.now() + SimTime::from_millis(100),
        net.now() + SimTime::from_millis(300),
    ));
    fx.attach_node(&mut net, 0, 3, g).expect("free access port");
    net.run_for(SimTime::from_millis(600));
    let sent = net.node_ref::<Generator>(g).sent();
    assert_eq!(sent, 4000, "20 kpps x 200 ms");
    let delivered = net
        .node_ref::<Host>(b)
        .mailbox()
        .iter()
        .filter(|d| d.dst_port == 7001)
        .count() as u64;
    assert_eq!(
        delivered, sent,
        "every generated frame must cross the fabric"
    );
}

/// The legacy switch keeps plain L2 semantics for unmanaged traffic: a
/// host on a port outside the HARMLESS port map still works via VLAN 1.
#[test]
fn legacy_switch_is_still_a_switch() {
    let mut net = Network::new(1006);
    let sw = net.add_node(LegacySwitchNode::new("sw", 8));
    let a = net.add_node(Host::new(
        "a",
        netpkt::MacAddr::host(1),
        "10.1.0.1".parse().unwrap(),
    ));
    let b = net.add_node(Host::new(
        "b",
        netpkt::MacAddr::host(2),
        "10.1.0.2".parse().unwrap(),
    ));
    net.connect(a, PortId(0), sw, PortId(7), LinkSpec::gigabit());
    net.connect(b, PortId(0), sw, PortId(8), LinkSpec::gigabit());
    net.node_mut::<Host>(a)
        .ping(b"plain l2", "10.1.0.2".parse().unwrap());
    net.run_until(SimTime::from_millis(100));
    assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
}
