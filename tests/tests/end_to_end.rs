//! Cross-crate integration tests: the full HARMLESS stack assembled from
//! public APIs, exercised end to end.

use controller::apps::{LearningSwitch, StaticForwarder};
use controller::ControllerNode;
use harmless::instance::{HarmlessSpec, Variant};
use harmless::manager::{HarmlessManager, ManagerConfig, ManagerPhase};
use legacy_switch::LegacySwitchNode;
use netsim::host::Host;
use netsim::traffic::{FlowSpec, Generator, Pattern, Sink};
use netsim::{LinkSpec, Network, PortId, SimTime};
use softswitch::SoftSwitchNode;

/// The paper's demo, end to end: full automated migration, then all
/// use-case-style traffic through the migrated switch.
#[test]
fn migrate_then_forward() {
    let mut net = Network::new(1001);
    let ctrl = net.add_node(ControllerNode::new(
        "ctrl",
        vec![Box::new(LearningSwitch::new())],
    ));
    let hx = HarmlessSpec::new(8).build(&mut net);
    let mgr = net.add_node(HarmlessManager::new(ManagerConfig::for_instance(&hx, ctrl)));
    let hosts: Vec<_> = (1..=8).map(|i| hx.attach_host(&mut net, i)).collect();

    net.run_until(SimTime::from_secs(2));
    assert_eq!(
        *net.node_ref::<HarmlessManager>(mgr).phase(),
        ManagerPhase::Done,
        "migration must complete"
    );

    // All-pairs ping (sequentially, like an operator's smoke test).
    for (i, &host) in hosts.iter().enumerate() {
        let to = std::net::Ipv4Addr::new(10, 0, 0, ((i + 1) % hosts.len() + 1) as u8);
        net.with_node_ctx::<Host, _>(host, move |h, ctx| {
            h.ping(b"smoke", to);
            h.flush(ctx);
        });
        net.run_for(SimTime::from_millis(200));
    }
    for (i, &h) in hosts.iter().enumerate() {
        assert_eq!(
            net.node_ref::<Host>(h).echo_replies_received(),
            1,
            "host {} must reach its neighbour",
            i + 1
        );
    }
}

/// The controller sees SS_2 as an ordinary N-port switch: port numbers in
/// packet-ins match legacy access ports, and no VLAN tags ever leak into
/// controller-visible frames.
#[test]
fn transparency_port_numbering_and_no_tag_leak() {
    let mut net = Network::new(1002);
    let ctrl = net.add_node(ControllerNode::new(
        "ctrl",
        vec![Box::new(LearningSwitch::new())],
    ));
    let hx = HarmlessSpec::new(4).build(&mut net);
    hx.configure_legacy_directly(&mut net);
    hx.install_translator_rules(&mut net);
    hx.connect_controller(&mut net, ctrl);
    let h3 = hx.attach_host(&mut net, 3);
    let _h4 = hx.attach_host(&mut net, 4);
    net.run_until(SimTime::from_millis(100));

    net.with_node_ctx::<Host, _>(h3, |h, ctx| {
        h.ping(b"transparent?", "10.0.0.4".parse().unwrap());
        h.flush(ctx);
    });
    net.run_until(SimTime::from_millis(400));

    // The learning app must have learned h3's MAC on *port 3* — the same
    // number as the legacy access port.
    let mut learned = None;
    net.with_node_ctx::<ControllerNode, _>(ctrl, |c, _| {
        if let Some(app) = c.app_mut::<LearningSwitch>() {
            learned = app.lookup(0x52, netpkt::MacAddr::host(3));
        }
    });
    assert_eq!(
        learned,
        Some(3),
        "controller-visible port = legacy access port"
    );
    assert_eq!(net.node_ref::<Host>(h3).echo_replies_received(), 1);
}

/// Migration against an uncooperative device rolls back and leaves the
/// dataplane functioning as a plain legacy switch.
#[test]
fn failed_migration_leaves_legacy_network_working() {
    let mut net = Network::new(1003);
    let ctrl = net.add_node(ControllerNode::new("ctrl", vec![]));
    let hx = HarmlessSpec::new(4).build(&mut net);
    let mut cfg = ManagerConfig::for_instance(&hx, ctrl);
    cfg.fail_verify_at = Some(2);
    let mgr = net.add_node(HarmlessManager::new(cfg));
    let a = hx.attach_host(&mut net, 1);
    let b = hx.attach_host(&mut net, 2);
    net.run_until(SimTime::from_secs(2));
    assert!(matches!(
        net.node_ref::<HarmlessManager>(mgr).phase(),
        ManagerPhase::RolledBack(_)
    ));
    // Factory default = one flat VLAN: hosts still reach each other
    // through the (un-migrated) legacy switch.
    net.with_node_ctx::<Host, _>(a, |h, ctx| {
        h.ping(b"still works", "10.0.0.2".parse().unwrap());
        h.flush(ctx);
    });
    net.run_until(SimTime::from_secs(3));
    assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
    let _ = b;
}

/// Sustained line-rate traffic through the whole stack loses nothing and
/// keeps latency bounded (the E1/E2 claims as a regression test).
#[test]
fn line_rate_no_loss_regression() {
    let mut net = Network::new(1004);
    let ctrl = net.add_node(ControllerNode::new(
        "ctrl",
        vec![Box::new(StaticForwarder::bidirectional(&[(1, 2)]))],
    ));
    let hx = HarmlessSpec::new(2).build(&mut net);
    hx.configure_legacy_directly(&mut net);
    hx.install_translator_rules(&mut net);
    hx.connect_controller(&mut net, ctrl);
    // 80% of gigabit line rate, 512-byte frames, 100 ms.
    let pps = netsim::measure::line_rate_pps(1_000_000_000, 512) * 0.8;
    let g = net.add_node(Generator::new(
        "gen",
        PortId(0),
        Pattern::Cbr { pps },
        vec![FlowSpec::simple(1, 2, 512)],
        SimTime::from_millis(100),
        SimTime::from_millis(200),
    ));
    let s = net.add_node(Sink::new("sink"));
    hx.attach_node(&mut net, 1, g);
    hx.attach_node(&mut net, 2, s);
    net.run_until(SimTime::from_millis(500));
    let sent = net.node_ref::<Generator>(g).sent();
    let sink = net.node_ref::<Sink>(s);
    assert_eq!(sink.received(), sent, "no loss at 80% line rate");
    assert!(
        sink.latency().p99() < 100_000,
        "p99 {}ns under 100µs",
        sink.latency().p99()
    );
}

/// The merged-variant ablation forwards the same traffic with one fewer
/// software hop (E7's functional core).
#[test]
fn merged_variant_equivalence() {
    for variant in [Variant::TwoSwitch, Variant::Merged] {
        let mut net = Network::new(1005);
        let hx = HarmlessSpec::new(2).with_variant(variant).build(&mut net);
        hx.configure_legacy_directly(&mut net);
        hx.install_translator_rules(&mut net);
        match variant {
            Variant::TwoSwitch => {
                let dp = net.node_mut::<SoftSwitchNode>(hx.ss2).datapath_mut();
                for (a, b) in [(1u32, 2u32), (2, 1)] {
                    dp.apply_flow_mod(
                        &openflow::message::FlowMod::add(0)
                            .priority(10)
                            .match_(openflow::Match::new().in_port(a))
                            .apply(vec![openflow::Action::output(b)]),
                        0,
                    )
                    .unwrap();
                }
            }
            Variant::Merged => {
                let r12 = hx.merged_wiring_rule(1, 2);
                let r21 = hx.merged_wiring_rule(2, 1);
                let dp = net.node_mut::<SoftSwitchNode>(hx.ss2).datapath_mut();
                dp.apply_flow_mod(&r12, 0).unwrap();
                dp.apply_flow_mod(&r21, 0).unwrap();
            }
        }
        let a = hx.attach_host(&mut net, 1);
        let b = hx.attach_host(&mut net, 2);
        net.node_mut::<Host>(a)
            .ping(b"variant", "10.0.0.2".parse().unwrap());
        net.run_until(SimTime::from_millis(300));
        assert_eq!(
            net.node_ref::<Host>(a).echo_replies_received(),
            1,
            "variant {variant:?} must forward"
        );
        let _ = b;
    }
}

/// The legacy switch keeps plain L2 semantics for unmanaged traffic: a
/// host on a port outside the HARMLESS port map still works via VLAN 1.
#[test]
fn legacy_switch_is_still_a_switch() {
    let mut net = Network::new(1006);
    let sw = net.add_node(LegacySwitchNode::new("sw", 8));
    let a = net.add_node(Host::new(
        "a",
        netpkt::MacAddr::host(1),
        "10.1.0.1".parse().unwrap(),
    ));
    let b = net.add_node(Host::new(
        "b",
        netpkt::MacAddr::host(2),
        "10.1.0.2".parse().unwrap(),
    ));
    net.connect(a, PortId(0), sw, PortId(7), LinkSpec::gigabit());
    net.connect(b, PortId(0), sw, PortId(8), LinkSpec::gigabit());
    net.node_mut::<Host>(a)
        .ping(b"plain l2", "10.1.0.2".parse().unwrap());
    net.run_until(SimTime::from_millis(100));
    assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
}
