//! Regression tests for the three Fig. 1 use cases and the switch admin
//! channel — the behaviours the examples demonstrate, pinned as tests.

use controller::apps::lb::Backend;
use controller::apps::{Dmz, LearningSwitch, LoadBalancer, ParentalControl};
use controller::ControllerNode;
use harmless::fabric::FabricSpec;
use harmless::instance::HarmlessSpec;
use netsim::host::Host;
use netsim::{Network, NodeId, SimTime};
use softswitch::node::admin_set_controller;
use softswitch::SoftSwitchNode;
use std::net::Ipv4Addr;

fn ip(i: u16) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, i as u8)
}

fn ping_works(net: &mut Network, from: NodeId, to: u16) -> bool {
    let before = net.node_ref::<Host>(from).echo_replies_received();
    net.with_node_ctx::<Host, _>(from, |h, ctx| {
        h.ping(b"probe", ip(to));
        h.flush(ctx);
    });
    net.run_for(SimTime::from_millis(300));
    net.node_ref::<Host>(from).echo_replies_received() > before
}

fn tcp_works(net: &mut Network, from: NodeId, to: Ipv4Addr, port: u16) -> bool {
    let before = net.node_ref::<Host>(from).syn_acks_received();
    net.with_node_ctx::<Host, _>(from, move |h, ctx| {
        h.connect_tcp(to, port);
        h.flush(ctx);
    });
    net.run_for(SimTime::from_millis(300));
    net.node_ref::<Host>(from).syn_acks_received() > before
}

/// Load balancer: proxy-ARP answers for the VIP, connections complete
/// through address rewriting, and distinct client source addresses land
/// on distinct backends.
#[test]
fn lb_proxy_arp_and_rewriting() {
    let mut net = Network::new(2001);
    let vip: Ipv4Addr = "10.0.0.100".parse().unwrap();
    let backends: Vec<Backend> = (2..=3u16)
        .map(|p| Backend {
            port: u32::from(p),
            mac: netpkt::MacAddr::host(u32::from(p)),
            ip: ip(p),
        })
        .collect();
    let ctrl = net.add_node(ControllerNode::new(
        "ctrl",
        vec![
            Box::new(LoadBalancer::new(vip, 80, backends)),
            Box::new(LearningSwitch::new().in_table(1)),
        ],
    ));
    let mut fx = FabricSpec::single(HarmlessSpec::new(6))
        .build(&mut net)
        .expect("valid single-pod spec");
    fx.configure_direct(&mut net);
    fx.connect_controller(&mut net, ctrl);
    // Clients on ports 1 and 6: src .1 -> bucket 1, src .6 -> bucket 0.
    let c1 = fx.attach_host(&mut net, 0, 1).expect("free access port");
    let c6 = fx.attach_host(&mut net, 0, 6).expect("free access port");
    let b2 = fx.attach_host(&mut net, 0, 2).expect("free access port");
    let b3 = fx.attach_host(&mut net, 0, 3).expect("free access port");
    net.run_until(SimTime::from_millis(100));

    assert!(tcp_works(&mut net, c1, vip, 80), "client 1 reaches the VIP");
    assert!(tcp_works(&mut net, c6, vip, 80), "client 6 reaches the VIP");
    // Proxy-ARP was exercised (hosts had to resolve the VIP).
    let mut arps = 0;
    net.with_node_ctx::<ControllerNode, _>(ctrl, |c, _| {
        if let Some(lb) = c.app_mut::<LoadBalancer>() {
            arps = lb.arps_answered();
        }
    });
    assert!(
        arps >= 2,
        "VIP ARP must be answered by the controller, got {arps}"
    );
    // Both backends served exactly one client each (srcs 1 and 6 hash to
    // different low bits).
    assert_eq!(net.node_ref::<Host>(b2).syns_received(), 1);
    assert_eq!(net.node_ref::<Host>(b3).syns_received(), 1);
}

/// DMZ: runtime permit/revoke reshape reachability immediately.
#[test]
fn dmz_runtime_policy_updates() {
    let mut net = Network::new(2002);
    let ctrl = net.add_node(ControllerNode::new(
        "ctrl",
        vec![
            Box::new(Dmz::new(&[(ip(1), ip(2))])),
            Box::new(LearningSwitch::new().in_table(1)),
        ],
    ));
    let mut fx = FabricSpec::single(HarmlessSpec::new(4))
        .build(&mut net)
        .expect("valid single-pod spec");
    fx.configure_direct(&mut net);
    fx.connect_controller(&mut net, ctrl);
    let h1 = fx.attach_host(&mut net, 0, 1).expect("free access port");
    let h2 = fx.attach_host(&mut net, 0, 2).expect("free access port");
    let h3 = fx.attach_host(&mut net, 0, 3).expect("free access port");
    net.run_until(SimTime::from_millis(100));

    assert!(ping_works(&mut net, h1, 2), "permitted pair connects");
    assert!(!ping_works(&mut net, h1, 3), "default deny holds");

    net.with_node_ctx::<ControllerNode, _>(ctrl, |c, ctx| {
        c.for_each_switch(ctx, |apps, handle| {
            let dmz = apps
                .iter_mut()
                .find_map(|a| a.as_any_mut().downcast_mut::<Dmz>())
                .unwrap();
            dmz.permit(handle, ip(1), ip(3));
            dmz.revoke(handle, ip(1), ip(2));
        });
    });
    net.run_for(SimTime::from_millis(50));

    assert!(ping_works(&mut net, h1, 3), "newly permitted pair connects");
    assert!(!ping_works(&mut net, h1, 2), "revoked pair is cut");
    let _ = (h2, h3);
}

/// Parental control: block/unblock cycle with counters.
#[test]
fn parental_control_block_cycle() {
    let mut net = Network::new(2003);
    let ctrl = net.add_node(ControllerNode::new(
        "ctrl",
        vec![
            Box::new(ParentalControl::new(&[(ip(1), ip(4))])),
            Box::new(LearningSwitch::new().in_table(1)),
        ],
    ));
    let mut fx = FabricSpec::single(HarmlessSpec::new(4))
        .build(&mut net)
        .expect("valid single-pod spec");
    fx.configure_direct(&mut net);
    fx.connect_controller(&mut net, ctrl);
    let kid = fx.attach_host(&mut net, 0, 1).expect("free access port");
    let _other = fx.attach_host(&mut net, 0, 2).expect("free access port");
    let _site = fx.attach_host(&mut net, 0, 3).expect("free access port");
    let _blocked_site = fx.attach_host(&mut net, 0, 4).expect("free access port");
    net.run_until(SimTime::from_millis(100));

    // Initial blocklist applies from handshake.
    assert!(!ping_works(&mut net, kid, 4), "pre-seeded block enforced");
    assert!(ping_works(&mut net, kid, 3), "other destinations fine");

    net.with_node_ctx::<ControllerNode, _>(ctrl, |c, ctx| {
        c.for_each_switch(ctx, |apps, handle| {
            let pc = apps
                .iter_mut()
                .find_map(|a| a.as_any_mut().downcast_mut::<ParentalControl>())
                .unwrap();
            pc.unblock(handle, ip(1), ip(4));
        });
    });
    net.run_for(SimTime::from_millis(50));
    assert!(ping_works(&mut net, kid, 4), "unblock restores access");

    let mut counts = (0u64, 0u64);
    net.with_node_ctx::<ControllerNode, _>(ctrl, |c, _| {
        if let Some(pc) = c.app_mut::<ParentalControl>() {
            counts = (pc.blocks_installed(), pc.unblocks_installed());
        }
    });
    assert_eq!(counts, (1, 1));
}

/// The admin channel: a manager-style node can point a running switch at
/// a controller mid-simulation and the handshake completes.
#[test]
fn admin_set_controller_mid_run() {
    let mut net = Network::new(2004);
    let ctrl = net.add_node(ControllerNode::new(
        "ctrl",
        vec![Box::new(LearningSwitch::new())],
    ));
    let mut sw = SoftSwitchNode::new(
        "ss",
        softswitch::datapath::DpConfig::software(0x99),
        1,
        1024,
        softswitch::CostModel::default(),
    );
    sw.add_port(1, "p1", 1_000_000);
    let s = net.add_node(sw);
    // No controller configured; run for a while.
    net.run_until(SimTime::from_millis(50));
    assert!(net.node_ref::<ControllerNode>(ctrl).switch(s).is_none());
    // Any node can deliver the admin message; use the controller node's
    // context for convenience.
    net.with_node_ctx::<ControllerNode, _>(ctrl, |_c, ctx| {
        ctx.ctrl_send(s, admin_set_controller(ctrl));
    });
    net.run_for(SimTime::from_millis(50));
    let st = net
        .node_ref::<ControllerNode>(ctrl)
        .switch(s)
        .expect("handshake happened");
    assert!(st.ready, "features + port-desc exchange completed");
    assert_eq!(st.dpid, 0x99);
}
