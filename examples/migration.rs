//! The full automated migration, end to end — what the HARMLESS Manager
//! does to a production switch, over the live management plane:
//!
//! 1. SNMP discovery and NAPALM dialect detection,
//! 2. VLAN tagging plan compiled, applied and verified (with rollback on
//!    failure — also demonstrated),
//! 3. translator rules pushed into SS_1 over OpenFlow,
//! 4. SS_2 connected to the SDN controller and health-checked.
//!
//! Run with: `cargo run --release -p harmless --example migration`

use controller::apps::LearningSwitch;
use controller::ControllerNode;
use harmless::fabric::FabricSpec;
use harmless::instance::HarmlessSpec;
use harmless::manager::{HarmlessManager, ManagerConfig, ManagerPhase};
use legacy_switch::LegacySwitchNode;
use netsim::host::Host;
use netsim::{Network, SimTime};

fn main() {
    println!("=== migrating a 24-port legacy switch ===\n");
    let mut net = Network::new(7);
    let ctrl = net.add_node(ControllerNode::new(
        "controller",
        vec![Box::new(LearningSwitch::new())],
    ));
    let mut fx = FabricSpec::single(HarmlessSpec::new(24))
        .build(&mut net)
        .expect("valid single-pod spec");
    let mgr = fx
        .run_migration_wave(&mut net, &[0], ctrl)
        .expect("two-switch pod")[0];
    let h1 = fx.attach_host(&mut net, 0, 1).expect("free access port");
    let _h9 = fx.attach_host(&mut net, 0, 9).expect("free access port");

    net.run_until(SimTime::from_secs(2));

    {
        let m = net.node_ref::<HarmlessManager>(mgr);
        println!("discovered device: {:?}", m.discovered_descr());
        println!("NAPALM dialect:    {:?}", m.dialect().unwrap_or("?"));
        println!("\nmigration timeline:");
        for (at, phase) in m.timeline() {
            println!("  [{at:>12}] {phase}");
        }
        println!(
            "\nmanagement cost: {} SNMP operations, {} OpenFlow flow-mods",
            m.snmp_ops(),
            m.flow_mods_sent()
        );
        assert_eq!(*m.phase(), ManagerPhase::Done);
    }
    {
        let legacy = net.node_ref::<LegacySwitchNode>(fx.pod(0).legacy);
        println!(
            "legacy switch state: port 1 PVID = {}, {} VLANs configured",
            legacy.bridge().pvid(1),
            legacy.bridge().vlans().len()
        );
        assert!(fx.pod(0).ss2_has_controller(&net));
    }

    // Prove the migrated switch forwards under SDN control.
    net.with_node_ctx::<Host, _>(h1, |h, ctx| {
        h.ping(b"post-migration", "10.0.0.9".parse().unwrap());
        h.flush(ctx);
    });
    net.run_until(SimTime::from_secs(3));
    let ok = net.node_ref::<Host>(h1).echo_replies_received();
    println!("post-migration ping across the fabric: {ok} reply(ies)");
    assert_eq!(ok, 1);

    // ------------------------------------------------------------------
    println!("\n=== the same migration with a fault injected at verify #5 ===\n");
    let mut net = Network::new(8);
    let ctrl = net.add_node(ControllerNode::new("controller", vec![]));
    let fx = FabricSpec::single(HarmlessSpec::new(24))
        .build(&mut net)
        .expect("valid single-pod spec");
    let mut cfg = ManagerConfig::for_instance(fx.pod(0), ctrl);
    cfg.fail_verify_at = Some(5);
    let mgr = net.add_node(HarmlessManager::new(cfg));
    net.run_until(SimTime::from_secs(2));
    let m = net.node_ref::<HarmlessManager>(mgr);
    for (at, phase) in m.timeline() {
        println!("  [{at:>12}] {phase}");
    }
    match m.phase() {
        ManagerPhase::RolledBack(reason) => {
            println!("\noutcome: rolled back ({reason})");
        }
        other => panic!("expected rollback, got {other:?}"),
    }
    let legacy = net.node_ref::<LegacySwitchNode>(fx.pod(0).legacy);
    assert_eq!(legacy.bridge().pvid(1), 1, "factory state restored");
    assert_eq!(
        legacy.bridge().vlans().len(),
        1,
        "only the default VLAN remains"
    );
    println!("legacy switch back in factory state — the migration really is harmless.");
}
