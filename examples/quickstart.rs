//! Quickstart: migrate a 4-port legacy switch to SDN and ping through it.
//!
//! This is the smallest complete HARMLESS deployment: legacy switch,
//! translator (SS_1), main OpenFlow switch (SS_2), an L2-learning SDN
//! controller, and two hosts. Everything — VLAN tagging on the legacy
//! box, the translator flow table, the controller connection — is set up
//! through the library's direct-configuration path (see the `migration`
//! example for the fully automated SNMP/NAPALM route).
//!
//! Run with: `cargo run --release -p harmless --example quickstart`

use controller::apps::LearningSwitch;
use controller::ControllerNode;
use harmless::instance::HarmlessSpec;
use netsim::host::Host;
use netsim::{Network, SimTime};

fn main() {
    let mut net = Network::new(2026);

    // An SDN controller running the classic reactive L2-learning app.
    let ctrl = net.add_node(ControllerNode::new(
        "controller",
        vec![Box::new(LearningSwitch::new())],
    ));

    // Build the paper's Fig. 1 out of a 4-port legacy switch.
    let hx = HarmlessSpec::new(4).build(&mut net);
    hx.configure_legacy_directly(&mut net); // per-port VLANs + trunk
    hx.install_translator_rules(&mut net); // SS_1's dispatch table
    hx.connect_controller(&mut net, ctrl); // SS_2 ↔ controller

    // Two ordinary hosts on legacy access ports 1 and 2.
    let h1 = hx.attach_host(&mut net, 1);
    let h2 = hx.attach_host(&mut net, 2);

    // Let the OpenFlow handshake finish, then ping 10.0.0.2 from h1.
    net.run_until(SimTime::from_millis(100));
    net.with_node_ctx::<Host, _>(h1, |h, ctx| {
        h.ping(b"hello through HARMLESS", "10.0.0.2".parse().unwrap());
        h.flush(ctx);
    });
    net.run_until(SimTime::from_millis(400));

    let replies = net.node_ref::<Host>(h1).echo_replies_received();
    let c = net.node_ref::<ControllerNode>(ctrl);
    println!("ping 10.0.0.1 -> 10.0.0.2: {replies} reply(ies)");
    println!(
        "controller activity: {} packet-ins, {} flow-mods installed",
        c.packet_ins(),
        c.flow_mods_sent()
    );
    println!(
        "h2 saw {} frame(s), answered {} echo request(s)",
        net.node_ref::<Host>(h2).rx_frames(),
        net.node_ref::<Host>(h2).echo_requests_answered()
    );
    assert_eq!(
        replies, 1,
        "the dumb legacy switch now runs an SDN dataplane"
    );
    println!("\nA dumb legacy Ethernet switch is now a fully reconfigurable OpenFlow switch.");
}
