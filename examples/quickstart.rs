//! Quickstart: migrate two 4-port legacy switches to SDN, join them into
//! one fabric, and ping across it.
//!
//! The smallest complete multi-pod HARMLESS deployment: two pods (each a
//! legacy switch + translator SS_1 + main OpenFlow switch SS_2) joined
//! by a legacy spine, one L2-learning SDN controller over both, and a
//! host per pod. Everything — VLAN tagging on the legacy boxes, the
//! translator flow tables, the controller connections — is set up
//! through the library's direct-configuration path (see the `migration`
//! example for the fully automated SNMP/NAPALM route, and
//! `FabricSpec::single` for the classic one-switch deployment).
//!
//! Run with: `cargo run --release -p harmless-demos --example quickstart`

use controller::apps::LearningSwitch;
use controller::ControllerNode;
use harmless::fabric::{FabricSpec, Interconnect};
use harmless::instance::HarmlessSpec;
use netsim::host::Host;
use netsim::{Network, SimTime};

fn main() {
    let mut net = Network::new(2026);

    // An SDN controller running the classic reactive L2-learning app —
    // one controller for the whole fabric.
    let ctrl = net.add_node(ControllerNode::new(
        "controller",
        vec![Box::new(LearningSwitch::new())],
    ));

    // Two pods of the paper's Fig. 1, joined by a spare legacy switch as
    // the spine.
    let mut fx = FabricSpec::new(2, HarmlessSpec::new(4))
        .with_interconnect(Interconnect::SpineLegacy)
        .build(&mut net)
        .expect("valid fabric spec");
    fx.configure_direct(&mut net); // per-port VLANs + translator tables
    fx.connect_controller(&mut net, ctrl); // every SS_2 ↔ the controller

    // One ordinary host per pod, on legacy access port 1.
    let h1 = fx.attach_host(&mut net, 0, 1).expect("free access port");
    let h2 = fx.attach_host(&mut net, 1, 1).expect("free access port");
    let h2_ip = fx.host_ip(1, 1);

    // Let the OpenFlow handshakes finish, then ping pod 1 from pod 0.
    net.run_until(SimTime::from_millis(100));
    net.with_node_ctx::<Host, _>(h1, move |h, ctx| {
        h.ping(b"hello across the fabric", h2_ip);
        h.flush(ctx);
    });
    net.run_until(SimTime::from_millis(500));

    let replies = net.node_ref::<Host>(h1).echo_replies_received();
    let c = net.node_ref::<ControllerNode>(ctrl);
    println!("ping {} -> {h2_ip}: {replies} reply(ies)", fx.host_ip(0, 1));
    println!(
        "controller activity: {} datapaths, {} packet-ins, {} flow-mods installed",
        c.ready_switches(),
        c.packet_ins(),
        c.flow_mods_sent()
    );
    println!(
        "pod-1 host saw {} frame(s), answered {} echo request(s)",
        net.node_ref::<Host>(h2).rx_frames(),
        net.node_ref::<Host>(h2).echo_requests_answered()
    );
    assert_eq!(
        replies, 1,
        "two dumb legacy switches now form one SDN fabric"
    );
    println!("\nTwo dumb legacy Ethernet switches are now one reconfigurable OpenFlow fabric.");
}
