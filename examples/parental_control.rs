//! Use case (c) from the demo: Parental Control — "selectively deny
//! access to specific users to certain web pages on-the-fly".
//!
//! A home-office network on a migrated legacy switch: a kid's device, a
//! parent's device, and two "web servers". The parent's policy blocks the
//! kid from one site at runtime and lifts the block later; the parent's
//! own access is never affected.
//!
//! Run with: `cargo run --release -p harmless --example parental_control`

use controller::apps::{LearningSwitch, ParentalControl};
use controller::ControllerNode;
use harmless::fabric::FabricSpec;
use harmless::instance::HarmlessSpec;
use netsim::host::Host;
use netsim::{Network, NodeId, SimTime};
use std::net::Ipv4Addr;

fn ip(i: u16) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, i as u8)
}

fn fetch(net: &mut Network, from: NodeId, to: u16) -> bool {
    let before = net.node_ref::<Host>(from).syn_acks_received();
    net.with_node_ctx::<Host, _>(from, |h, ctx| {
        h.connect_tcp(ip(to), 80);
        h.flush(ctx);
    });
    net.run_for(SimTime::from_millis(300));
    net.node_ref::<Host>(from).syn_acks_received() > before
}

fn main() {
    let mut net = Network::new(12);
    let ctrl = net.add_node(ControllerNode::new(
        "controller",
        vec![
            Box::new(ParentalControl::new(&[])),
            Box::new(LearningSwitch::new().in_table(1)),
        ],
    ));
    let mut fx = FabricSpec::single(HarmlessSpec::new(4))
        .build(&mut net)
        .expect("valid single-pod spec");
    fx.configure_direct(&mut net);
    fx.connect_controller(&mut net, ctrl);

    let kid = fx.attach_host(&mut net, 0, 1).expect("free port"); // 10.0.0.1
    let parent = fx.attach_host(&mut net, 0, 2).expect("free port"); // 10.0.0.2
    let _site_a = fx.attach_host(&mut net, 0, 3).expect("free port"); // "videos.example"
    let _site_b = fx.attach_host(&mut net, 0, 4).expect("free port"); // "homework.example"
    net.run_until(SimTime::from_millis(100));

    let show = |who: &str, what: &str, ok: bool| {
        println!(
            "  {who:<7} -> {what:<16} {}",
            if ok { "HTTP 200" } else { "timeout (blocked)" }
        )
    };

    println!("phase 1: no policy");
    show("kid", "videos.example", fetch(&mut net, kid, 3));
    show("kid", "homework.example", fetch(&mut net, kid, 4));
    show("parent", "videos.example", fetch(&mut net, parent, 3));

    println!("\nphase 2: parent blocks videos.example for the kid (on-the-fly)");
    net.with_node_ctx::<ControllerNode, _>(ctrl, |c, ctx| {
        c.for_each_switch(ctx, |apps, handle| {
            let pc = apps
                .iter_mut()
                .find_map(|a| a.as_any_mut().downcast_mut::<ParentalControl>())
                .expect("parental-control app");
            pc.block(handle, ip(1), ip(3));
        });
    });
    net.run_for(SimTime::from_millis(10));
    let kid_videos_blocked = !fetch(&mut net, kid, 3);
    let kid_homework = fetch(&mut net, kid, 4);
    let parent_videos = fetch(&mut net, parent, 3);
    show("kid", "videos.example", !kid_videos_blocked);
    show("kid", "homework.example", kid_homework);
    show("parent", "videos.example", parent_videos);

    println!("\nphase 3: block lifted");
    net.with_node_ctx::<ControllerNode, _>(ctrl, |c, ctx| {
        c.for_each_switch(ctx, |apps, handle| {
            let pc = apps
                .iter_mut()
                .find_map(|a| a.as_any_mut().downcast_mut::<ParentalControl>())
                .expect("parental-control app");
            pc.unblock(handle, ip(1), ip(3));
        });
    });
    net.run_for(SimTime::from_millis(10));
    let kid_videos_again = fetch(&mut net, kid, 3);
    show("kid", "videos.example", kid_videos_again);

    assert!(kid_videos_blocked, "block must take effect");
    assert!(kid_homework && parent_videos, "other traffic untouched");
    assert!(kid_videos_again, "unblock must restore access");
    println!("\nPer-user, per-destination control applied and lifted live, in-network.");
}
