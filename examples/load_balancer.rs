//! Use case (a) from the demo: a server Load Balancer realized *in the
//! network* on a migrated legacy switch — no standalone appliance.
//!
//! Four web backends sit on access ports 2–5; four clients (ports 1 and
//! 6–8) address a virtual IP. The LB app answers ARP for the VIP and
//! splits clients by source address; the connection counters show the
//! spread. Real TCP handshakes run end to end (SYN → SYN/ACK through
//! address rewriting in SS_2).
//!
//! Run with: `cargo run --release -p harmless --example load_balancer`

use controller::apps::lb::Backend;
use controller::apps::{LearningSwitch, LoadBalancer};
use controller::ControllerNode;
use harmless::fabric::FabricSpec;
use harmless::instance::HarmlessSpec;
use netsim::host::Host;
use netsim::{Network, SimTime};
use std::net::Ipv4Addr;

fn main() {
    let mut net = Network::new(3);
    let vip: Ipv4Addr = "10.0.0.100".parse().unwrap();

    let backends: Vec<Backend> = (2..=5u16)
        .map(|p| Backend {
            port: u32::from(p),
            mac: netpkt::MacAddr::host(u32::from(p)),
            ip: Ipv4Addr::new(10, 0, 0, p as u8),
        })
        .collect();

    let ctrl = net.add_node(ControllerNode::new(
        "controller",
        vec![
            Box::new(LoadBalancer::new(vip, 80, backends)),
            Box::new(LearningSwitch::new().in_table(1)),
        ],
    ));

    // 8 access ports: clients on 1, 6, 7, 8; backends on 2..=5.
    let mut fx = FabricSpec::single(HarmlessSpec::new(8))
        .build(&mut net)
        .expect("valid single-pod spec");
    fx.configure_direct(&mut net);
    fx.connect_controller(&mut net, ctrl);

    let client_ports = [1u16, 6, 7, 8];
    let clients: Vec<_> = client_ports
        .iter()
        .map(|&p| fx.attach_host(&mut net, 0, p).expect("free access port"))
        .collect();
    let backend_hosts: Vec<_> = (2..=5)
        .map(|p| fx.attach_host(&mut net, 0, p).expect("free access port"))
        .collect();

    net.run_until(SimTime::from_millis(100));

    // Each client opens 3 TCP connections to the VIP.
    for round in 0..3 {
        for &c in &clients {
            net.with_node_ctx::<Host, _>(c, |h, ctx| {
                h.connect_tcp(vip, 80);
                h.flush(ctx);
            });
        }
        net.run_for(SimTime::from_millis(50));
        let _ = round;
    }
    net.run_until(SimTime::from_secs(1));

    let mut handshakes = 0;
    for (&p, &c) in client_ports.iter().zip(&clients) {
        let acks = net.node_ref::<Host>(c).syn_acks_received();
        handshakes += acks;
        println!("client 10.0.0.{p}: {acks} completed handshake(s)");
    }
    println!();
    for (i, &b) in backend_hosts.iter().enumerate() {
        println!(
            "backend {} (10.0.0.{}): {} connection(s)",
            i + 1,
            i + 2,
            net.node_ref::<Host>(b).syns_received()
        );
    }
    let total: u64 = backend_hosts
        .iter()
        .map(|&b| net.node_ref::<Host>(b).syns_received())
        .sum();
    let used = backend_hosts
        .iter()
        .filter(|&&b| net.node_ref::<Host>(b).syns_received() > 0)
        .count();
    assert_eq!(total, 12, "every connection must land on some backend");
    assert!(
        used >= 3,
        "source-IP buckets must spread clients over backends"
    );
    assert!(
        handshakes >= 9,
        "handshakes complete through the VIP rewrite"
    );
    println!(
        "\nIngress web traffic from 4 client IPs balanced across {used} backends by\n\
         source-IP matching, with VIP proxy-ARP and bidirectional rewriting in SS_2."
    );
}
