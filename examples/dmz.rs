//! Use case (b) from the demo: VM-level access policies in a multi-tenant
//! segment — the `DMZ` row of Fig. 1 — enforced by SS_2's policy table on
//! a migrated legacy switch.
//!
//! Eight "VMs" share the switch. The default is deny; the operator
//! permits two pairs, probes the matrix, then fine-tunes the policy at
//! runtime (permits a new pair, revokes an old one) and probes again.
//!
//! Run with: `cargo run --release -p harmless --example dmz`

use controller::apps::{dmz::render_policy, Dmz, LearningSwitch};
use controller::ControllerNode;
use harmless::fabric::FabricSpec;
use harmless::instance::HarmlessSpec;
use netsim::host::Host;
use netsim::{Network, NodeId, SimTime};
use std::net::Ipv4Addr;

fn ip(i: u16) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, i as u8)
}

fn probe_pair(net: &mut Network, from: NodeId, to: u16) -> bool {
    let before = net.node_ref::<Host>(from).echo_replies_received();
    net.with_node_ctx::<Host, _>(from, |h, ctx| {
        h.ping(b"dmz probe", ip(to));
        h.flush(ctx);
    });
    net.run_for(SimTime::from_millis(300));
    net.node_ref::<Host>(from).echo_replies_received() > before
}

fn main() {
    let mut net = Network::new(8);
    let pairs = vec![(ip(1), ip(2)), (ip(3), ip(4))];
    let ctrl = net.add_node(ControllerNode::new(
        "controller",
        vec![
            Box::new(Dmz::new(&pairs)),
            Box::new(LearningSwitch::new().in_table(1)),
        ],
    ));
    let mut fx = FabricSpec::single(HarmlessSpec::new(8))
        .build(&mut net)
        .expect("valid single-pod spec");
    fx.configure_direct(&mut net);
    fx.connect_controller(&mut net, ctrl);
    let hosts: Vec<_> = (1..=8)
        .map(|i| fx.attach_host(&mut net, 0, i).expect("free access port"))
        .collect();
    net.run_until(SimTime::from_millis(100));

    println!("policy table (SS_2, table 0):");
    {
        let c = net.node_ref::<ControllerNode>(ctrl);
        // Rendering needs the app; peek through the controller.
        let _ = c;
    }
    let mut rendered: Vec<String> = Vec::new();
    net.with_node_ctx::<ControllerNode, _>(ctrl, |c, _| {
        if let Some(dmz) = c.app_mut::<Dmz>() {
            rendered = render_policy(dmz);
        }
    });
    for row in &rendered {
        println!("  {row}");
    }

    println!("\nprobing (VM1->VM2, VM1->VM3, VM3->VM4, VM5->VM6):");
    let probes = [(0usize, 2u16), (0, 3), (2, 4), (4, 6)];
    for &(from, to) in &probes {
        let ok = probe_pair(&mut net, hosts[from], to);
        println!(
            "  VM{} -> VM{}: {}",
            from + 1,
            to,
            if ok { "ALLOWED" } else { "denied" }
        );
    }

    println!("\nfine-tuning at runtime: permit VM5<->VM6, revoke VM1<->VM2");
    net.with_node_ctx::<ControllerNode, _>(ctrl, |c, ctx| {
        c.for_each_switch(ctx, |apps, handle| {
            let dmz = apps
                .iter_mut()
                .find_map(|a| a.as_any_mut().downcast_mut::<Dmz>())
                .expect("dmz app");
            dmz.permit(handle, ip(5), ip(6));
            dmz.revoke(handle, ip(1), ip(2));
        });
    });
    net.run_for(SimTime::from_millis(50));

    println!("re-probing:");
    let vm5_vm6 = probe_pair(&mut net, hosts[4], 6);
    let vm1_vm2 = probe_pair(&mut net, hosts[0], 2);
    println!(
        "  VM5 -> VM6: {}",
        if vm5_vm6 { "ALLOWED" } else { "denied" }
    );
    println!(
        "  VM1 -> VM2: {}",
        if vm1_vm2 { "ALLOWED" } else { "denied" }
    );

    assert!(vm5_vm6, "newly permitted pair must connect");
    assert!(!vm1_vm2, "revoked pair must be cut off");
    println!("\nVM-level policy enforced and fine-tuned live, in-network — no firewall appliance.");
}
