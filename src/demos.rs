//! Anchor library for the `harmless-demos` root package.
//!
//! The package exists so the runnable demos in `examples/` belong to the
//! workspace root (`cargo run --example quickstart`). All real code
//! lives in the crates under `crates/`.

#![forbid(unsafe_code)]
