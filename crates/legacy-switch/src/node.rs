//! The legacy switch as a simulator node: hardware store-and-forward
//! timing, periodic FDB aging, and an SNMP agent on the control plane.

use bytes::Bytes;
use std::any::Any;

use mgmt::pdu::SnmpMessage;
use mgmt::store::agent_respond;
use netsim::{Node, NodeCtx, NodeId, PortId, SimTime};

use crate::bridge::Bridge;
use crate::mib::{BridgeMib, SysInfo};

const TOKEN_AGE: u64 = 1;
const AGE_PERIOD: SimTime = SimTime::from_secs(10);

/// Default internal forwarding latency of a store-and-forward GbE switch
/// (the frame is fully received before this; serialization is the link's
/// job).
pub const DEFAULT_LATENCY: SimTime = SimTime::from_micros(3);

/// A legacy Ethernet switch attached to the simulator. Sim ports map 1:1
/// to bridge ports (`PortId(n)` ↔ bridge port `n`, 1-based).
pub struct LegacySwitchNode {
    name: String,
    bridge: Bridge,
    sys: SysInfo,
    community: String,
    latency: SimTime,
    snmp_requests: u64,
    /// When the box last booted; `sysUpTime` restarts from here, which
    /// is how an SNMP manager detects the reboot.
    boot_at: SimTime,
    reboots: u64,
}

impl LegacySwitchNode {
    /// A factory-default switch with `n_ports` ports.
    pub fn new(name: impl Into<String>, n_ports: u16) -> LegacySwitchNode {
        let name = name.into();
        LegacySwitchNode {
            sys: SysInfo {
                name: name.clone(),
                ..SysInfo::default()
            },
            name,
            bridge: Bridge::new(n_ports),
            community: "public".into(),
            latency: DEFAULT_LATENCY,
            snmp_requests: 0,
            boot_at: SimTime::ZERO,
            reboots: 0,
        }
    }

    /// Number of reboots this box has been through.
    pub fn reboots(&self) -> u64 {
        self.reboots
    }

    /// Override the advertised `sysDescr` (drives NAPALM dialect
    /// detection).
    pub fn with_sys_descr(mut self, descr: impl Into<String>) -> Self {
        self.sys.descr = descr.into();
        self
    }

    /// Override the internal forwarding latency.
    pub fn with_latency(mut self, latency: SimTime) -> Self {
        self.latency = latency;
        self
    }

    /// Override the SNMP community.
    pub fn with_community(mut self, community: impl Into<String>) -> Self {
        self.community = community.into();
        self
    }

    /// Direct access to the bridge (tests, out-of-band config).
    pub fn bridge_mut(&mut self) -> &mut Bridge {
        &mut self.bridge
    }

    /// Read-only bridge access.
    pub fn bridge(&self) -> &Bridge {
        &self.bridge
    }

    /// SNMP requests served.
    pub fn snmp_requests(&self) -> u64 {
        self.snmp_requests
    }
}

impl Node for LegacySwitchNode {
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        ctx.schedule(AGE_PERIOD, TOKEN_AGE);
    }

    fn on_packet(&mut self, port: PortId, frame: Bytes, ctx: &mut NodeCtx) {
        let out = self.bridge.forward(port.0, &frame, ctx.now().as_nanos());
        for (p, f) in out.outputs {
            ctx.transmit_after(self.latency, PortId(p), f);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx) {
        if token == TOKEN_AGE {
            self.bridge.age_fdb(ctx.now().as_nanos());
            ctx.schedule(AGE_PERIOD, TOKEN_AGE);
        }
    }

    fn on_ctrl(&mut self, from: NodeId, data: Bytes, ctx: &mut NodeCtx) {
        // The management plane speaks SNMP to this box; anything else is
        // silently ignored, like a real closed appliance.
        let Ok(msg) = SnmpMessage::decode(&data) else {
            return;
        };
        self.snmp_requests += 1;
        let uptime_cs = (ctx.now().saturating_sub(self.boot_at).as_millis() / 10) as u32;
        let mut mib = BridgeMib {
            bridge: &mut self.bridge,
            sys: &self.sys,
            uptime_cs,
        };
        if let Some(resp) = agent_respond(&mut mib, &self.community, &msg) {
            ctx.ctrl_send(from, resp.encode());
        }
    }

    fn on_reset(&mut self, ctx: &mut NodeCtx) {
        // COTS boxes keep their config in volatile RAM unless an
        // operator wrote it to NVRAM — the paper's COTS model. A reboot
        // therefore reverts the whole bridge to factory defaults: VLAN
        // config, PVIDs, the learned FDB and the MIB counters all go;
        // the management plane must re-push the desired config.
        self.reboots += 1;
        self.bridge = Bridge::new(self.bridge.n_ports());
        // sysUpTime restarts, which is how SNMP managers spot reboots.
        self.boot_at = ctx.now();
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgmt::pdu::{Pdu, PduType, Value};
    use mgmt::{mibs, Oid};
    use netpkt::MacAddr;
    use netsim::host::Host;
    use netsim::{LinkSpec, Network};
    use std::net::Ipv4Addr;

    fn lan() -> (Network, netsim::NodeId, Vec<netsim::NodeId>) {
        let mut net = Network::new(11);
        let sw = net.add_node(LegacySwitchNode::new("sw1", 4));
        let mut hosts = Vec::new();
        for i in 1..=4u16 {
            let h = net.add_node(Host::new(
                format!("h{i}"),
                MacAddr::host(u32::from(i)),
                Ipv4Addr::new(10, 0, 0, i as u8),
            ));
            net.connect(h, PortId(0), sw, PortId(i), LinkSpec::gigabit());
            hosts.push(h);
        }
        (net, sw, hosts)
    }

    #[test]
    fn hosts_ping_through_the_switch() {
        let (mut net, sw, hosts) = lan();
        net.node_mut::<Host>(hosts[0])
            .ping(b"hello", Ipv4Addr::new(10, 0, 0, 3));
        net.run_until(SimTime::from_millis(50));
        assert_eq!(net.node_ref::<Host>(hosts[0]).echo_replies_received(), 1);
        assert_eq!(net.node_ref::<Host>(hosts[2]).echo_requests_answered(), 1);
        // The bridge learned both hosts.
        assert!(net.node_ref::<LegacySwitchNode>(sw).bridge().fdb_len() >= 2);
    }

    #[test]
    fn vlan_isolation_blocks_ping() {
        let (mut net, sw, hosts) = lan();
        {
            let b = net.node_mut::<LegacySwitchNode>(sw).bridge_mut();
            b.make_access_port(1, 10).unwrap();
            b.make_access_port(2, 10).unwrap();
            b.make_access_port(3, 20).unwrap();
        }
        net.node_mut::<Host>(hosts[0])
            .ping(b"ok", Ipv4Addr::new(10, 0, 0, 2));
        net.node_mut::<Host>(hosts[0])
            .ping(b"blocked", Ipv4Addr::new(10, 0, 0, 3));
        net.run_until(SimTime::from_millis(50));
        // Same VLAN works, cross-VLAN does not.
        assert_eq!(net.node_ref::<Host>(hosts[0]).echo_replies_received(), 1);
        assert_eq!(net.node_ref::<Host>(hosts[2]).echo_requests_answered(), 0);
    }

    #[test]
    fn forwarding_latency_applied() {
        let (mut net, _sw, hosts) = lan();
        net.node_mut::<Host>(hosts[0])
            .ping(b"x", Ipv4Addr::new(10, 0, 0, 2));
        net.run_until(SimTime::from_millis(50));
        // ARP exchange + ICMP round trip all crossed the switch; just
        // assert the reply arrived (timing is covered by netsim tests).
        assert_eq!(net.node_ref::<Host>(hosts[0]).echo_replies_received(), 1);
    }

    #[test]
    fn reboot_factory_resets_and_refloods_until_relearned() {
        let (mut net, sw, hosts) = lan();
        // Learn: an h1 ↔ h3 ping populates the FDB.
        net.node_mut::<Host>(hosts[0])
            .ping(b"a", Ipv4Addr::new(10, 0, 0, 3));
        net.run_until(SimTime::from_millis(50));
        assert!(net.node_ref::<LegacySwitchNode>(sw).bridge().fdb_len() >= 2);
        // Power-cycle the box.
        net.schedule_reset(SimTime::from_millis(60), sw);
        net.run_until(SimTime::from_millis(70));
        let swn = net.node_ref::<LegacySwitchNode>(sw);
        assert_eq!(swn.reboots(), 1);
        assert_eq!(swn.bridge().fdb_len(), 0, "reboot loses the learned FDB");
        assert_eq!(swn.bridge().flood_frames(), 0, "MIB state resets too");
        // Post-reboot traffic floods as unknown unicast until the bridge
        // re-learns, then converges and the ping still succeeds.
        net.with_node_ctx::<Host, _>(hosts[0], |h, ctx| {
            h.ping(b"b", Ipv4Addr::new(10, 0, 0, 3));
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(120));
        let swn = net.node_ref::<LegacySwitchNode>(sw);
        assert!(swn.bridge().flood_frames() > 0, "unknown unicast re-floods");
        assert!(swn.bridge().fdb_len() >= 2, "the FDB re-learns");
        assert_eq!(net.node_ref::<Host>(hosts[0]).echo_replies_received(), 2);
    }

    /// SNMP manager node for tests: fires one request, stores the reply.
    struct OneShotSnmp {
        target: netsim::NodeId,
        request: Bytes,
        reply: Option<SnmpMessage>,
    }

    impl Node for OneShotSnmp {
        fn on_start(&mut self, ctx: &mut NodeCtx) {
            ctx.ctrl_send(self.target, self.request.clone());
        }
        fn on_packet(&mut self, _p: PortId, _f: Bytes, _c: &mut NodeCtx) {}
        fn on_ctrl(&mut self, _from: NodeId, data: Bytes, _ctx: &mut NodeCtx) {
            self.reply = Some(SnmpMessage::decode(&data).unwrap());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn snmp_get_over_ctrl_plane() {
        let mut net = Network::new(2);
        let sw = net.add_node(LegacySwitchNode::new("sw1", 8));
        let req = SnmpMessage::new(
            "public",
            Pdu::request(PduType::Get, 42, vec![(mibs::if_number(), Value::Null)]),
        )
        .encode();
        let mgr = net.add_node(OneShotSnmp {
            target: sw,
            request: req,
            reply: None,
        });
        net.run_until(SimTime::from_millis(10));
        let reply = net.node_ref::<OneShotSnmp>(mgr).reply.as_ref().unwrap();
        assert_eq!(reply.pdu.request_id, 42);
        assert_eq!(reply.pdu.bindings[0].1, Value::Integer(8));
        assert_eq!(net.node_ref::<LegacySwitchNode>(sw).snmp_requests(), 1);
    }

    #[test]
    fn snmp_set_reconfigures_live_switch() {
        let mut net = Network::new(2);
        let sw = net.add_node(LegacySwitchNode::new("sw1", 4));
        let bindings = vec![
            (
                mibs::vlan_static_egress_ports(101),
                Value::OctetString(mibs::encode_portlist(&[1, 4], 4)),
            ),
            (
                mibs::vlan_static_untagged_ports(101),
                Value::OctetString(mibs::encode_portlist(&[1], 4)),
            ),
            (
                mibs::vlan_static_row_status(101),
                Value::Integer(mibs::ROW_CREATE_AND_GO),
            ),
            (mibs::pvid(1), Value::Gauge32(101)),
        ];
        let req = SnmpMessage::new("public", Pdu::request(PduType::Set, 7, bindings)).encode();
        let mgr = net.add_node(OneShotSnmp {
            target: sw,
            request: req,
            reply: None,
        });
        net.run_until(SimTime::from_millis(10));
        let reply = net.node_ref::<OneShotSnmp>(mgr).reply.as_ref().unwrap();
        assert_eq!(reply.pdu.error_status, mgmt::ErrorStatus::NoError);
        let b = net.node_ref::<LegacySwitchNode>(sw).bridge();
        assert_eq!(b.pvid(1), 101);
        assert!(b.vlans()[&101].egress.contains(&4));
    }

    #[test]
    fn wrong_community_gets_no_reply() {
        let mut net = Network::new(2);
        let sw = net.add_node(LegacySwitchNode::new("sw1", 4).with_community("secret"));
        let req = SnmpMessage::new(
            "public",
            Pdu::request(PduType::Get, 1, vec![(mibs::sys_descr(), Value::Null)]),
        )
        .encode();
        let mgr = net.add_node(OneShotSnmp {
            target: sw,
            request: req,
            reply: None,
        });
        net.run_until(SimTime::from_millis(10));
        assert!(net.node_ref::<OneShotSnmp>(mgr).reply.is_none());
    }

    #[test]
    fn garbage_ctrl_data_ignored() {
        let mut net = Network::new(2);
        let sw = net.add_node(LegacySwitchNode::new("sw1", 4));
        let mgr = net.add_node(OneShotSnmp {
            target: sw,
            request: Bytes::from_static(b"not snmp at all"),
            reply: None,
        });
        net.run_until(SimTime::from_millis(10));
        assert!(net.node_ref::<OneShotSnmp>(mgr).reply.is_none());
        assert_eq!(net.node_ref::<LegacySwitchNode>(sw).snmp_requests(), 0);
    }

    #[test]
    fn oid_walk_terminates_over_network() {
        // Walk the whole agent over the simulated control plane.
        struct Walker2 {
            target: netsim::NodeId,
            client: mgmt::SnmpClient,
            walker: Option<mgmt::client::Walker>,
            items: Vec<(Oid, Value)>,
            done: bool,
        }
        impl Node for Walker2 {
            fn on_start(&mut self, ctx: &mut NodeCtx) {
                let mut w = mgmt::client::Walker::new("1.3.6.1.2.1.17".parse().unwrap());
                let req = w.first_request(&mut self.client);
                self.walker = Some(w);
                ctx.ctrl_send(self.target, req);
            }
            fn on_packet(&mut self, _p: PortId, _f: Bytes, _c: &mut NodeCtx) {}
            fn on_ctrl(&mut self, from: NodeId, data: Bytes, ctx: &mut NodeCtx) {
                let Some(pdu) = self.client.accept(&data).unwrap() else {
                    return;
                };
                let w = self.walker.as_mut().unwrap();
                match w.accept(&mut self.client, &pdu) {
                    (mgmt::client::WalkStep::Item(o, v), Some(next)) => {
                        self.items.push((o, v));
                        ctx.ctrl_send(from, next);
                    }
                    _ => self.done = true,
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net = Network::new(2);
        let sw = net.add_node(LegacySwitchNode::new("sw1", 4));
        net.node_mut::<LegacySwitchNode>(sw)
            .bridge_mut()
            .make_access_port(1, 101)
            .unwrap();
        let mgr = net.add_node(Walker2 {
            target: sw,
            client: mgmt::SnmpClient::new("public"),
            walker: None,
            items: Vec::new(),
            done: false,
        });
        net.run_until(SimTime::from_secs(1));
        let w = net.node_ref::<Walker2>(mgr);
        assert!(w.done);
        // Q-BRIDGE subtree: 2 VLANs × 3 columns + 4 PVIDs = 10 instances.
        assert_eq!(w.items.len(), 10);
    }
}
