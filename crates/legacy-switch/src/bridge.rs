//! The VLAN-aware learning bridge (IEEE 802.1Q forwarding process).
//!
//! Configuration follows the Q-BRIDGE-MIB data model exactly, because
//! that is what the SNMP agent exposes: a static VLAN table (per-VLAN
//! egress and untagged port sets) plus a per-port PVID for ingress
//! classification of untagged frames. "Access port of VLAN v" is then
//! `pvid = v`, `v.egress ∋ p`, `v.untagged ∋ p` — precisely the state the
//! HARMLESS Manager writes.

use bytes::Bytes;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use netpkt::vlan::{self, VlanTag, VlanView};
use netpkt::{EthernetFrame, MacAddr};

/// Per-port traffic counters (feeds `ifInOctets`/`ifOutOctets`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortCounters {
    /// Frames received.
    pub rx_frames: u64,
    /// Octets received.
    pub rx_octets: u64,
    /// Frames sent.
    pub tx_frames: u64,
    /// Octets sent.
    pub tx_octets: u64,
    /// Ingress drops (VLAN filtering, unknown VLAN).
    pub rx_filtered: u64,
}

/// One VLAN's membership.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VlanEntry {
    /// Ports that carry this VLAN at all.
    pub egress: BTreeSet<u16>,
    /// Subset of `egress` that send it untagged.
    pub untagged: BTreeSet<u16>,
}

#[derive(Debug, Clone, Copy)]
struct FdbEntry {
    port: u16,
    learned_ns: u64,
}

/// Errors from configuration operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeConfigError {
    /// VLAN id outside 1..=4094.
    BadVlanId,
    /// Port number outside 1..=n_ports.
    BadPort,
    /// Operation referenced a VLAN that does not exist.
    NoSuchVlan,
}

impl core::fmt::Display for BridgeConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BridgeConfigError::BadVlanId => write!(f, "VLAN id out of range"),
            BridgeConfigError::BadPort => write!(f, "port out of range"),
            BridgeConfigError::NoSuchVlan => write!(f, "no such VLAN"),
        }
    }
}

impl std::error::Error for BridgeConfigError {}

/// What the forwarding process decided for one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Forwarded {
    /// `(egress port, frame as it leaves that port)`.
    pub outputs: Vec<(u16, Bytes)>,
    /// The VLAN the frame was classified into.
    pub vlan: u16,
    /// True if ingress filtering dropped it.
    pub filtered: bool,
}

/// A VLAN-aware learning bridge with `n_ports` ports (1-based).
#[derive(Debug)]
pub struct Bridge {
    n_ports: u16,
    vlans: BTreeMap<u16, VlanEntry>,
    pvid: BTreeMap<u16, u16>,
    fdb: HashMap<(u16, MacAddr), FdbEntry>,
    aging_ns: u64,
    counters: BTreeMap<u16, PortCounters>,
    flood_frames: u64,
}

/// Default MAC aging time (302 s, the 802.1D default is 300 s ± margin).
pub const DEFAULT_AGING_NS: u64 = 300 * 1_000_000_000;

impl Bridge {
    /// Factory-default bridge: all ports untagged members of VLAN 1 with
    /// PVID 1 — the "dumb switch" the paper starts from.
    pub fn new(n_ports: u16) -> Bridge {
        let mut vlans = BTreeMap::new();
        let all: BTreeSet<u16> = (1..=n_ports).collect();
        vlans.insert(
            1,
            VlanEntry {
                egress: all.clone(),
                untagged: all,
            },
        );
        Bridge {
            n_ports,
            vlans,
            pvid: (1..=n_ports).map(|p| (p, 1)).collect(),
            fdb: HashMap::new(),
            aging_ns: DEFAULT_AGING_NS,
            counters: (1..=n_ports)
                .map(|p| (p, PortCounters::default()))
                .collect(),
            flood_frames: 0,
        }
    }

    /// Number of ports.
    pub fn n_ports(&self) -> u16 {
        self.n_ports
    }

    /// The VLAN table (MIB reads).
    pub fn vlans(&self) -> &BTreeMap<u16, VlanEntry> {
        &self.vlans
    }

    /// A port's PVID (1 if unset).
    pub fn pvid(&self, port: u16) -> u16 {
        self.pvid.get(&port).copied().unwrap_or(1)
    }

    /// Per-port counters.
    pub fn counters(&self, port: u16) -> PortCounters {
        self.counters.get(&port).copied().unwrap_or_default()
    }

    /// Frames that had to be flooded (unknown destination).
    pub fn flood_frames(&self) -> u64 {
        self.flood_frames
    }

    /// Current FDB size.
    pub fn fdb_len(&self) -> usize {
        self.fdb.len()
    }

    /// The learned port for `(vlan, mac)`, if any.
    pub fn fdb_lookup(&self, vlan: u16, mac: MacAddr) -> Option<u16> {
        self.fdb.get(&(vlan, mac)).map(|e| e.port)
    }

    /// Set the MAC aging time.
    pub fn set_aging_ns(&mut self, ns: u64) {
        self.aging_ns = ns;
    }

    fn check_port(&self, port: u16) -> Result<(), BridgeConfigError> {
        if port == 0 || port > self.n_ports {
            return Err(BridgeConfigError::BadPort);
        }
        Ok(())
    }

    /// Create an (empty) VLAN; idempotent for existing VLANs.
    pub fn create_vlan(&mut self, vid: u16) -> Result<(), BridgeConfigError> {
        if !VlanTag::vid_is_valid(vid) {
            return Err(BridgeConfigError::BadVlanId);
        }
        self.vlans.entry(vid).or_default();
        Ok(())
    }

    /// Destroy a VLAN and flush its FDB entries.
    pub fn destroy_vlan(&mut self, vid: u16) -> Result<(), BridgeConfigError> {
        if self.vlans.remove(&vid).is_none() {
            return Err(BridgeConfigError::NoSuchVlan);
        }
        self.fdb.retain(|(v, _), _| *v != vid);
        Ok(())
    }

    /// Replace a VLAN's egress port set.
    pub fn set_egress(&mut self, vid: u16, ports: &[u16]) -> Result<(), BridgeConfigError> {
        for &p in ports {
            self.check_port(p)?;
        }
        let e = self
            .vlans
            .get_mut(&vid)
            .ok_or(BridgeConfigError::NoSuchVlan)?;
        e.egress = ports.iter().copied().collect();
        e.untagged = e.untagged.intersection(&e.egress).copied().collect();
        Ok(())
    }

    /// Replace a VLAN's untagged port set (must be ⊆ egress; enforced by
    /// intersection, as real agents do).
    pub fn set_untagged(&mut self, vid: u16, ports: &[u16]) -> Result<(), BridgeConfigError> {
        for &p in ports {
            self.check_port(p)?;
        }
        let e = self
            .vlans
            .get_mut(&vid)
            .ok_or(BridgeConfigError::NoSuchVlan)?;
        e.untagged = ports
            .iter()
            .copied()
            .filter(|p| e.egress.contains(p))
            .collect();
        Ok(())
    }

    /// Set a port's PVID. The VLAN must exist.
    pub fn set_pvid(&mut self, port: u16, vid: u16) -> Result<(), BridgeConfigError> {
        self.check_port(port)?;
        if !self.vlans.contains_key(&vid) {
            return Err(BridgeConfigError::NoSuchVlan);
        }
        self.pvid.insert(port, vid);
        Ok(())
    }

    /// Convenience: make `port` an access port of `vid` (creates the VLAN,
    /// sets membership, untagged egress and PVID).
    pub fn make_access_port(&mut self, port: u16, vid: u16) -> Result<(), BridgeConfigError> {
        self.check_port(port)?;
        self.create_vlan(vid)?;
        let e = self.vlans.get_mut(&vid).unwrap();
        e.egress.insert(port);
        e.untagged.insert(port);
        self.set_pvid(port, vid)
    }

    /// Convenience: make `port` a tagged member of every VLAN in `vids`
    /// (a trunk carrying those VLANs).
    pub fn make_trunk_port(&mut self, port: u16, vids: &[u16]) -> Result<(), BridgeConfigError> {
        self.check_port(port)?;
        for &vid in vids {
            self.create_vlan(vid)?;
            let e = self.vlans.get_mut(&vid).unwrap();
            e.egress.insert(port);
            e.untagged.remove(&port);
        }
        Ok(())
    }

    /// Age out stale FDB entries.
    pub fn age_fdb(&mut self, now_ns: u64) -> usize {
        let aging = self.aging_ns;
        let before = self.fdb.len();
        self.fdb
            .retain(|_, e| now_ns.saturating_sub(e.learned_ns) < aging);
        before - self.fdb.len()
    }

    /// Flush the entire FDB (topology change).
    pub fn flush_fdb(&mut self) {
        self.fdb.clear();
    }

    /// The 802.1Q forwarding process for one received frame.
    pub fn forward(&mut self, in_port: u16, frame: &Bytes, now_ns: u64) -> Forwarded {
        if let Some(c) = self.counters.get_mut(&in_port) {
            c.rx_frames += 1;
            c.rx_octets += frame.len() as u64;
        }
        let Ok(view) = VlanView::parse(frame) else {
            return Forwarded {
                outputs: Vec::new(),
                vlan: 0,
                filtered: true,
            };
        };
        // Ingress classification + filtering.
        let (vid, inner): (u16, Bytes) = match view.outer {
            Some(tag) => {
                let member = self
                    .vlans
                    .get(&tag.vid)
                    .map(|v| v.egress.contains(&in_port))
                    .unwrap_or(false);
                if !member {
                    if let Some(c) = self.counters.get_mut(&in_port) {
                        c.rx_filtered += 1;
                    }
                    return Forwarded {
                        outputs: Vec::new(),
                        vlan: tag.vid,
                        filtered: true,
                    };
                }
                (
                    tag.vid,
                    vlan::pop_vlan(frame).unwrap_or_else(|_| frame.clone()),
                )
            }
            None => {
                let vid = self.pvid(in_port);
                if !self.vlans.contains_key(&vid) {
                    if let Some(c) = self.counters.get_mut(&in_port) {
                        c.rx_filtered += 1;
                    }
                    return Forwarded {
                        outputs: Vec::new(),
                        vlan: vid,
                        filtered: true,
                    };
                }
                (vid, frame.clone())
            }
        };

        let eth = EthernetFrame::new_unchecked(&inner[..]);
        let (src, dst) = (eth.src(), eth.dst());

        // Learning.
        if src.is_unicast() {
            self.fdb.insert(
                (vid, src),
                FdbEntry {
                    port: in_port,
                    learned_ns: now_ns,
                },
            );
        }

        // Forwarding decision.
        let vlan_entry = self.vlans.get(&vid).expect("validated above");
        let egress_ports: Vec<u16> = if dst.is_unicast() {
            match self.fdb.get(&(vid, dst)) {
                Some(e) if e.port != in_port && vlan_entry.egress.contains(&e.port) => {
                    vec![e.port]
                }
                Some(_) => Vec::new(), // destination is behind the ingress port
                None => {
                    self.flood_frames += 1;
                    vlan_entry
                        .egress
                        .iter()
                        .copied()
                        .filter(|&p| p != in_port)
                        .collect()
                }
            }
        } else {
            self.flood_frames += u64::from(!dst.is_unicast());
            vlan_entry
                .egress
                .iter()
                .copied()
                .filter(|&p| p != in_port)
                .collect()
        };

        // Egress tagging.
        let vlan_entry = self.vlans.get(&vid).unwrap();
        let mut outputs = Vec::with_capacity(egress_ports.len());
        let tagged_frame: Option<Bytes> = if egress_ports
            .iter()
            .any(|p| !vlan_entry.untagged.contains(p))
        {
            Some(vlan::push_vlan(&inner, VlanTag::new(vid)).unwrap_or_else(|_| inner.clone()))
        } else {
            None
        };
        for p in egress_ports {
            let f = if vlan_entry.untagged.contains(&p) {
                inner.clone()
            } else {
                tagged_frame.clone().expect("built above")
            };
            if let Some(c) = self.counters.get_mut(&p) {
                c.tx_frames += 1;
                c.tx_octets += f.len() as u64;
            }
            outputs.push((p, f));
        }
        Forwarded {
            outputs,
            vlan: vid,
            filtered: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::builder;
    use netpkt::EtherType;
    use std::net::Ipv4Addr;

    fn frame(src: u32, dst: u32) -> Bytes {
        builder::udp_packet(
            MacAddr::host(src),
            MacAddr::host(dst),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            b"x",
        )
    }

    fn bcast(src: u32) -> Bytes {
        builder::ethernet(
            MacAddr::BROADCAST,
            MacAddr::host(src),
            EtherType::ARP,
            &[0u8; 46],
        )
    }

    #[test]
    fn default_config_floods_then_learns() {
        let mut b = Bridge::new(4);
        // Unknown dst: flood to all other ports.
        let out = b.forward(1, &frame(1, 2), 0);
        assert_eq!(out.vlan, 1);
        let mut ports: Vec<u16> = out.outputs.iter().map(|(p, _)| *p).collect();
        ports.sort_unstable();
        assert_eq!(ports, vec![2, 3, 4]);
        // Reply from port 2 teaches the bridge; traffic to host 1 is now unicast.
        let out = b.forward(2, &frame(2, 1), 1);
        assert_eq!(out.outputs.len(), 1);
        assert_eq!(out.outputs[0].0, 1);
        // And now 1→2 is unicast too.
        let out = b.forward(1, &frame(1, 2), 2);
        assert_eq!(out.outputs.len(), 1);
        assert_eq!(out.outputs[0].0, 2);
        assert_eq!(b.fdb_len(), 2);
    }

    #[test]
    fn vlan_isolation() {
        let mut b = Bridge::new(4);
        b.make_access_port(1, 10).unwrap();
        b.make_access_port(2, 10).unwrap();
        b.make_access_port(3, 20).unwrap();
        b.make_access_port(4, 20).unwrap();
        // Flood from port 1 stays within VLAN 10.
        let out = b.forward(1, &bcast(1), 0);
        let ports: Vec<u16> = out.outputs.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![2]);
        assert_eq!(out.vlan, 10);
    }

    #[test]
    fn harmless_tagging_and_hairpinning_shape() {
        // The exact configuration HARMLESS installs: port i in VLAN
        // 100+i, trunk on port 5 carrying all of them.
        let mut b = Bridge::new(5);
        for p in 1..=4u16 {
            b.make_access_port(p, 100 + p).unwrap();
        }
        b.make_trunk_port(5, &[101, 102, 103, 104]).unwrap();

        // Host on port 1 sends untagged; the only member beside port 1 is
        // the trunk, which gets it tagged with VLAN 101.
        let out = b.forward(1, &frame(1, 2), 0);
        assert_eq!(out.outputs.len(), 1);
        let (p, f) = &out.outputs[0];
        assert_eq!(*p, 5);
        let tag = vlan::outer_tag(f).expect("trunk egress must be tagged");
        assert_eq!(tag.vid, 101);

        // The soft switch hairpins it back tagged 102; the bridge must
        // deliver it untagged on access port 2.
        let hairpinned = vlan::push_vlan(&frame(1, 2), VlanTag::new(102)).unwrap();
        let out = b.forward(5, &hairpinned, 1);
        // dst host(2) unknown in VLAN 102 -> floods to port 2 only.
        assert_eq!(out.outputs.len(), 1);
        let (p, f) = &out.outputs[0];
        assert_eq!(*p, 2);
        assert!(
            vlan::outer_tag(f).is_none(),
            "access egress must be untagged"
        );
    }

    #[test]
    fn ingress_filtering_drops_foreign_tags() {
        let mut b = Bridge::new(4);
        b.make_access_port(1, 10).unwrap();
        // Port 1 is not a member of VLAN 99.
        let tagged = vlan::push_vlan(&frame(1, 2), VlanTag::new(99)).unwrap();
        let out = b.forward(1, &tagged, 0);
        assert!(out.filtered);
        assert!(out.outputs.is_empty());
        assert_eq!(b.counters(1).rx_filtered, 1);
    }

    #[test]
    fn no_hairpin_to_ingress_port() {
        let mut b = Bridge::new(2);
        // Learn host 2 behind port 1, then send to it from port 1.
        b.forward(1, &frame(2, 9), 0);
        let out = b.forward(1, &frame(1, 2), 1);
        assert!(
            out.outputs.is_empty(),
            "frames never exit their ingress port"
        );
    }

    #[test]
    fn aging_expires_entries() {
        let mut b = Bridge::new(2);
        b.set_aging_ns(1_000);
        b.forward(1, &frame(1, 2), 0);
        assert_eq!(b.fdb_len(), 1);
        assert_eq!(b.age_fdb(500), 0);
        assert_eq!(b.age_fdb(1_500), 1);
        assert_eq!(b.fdb_len(), 0);
    }

    #[test]
    fn destroy_vlan_flushes_fdb() {
        let mut b = Bridge::new(2);
        b.make_access_port(1, 10).unwrap();
        b.make_access_port(2, 10).unwrap();
        b.forward(1, &frame(1, 2), 0);
        assert_eq!(b.fdb_len(), 1);
        b.destroy_vlan(10).unwrap();
        assert_eq!(b.fdb_len(), 0);
        // Ports whose PVID points at the dead VLAN now filter ingress.
        let out = b.forward(1, &frame(1, 2), 1);
        assert!(out.filtered);
    }

    #[test]
    fn config_validation() {
        let mut b = Bridge::new(2);
        assert_eq!(b.create_vlan(0).unwrap_err(), BridgeConfigError::BadVlanId);
        assert_eq!(
            b.create_vlan(4095).unwrap_err(),
            BridgeConfigError::BadVlanId
        );
        assert_eq!(b.set_pvid(9, 1).unwrap_err(), BridgeConfigError::BadPort);
        assert_eq!(
            b.set_pvid(1, 99).unwrap_err(),
            BridgeConfigError::NoSuchVlan
        );
        assert_eq!(
            b.set_egress(99, &[1]).unwrap_err(),
            BridgeConfigError::NoSuchVlan
        );
        assert_eq!(
            b.set_egress(1, &[7]).unwrap_err(),
            BridgeConfigError::BadPort
        );
    }

    #[test]
    fn untagged_set_clamped_to_egress() {
        let mut b = Bridge::new(4);
        b.create_vlan(10).unwrap();
        b.set_egress(10, &[1, 2]).unwrap();
        b.set_untagged(10, &[1, 3]).unwrap(); // 3 is not a member
        assert_eq!(
            b.vlans()[&10].untagged.iter().copied().collect::<Vec<_>>(),
            vec![1]
        );
        // Shrinking egress shrinks untagged too.
        b.set_egress(10, &[2]).unwrap();
        assert!(b.vlans()[&10].untagged.is_empty());
    }

    #[test]
    fn counters_track_octets() {
        let mut b = Bridge::new(2);
        let f = frame(1, 2);
        b.forward(1, &f, 0);
        assert_eq!(b.counters(1).rx_octets, f.len() as u64);
        assert_eq!(b.counters(2).tx_frames, 1);
    }
}
