//! # legacy-switch — device models for the non-SDN side of HARMLESS
//!
//! Two devices live here:
//!
//! * [`Bridge`] / [`LegacySwitchNode`] — the "plain old legacy Ethernet
//!   switch" HARMLESS migrates: a VLAN-aware 802.1Q learning bridge
//!   (access/trunk port modes via PVID + egress/untagged sets, MAC
//!   learning with aging, flooding) with line-rate store-and-forward
//!   timing and an SNMP agent exposing MIB-II and Q-BRIDGE-MIB subsets —
//!   the surface the HARMLESS Manager drives via NAPALM.
//! * [`CotsSwitchNode`] — the comparison point: a commodity hardware
//!   OpenFlow switch with line-rate matching but a small TCAM
//!   (`table_capacity`) and slow, serialized rule installation, the two
//!   properties the paper's claims about COTS SDN hinge on [13, 14].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod cots;
pub mod mib;
pub mod node;

pub use bridge::{Bridge, BridgeConfigError, PortCounters};
pub use cots::{CotsConfig, CotsSwitchNode};
pub use node::LegacySwitchNode;
