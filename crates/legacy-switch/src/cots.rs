//! The COTS hardware OpenFlow switch model — the device HARMLESS competes
//! with on price and the paper criticises for "not scaling \[and\] offering
//! unpredictable performance" (ref 13 in the paper).
//!
//! Modelled properties, taken from public switch datasheets and the
//! vendor-limitation survey the paper cites:
//!
//! * **Line-rate matching** regardless of rule count — a fixed, small
//!   pipeline latency and no CPU bottleneck;
//! * **Tiny rule table** — flow-mods beyond `tcam_entries` are rejected
//!   with `TABLE_FULL`;
//! * **Slow, serialized rule installation** — each table write costs
//!   `install_delay` (hundreds of rules/second is typical), so barriers
//!   and bulk policy pushes take visible time;
//! * **Limited match/action support** — masked MAC matches and QinQ
//!   pushes are refused (`BAD_MATCH`), a nod to the standards-compliance
//!   complaints.

use bytes::Bytes;
use std::any::Any;
use std::collections::VecDeque;

use netsim::{Node, NodeCtx, NodeId, PortId, SimTime};
use openflow::message::Message;
use openflow::oxm::OxmField;
use softswitch::agent::OfAgent;
use softswitch::datapath::{Datapath, DpConfig, PipelineMode};

const TOKEN_INSTALL: u64 = 1;
const TOKEN_EXPIRE: u64 = 2;
const EXPIRE_PERIOD: SimTime = SimTime::from_millis(500);

/// Hardware model parameters.
#[derive(Debug, Clone)]
pub struct CotsConfig {
    /// OpenFlow datapath id.
    pub datapath_id: u64,
    /// TCAM capacity per table.
    pub tcam_entries: usize,
    /// Fixed forwarding latency (cut-through ASIC pipeline).
    pub pipeline_latency: SimTime,
    /// Cost of installing/removing one rule.
    pub install_delay: SimTime,
    /// Processing time of non-table control messages.
    pub ctrl_delay: SimTime,
}

impl Default for CotsConfig {
    fn default() -> Self {
        CotsConfig {
            datapath_id: 0xC075,
            // Typical commodity OF 1.3 silicon: 2-4k TCAM flows [13, 14].
            tcam_entries: 2048,
            pipeline_latency: SimTime::from_nanos(800),
            // ~250 flow-mods/second, a common figure for TCAM writes.
            install_delay: SimTime::from_micros(4000),
            ctrl_delay: SimTime::from_micros(100),
        }
    }
}

/// A commodity hardware OpenFlow switch attached to the simulator.
pub struct CotsSwitchNode {
    name: String,
    dp: Datapath,
    agent: OfAgent,
    config: CotsConfig,
    controller: Option<NodeId>,
    /// Control messages waiting for the management CPU, with their source.
    install_queue: VecDeque<(NodeId, u32, Message)>,
    busy: bool,
    flow_mods_applied: u64,
}

impl CotsSwitchNode {
    /// Build the switch with `n_ports` ports.
    pub fn new(name: impl Into<String>, n_ports: u16, config: CotsConfig) -> CotsSwitchNode {
        let name = name.into();
        let mut dp = Datapath::new(DpConfig {
            datapath_id: config.datapath_id,
            n_tables: 2, // hardware pipelines are shallow
            mode: PipelineMode::tss(),
            micro_capacity: 0,
            mega_capacity: 0,
            table_capacity: config.tcam_entries,
        });
        for p in 1..=n_ports {
            dp.add_port(u32::from(p), format!("te{p}"), 10_000_000);
        }
        CotsSwitchNode {
            agent: OfAgent::new(name.clone()),
            name,
            dp,
            config,
            controller: None,
            install_queue: VecDeque::new(),
            busy: false,
            flow_mods_applied: 0,
        }
    }

    /// Attach the controller.
    pub fn connect_controller(&mut self, controller: NodeId) {
        self.controller = Some(controller);
    }

    /// Direct dataplane access for tests.
    pub fn datapath_mut(&mut self) -> &mut Datapath {
        &mut self.dp
    }

    /// Read-only dataplane access.
    pub fn datapath(&self) -> &Datapath {
        &self.dp
    }

    /// Flow-mods the management CPU has applied.
    pub fn flow_mods_applied(&self) -> u64 {
        self.flow_mods_applied
    }

    /// Control messages still queued for the management CPU.
    pub fn install_backlog(&self) -> usize {
        self.install_queue.len()
    }

    /// Hardware capability screening: refuse matches/actions the ASIC
    /// cannot program, per the standards-compliance complaints (ref 13).
    fn hardware_supports(msg: &Message) -> bool {
        if let Message::FlowMod(fm) = msg {
            for f in fm.match_.fields() {
                match f {
                    OxmField::EthDst(_, Some(_)) | OxmField::EthSrc(_, Some(_)) => return false,
                    OxmField::Metadata(..) => return false,
                    OxmField::Ipv6Src(..) | OxmField::Ipv6Dst(..) => return false,
                    _ => {}
                }
            }
            for insn in &fm.instructions {
                if let openflow::Instruction::ApplyActions(actions)
                | openflow::Instruction::WriteActions(actions) = insn
                {
                    for a in actions {
                        if matches!(a, openflow::Action::PushVlan(tpid) if *tpid != 0x8100) {
                            return false; // no QinQ S-tags
                        }
                    }
                }
            }
        }
        true
    }

    fn schedule_next_install(&mut self, ctx: &mut NodeCtx) {
        if self.busy {
            return;
        }
        let Some((_, _, msg)) = self.install_queue.front() else {
            return;
        };
        let delay = match msg {
            Message::FlowMod(_) | Message::GroupMod { .. } | Message::MeterMod { .. } => {
                self.config.install_delay
            }
            _ => self.config.ctrl_delay,
        };
        self.busy = true;
        ctx.schedule(delay, TOKEN_INSTALL);
    }
}

impl Node for CotsSwitchNode {
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        ctx.schedule(EXPIRE_PERIOD, TOKEN_EXPIRE);
        if let Some(c) = self.controller {
            let hello = self.agent.hello();
            ctx.ctrl_send(c, hello);
        }
    }

    fn on_packet(&mut self, port: PortId, frame: Bytes, ctx: &mut NodeCtx) {
        // The ASIC forwards at line rate with a fixed pipeline latency.
        let result = self
            .dp
            .process(u32::from(port.0), frame, ctx.now().as_nanos());
        for (p, f) in result.outputs {
            ctx.transmit_after(self.config.pipeline_latency, PortId(p as u16), f);
        }
        if let Some(c) = self.controller {
            for (reason, in_port, data) in result.packet_ins {
                let msg = self.agent.packet_in(reason, in_port, &data);
                ctx.ctrl_send(c, msg);
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx) {
        match token {
            TOKEN_EXPIRE => {
                self.dp.expire_flows(ctx.now().as_nanos());
                ctx.schedule(EXPIRE_PERIOD, TOKEN_EXPIRE);
            }
            TOKEN_INSTALL => {
                self.busy = false;
                if let Some((from, xid, msg)) = self.install_queue.pop_front() {
                    if matches!(msg, Message::FlowMod(_)) {
                        self.flow_mods_applied += 1;
                    }
                    let wire = msg.encode(xid);
                    let out = self.agent.handle(&mut self.dp, &wire, ctx.now().as_nanos());
                    for reply in out.replies {
                        ctx.ctrl_send(from, reply);
                    }
                    for (port, frame) in out.transmits {
                        ctx.transmit_after(
                            self.config.pipeline_latency,
                            PortId(port as u16),
                            frame,
                        );
                    }
                }
                self.schedule_next_install(ctx);
            }
            _ => {}
        }
    }

    fn on_ctrl(&mut self, from: NodeId, data: Bytes, ctx: &mut NodeCtx) {
        // Decode eagerly; unsupported features bounce immediately, the
        // rest crawls through the management CPU's queue.
        let mut buf = bytes::BytesMut::from(&data[..]);
        let Ok(msgs) = openflow::message::decode_stream(&mut buf) else {
            return;
        };
        for (xid, msg) in msgs {
            if !Self::hardware_supports(&msg) {
                ctx.ctrl_send(
                    from,
                    Message::Error {
                        ty: 4,
                        code: 8,
                        data: Bytes::new(),
                    }
                    .encode(xid),
                );
                continue;
            }
            self.install_queue.push_back((from, xid, msg));
        }
        self.schedule_next_install(ctx);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::traffic::{FlowSpec, Generator, Pattern, Sink};
    use netsim::{LinkSpec, Network};
    use openflow::message::FlowMod;
    use openflow::{Action, Match};

    struct ScriptedController {
        to_send: Vec<Bytes>,
        received: Vec<Message>,
        target: Option<NodeId>,
    }

    impl Node for ScriptedController {
        fn on_packet(&mut self, _p: PortId, _f: Bytes, _c: &mut NodeCtx) {}
        fn on_ctrl(&mut self, from: NodeId, data: Bytes, ctx: &mut NodeCtx) {
            let mut buf = bytes::BytesMut::from(&data[..]);
            for (_, m) in openflow::message::decode_stream(&mut buf).unwrap() {
                self.received.push(m);
            }
            if self.target.is_none() {
                self.target = Some(from);
                for m in std::mem::take(&mut self.to_send) {
                    ctx.ctrl_send(from, m);
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn line_rate_forwarding_with_fixed_latency() {
        let mut net = Network::new(5);
        let mut sw = CotsSwitchNode::new("cots", 4, CotsConfig::default());
        sw.datapath_mut()
            .apply_flow_mod(
                &FlowMod::add(0)
                    .priority(1)
                    .match_(Match::new().in_port(1))
                    .apply(vec![Action::output(2)]),
                0,
            )
            .unwrap();
        let s = net.add_node(sw);
        let g = net.add_node(Generator::new(
            "gen",
            PortId(0),
            Pattern::Cbr { pps: 100_000.0 },
            vec![FlowSpec::simple(1, 2, 512)],
            SimTime::ZERO,
            SimTime::from_millis(10),
        ));
        let sink = net.add_node(Sink::new("sink"));
        net.connect(g, PortId(0), s, PortId(1), LinkSpec::ten_gigabit());
        net.connect(s, PortId(2), sink, PortId(0), LinkSpec::ten_gigabit());
        net.run_until(SimTime::from_millis(50));
        let sink = net.node_ref::<Sink>(sink);
        assert_eq!(sink.received(), 1000);
        // ser 2×(536×0.8ns)≈858 + 2µs prop + 800ns pipeline ≈ 3.7µs;
        // "unpredictable performance" does not apply to the dataplane.
        let p50 = sink.latency().p50();
        assert!((3_000..5_000).contains(&p50), "p50 = {p50}ns");
        assert_eq!(
            sink.latency().max() - sink.latency().min(),
            0,
            "hardware jitter = 0"
        );
    }

    #[test]
    fn tcam_fills_up() {
        let mut sw = CotsSwitchNode::new(
            "cots",
            4,
            CotsConfig {
                tcam_entries: 10,
                ..CotsConfig::default()
            },
        );
        for i in 0..10u16 {
            sw.datapath_mut()
                .apply_flow_mod(
                    &FlowMod::add(0)
                        .priority(10)
                        .match_(Match::new().eth_type(0x0800).ip_proto(17).udp_dst(i))
                        .apply(vec![Action::output(2)]),
                    0,
                )
                .unwrap();
        }
        let err = sw
            .datapath_mut()
            .apply_flow_mod(
                &FlowMod::add(0)
                    .priority(10)
                    .match_(Match::new().eth_type(0x0800).ip_proto(17).udp_dst(999))
                    .apply(vec![Action::output(2)]),
                0,
            )
            .unwrap_err();
        assert_eq!(err, openflow::Error::TableFull);
    }

    #[test]
    fn rule_install_is_slow_and_serialized() {
        let mut net = Network::new(5);
        net.set_ctrl_delay(SimTime::from_micros(10));
        // 50 rules at 4 ms each ≈ 200 ms before the barrier returns.
        let mut msgs = vec![Message::Hello.encode(1)];
        for i in 0..50u16 {
            msgs.push(
                Message::FlowMod(
                    FlowMod::add(0)
                        .priority(10)
                        .match_(Match::new().eth_type(0x0800).ip_proto(17).udp_dst(i))
                        .apply(vec![Action::output(2)]),
                )
                .encode(u32::from(i) + 2),
            );
        }
        msgs.push(Message::BarrierRequest.encode(99));
        let ctrl = net.add_node(ScriptedController {
            to_send: msgs,
            received: Vec::new(),
            target: None,
        });
        let mut sw = CotsSwitchNode::new("cots", 4, CotsConfig::default());
        sw.connect_controller(ctrl);
        let s = net.add_node(sw);
        net.run_until(SimTime::from_millis(100));
        // Not done yet at 100 ms.
        assert!(net.node_ref::<CotsSwitchNode>(s).install_backlog() > 0);
        assert!(!net
            .node_ref::<ScriptedController>(ctrl)
            .received
            .iter()
            .any(|m| matches!(m, Message::BarrierReply)));
        net.run_until(SimTime::from_millis(300));
        assert_eq!(net.node_ref::<CotsSwitchNode>(s).flow_mods_applied(), 50);
        assert!(net
            .node_ref::<ScriptedController>(ctrl)
            .received
            .iter()
            .any(|m| matches!(m, Message::BarrierReply)));
    }

    #[test]
    fn unsupported_features_bounce_with_bad_match() {
        let mut net = Network::new(5);
        let fm = FlowMod::add(0)
            .priority(1)
            .match_(Match::new().with(OxmField::EthDst(
                netpkt::MacAddr::host(1),
                Some(netpkt::MacAddr([0xff, 0xff, 0, 0, 0, 0])),
            )))
            .apply(vec![Action::output(2)]);
        let ctrl = net.add_node(ScriptedController {
            to_send: vec![Message::Hello.encode(1), Message::FlowMod(fm).encode(2)],
            received: Vec::new(),
            target: None,
        });
        let mut sw = CotsSwitchNode::new("cots", 4, CotsConfig::default());
        sw.connect_controller(ctrl);
        let s = net.add_node(sw);
        net.run_until(SimTime::from_millis(50));
        let ctrl_node = net.node_ref::<ScriptedController>(ctrl);
        assert!(ctrl_node
            .received
            .iter()
            .any(|m| matches!(m, Message::Error { ty: 4, .. })));
        assert_eq!(net.node_ref::<CotsSwitchNode>(s).flow_mods_applied(), 0);
    }
}
