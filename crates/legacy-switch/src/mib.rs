//! The legacy switch's MIB: a [`MibStore`] view over a live [`Bridge`].
//!
//! Reads serve MIB-II system/interfaces plus the Q-BRIDGE static VLAN
//! table; writes apply Q-BRIDGE sets directly to the bridge, which is
//! exactly the path the HARMLESS Manager's NAPALM dialects use.

use mgmt::oid::Oid;
use mgmt::pdu::{ErrorStatus, Value};
use mgmt::{mibs, MibStore};

use crate::bridge::Bridge;

/// Identity strings advertised by the agent.
#[derive(Debug, Clone)]
pub struct SysInfo {
    /// `sysDescr.0` — the NAPALM dialects sniff this.
    pub descr: String,
    /// `sysName.0`.
    pub name: String,
}

impl Default for SysInfo {
    fn default() -> Self {
        SysInfo {
            descr: "Acme EtherFabric 4100 generic-l2 Q-BRIDGE switch".into(),
            name: "legacy-sw".into(),
        }
    }
}

/// A mutable MIB view over a bridge. Construct one per request.
pub struct BridgeMib<'a> {
    /// The live bridge.
    pub bridge: &'a mut Bridge,
    /// Identity strings.
    pub sys: &'a SysInfo,
    /// Uptime in centiseconds.
    pub uptime_cs: u32,
}

impl BridgeMib<'_> {
    /// All instance OIDs this agent serves, in lexicographic order, with
    /// their current values. Small device ⇒ cheap to enumerate; keeps
    /// GetNext trivially correct.
    fn snapshot(&self) -> Vec<(Oid, Value)> {
        let b = &self.bridge;
        let n = b.n_ports();
        let mut out: Vec<(Oid, Value)> = vec![
            (
                mibs::sys_descr(),
                Value::OctetString(self.sys.descr.clone().into_bytes()),
            ),
            (mibs::sys_uptime(), Value::TimeTicks(self.uptime_cs)),
            (
                mibs::sys_name(),
                Value::OctetString(self.sys.name.clone().into_bytes()),
            ),
            (mibs::if_number(), Value::Integer(i64::from(n))),
        ];
        for p in 1..=n {
            let c = b.counters(p);
            out.push((
                mibs::if_descr(u32::from(p)),
                Value::OctetString(format!("port{p}").into_bytes()),
            ));
            out.push((mibs::if_oper_status(u32::from(p)), Value::Integer(1)));
            out.push((
                mibs::if_in_octets(u32::from(p)),
                Value::Counter32(c.rx_octets as u32),
            ));
            out.push((
                mibs::if_out_octets(u32::from(p)),
                Value::Counter32(c.tx_octets as u32),
            ));
        }
        for (&vid, entry) in b.vlans() {
            let egress: Vec<u16> = entry.egress.iter().copied().collect();
            let untagged: Vec<u16> = entry.untagged.iter().copied().collect();
            out.push((
                mibs::vlan_static_egress_ports(vid),
                Value::OctetString(mibs::encode_portlist(&egress, n)),
            ));
            out.push((
                mibs::vlan_static_untagged_ports(vid),
                Value::OctetString(mibs::encode_portlist(&untagged, n)),
            ));
            out.push((
                mibs::vlan_static_row_status(vid),
                Value::Integer(mibs::ROW_ACTIVE),
            ));
        }
        for p in 1..=n {
            out.push((
                mibs::pvid(u32::from(p)),
                Value::Gauge32(u32::from(b.pvid(p))),
            ));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn parse_vlan_column(oid: &Oid) -> Option<(u8, u16)> {
        // 1.3.6.1.2.1.17.7.1.4.3.1.<col>.<vid>
        let arcs = oid.arcs();
        let prefix = [1u32, 3, 6, 1, 2, 1, 17, 7, 1, 4, 3, 1];
        if arcs.len() == prefix.len() + 2 && arcs[..prefix.len()] == prefix {
            return Some((arcs[prefix.len()] as u8, arcs[prefix.len() + 1] as u16));
        }
        None
    }

    fn parse_pvid(oid: &Oid) -> Option<u16> {
        let arcs = oid.arcs();
        let prefix = [1u32, 3, 6, 1, 2, 1, 17, 7, 1, 4, 5, 1, 1];
        if arcs.len() == prefix.len() + 1 && arcs[..prefix.len()] == prefix {
            return Some(arcs[prefix.len()] as u16);
        }
        None
    }
}

impl MibStore for BridgeMib<'_> {
    fn get(&self, oid: &Oid) -> Option<Value> {
        self.snapshot()
            .into_iter()
            .find(|(o, _)| o == oid)
            .map(|(_, v)| v)
    }

    fn next(&self, oid: &Oid) -> Option<(Oid, Value)> {
        self.snapshot().into_iter().find(|(o, _)| o > oid)
    }

    fn set(&mut self, oid: &Oid, value: &Value) -> Result<(), ErrorStatus> {
        if let Some((col, vid)) = Self::parse_vlan_column(oid) {
            return match col {
                2 => {
                    // dot1qVlanStaticEgressPorts
                    let bytes = value.as_bytes().ok_or(ErrorStatus::WrongType)?;
                    let ports = mibs::decode_portlist(bytes);
                    self.bridge
                        .create_vlan(vid)
                        .map_err(|_| ErrorStatus::WrongValue)?;
                    self.bridge
                        .set_egress(vid, &ports)
                        .map_err(|_| ErrorStatus::WrongValue)
                }
                4 => {
                    // dot1qVlanStaticUntaggedPorts
                    let bytes = value.as_bytes().ok_or(ErrorStatus::WrongType)?;
                    let ports = mibs::decode_portlist(bytes);
                    self.bridge
                        .create_vlan(vid)
                        .map_err(|_| ErrorStatus::WrongValue)?;
                    self.bridge
                        .set_untagged(vid, &ports)
                        .map_err(|_| ErrorStatus::WrongValue)
                }
                5 => {
                    // dot1qVlanStaticRowStatus
                    match value.as_int() {
                        Some(mibs::ROW_CREATE_AND_GO) => self
                            .bridge
                            .create_vlan(vid)
                            .map_err(|_| ErrorStatus::WrongValue),
                        Some(mibs::ROW_DESTROY) => self
                            .bridge
                            .destroy_vlan(vid)
                            .map_err(|_| ErrorStatus::WrongValue),
                        Some(_) => Err(ErrorStatus::WrongValue),
                        None => Err(ErrorStatus::WrongType),
                    }
                }
                _ => Err(ErrorStatus::NotWritable),
            };
        }
        if let Some(port) = Self::parse_pvid(oid) {
            let vid = value.as_int().ok_or(ErrorStatus::WrongType)?;
            let vid = u16::try_from(vid).map_err(|_| ErrorStatus::WrongValue)?;
            return self
                .bridge
                .set_pvid(port, vid)
                .map_err(|_| ErrorStatus::WrongValue);
        }
        if *oid == mibs::sys_name() {
            return Err(ErrorStatus::NotWritable); // keep identity fixed
        }
        Err(ErrorStatus::NotWritable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgmt::pdu::{Pdu, PduType, SnmpMessage};
    use mgmt::store::agent_respond;

    fn with_mib<R>(bridge: &mut Bridge, f: impl FnOnce(&mut BridgeMib) -> R) -> R {
        let sys = SysInfo::default();
        let mut mib = BridgeMib {
            bridge,
            sys: &sys,
            uptime_cs: 100,
        };
        f(&mut mib)
    }

    #[test]
    fn reads_reflect_bridge_state() {
        let mut b = Bridge::new(4);
        b.make_access_port(1, 101).unwrap();
        with_mib(&mut b, |mib| {
            let v = mib.get(&mibs::pvid(1)).unwrap();
            assert_eq!(v, Value::Gauge32(101));
            let v = mib.get(&mibs::vlan_static_row_status(101)).unwrap();
            assert_eq!(v, Value::Integer(mibs::ROW_ACTIVE));
            let v = mib.get(&mibs::if_number()).unwrap();
            assert_eq!(v, Value::Integer(4));
            assert!(mib.get(&mibs::vlan_static_row_status(999)).is_none());
        });
    }

    #[test]
    fn qbridge_sets_reconfigure_the_bridge() {
        let mut b = Bridge::new(5);
        with_mib(&mut b, |mib| {
            // The QBridgeDialect plan for VLAN 101, egress {1,5}, untagged {1}.
            mib.set(
                &mibs::vlan_static_egress_ports(101),
                &Value::OctetString(mibs::encode_portlist(&[1, 5], 5)),
            )
            .unwrap();
            mib.set(
                &mibs::vlan_static_untagged_ports(101),
                &Value::OctetString(mibs::encode_portlist(&[1], 5)),
            )
            .unwrap();
            mib.set(
                &mibs::vlan_static_row_status(101),
                &Value::Integer(mibs::ROW_CREATE_AND_GO),
            )
            .unwrap();
            mib.set(&mibs::pvid(1), &Value::Gauge32(101)).unwrap();
        });
        assert_eq!(b.pvid(1), 101);
        let v = &b.vlans()[&101];
        assert_eq!(v.egress.iter().copied().collect::<Vec<_>>(), vec![1, 5]);
        assert_eq!(v.untagged.iter().copied().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn destroy_via_rowstatus() {
        let mut b = Bridge::new(4);
        b.make_access_port(2, 102).unwrap();
        with_mib(&mut b, |mib| {
            mib.set(
                &mibs::vlan_static_row_status(102),
                &Value::Integer(mibs::ROW_DESTROY),
            )
            .unwrap();
        });
        assert!(!b.vlans().contains_key(&102));
    }

    #[test]
    fn bad_writes_rejected() {
        let mut b = Bridge::new(4);
        with_mib(&mut b, |mib| {
            // PVID to a nonexistent VLAN.
            assert_eq!(
                mib.set(&mibs::pvid(1), &Value::Gauge32(999)),
                Err(ErrorStatus::WrongValue)
            );
            // Wrong type.
            assert_eq!(
                mib.set(&mibs::pvid(1), &Value::OctetString(vec![1])),
                Err(ErrorStatus::WrongType)
            );
            // Read-only scalar.
            assert_eq!(
                mib.set(&mibs::sys_descr(), &Value::OctetString(b"nope".to_vec())),
                Err(ErrorStatus::NotWritable)
            );
        });
    }

    #[test]
    fn full_walk_via_agent() {
        let mut b = Bridge::new(2);
        b.make_access_port(1, 101).unwrap();
        let sys = SysInfo::default();
        let mut mib = BridgeMib {
            bridge: &mut b,
            sys: &sys,
            uptime_cs: 1,
        };
        // GetNext from the root enumerates something and terminates.
        let mut cur: Oid = "1".parse().unwrap();
        let mut count = 0;
        loop {
            let req = SnmpMessage::new(
                "public",
                Pdu::request(PduType::GetNext, count, vec![(cur.clone(), Value::Null)]),
            );
            let resp = agent_respond(&mut mib, "public", &req).unwrap();
            let (oid, val) = resp.pdu.bindings[0].clone();
            if val == Value::EndOfMibView {
                break;
            }
            assert!(oid > cur, "GetNext must advance");
            cur = oid;
            count += 1;
            assert!(count < 200, "walk must terminate");
        }
        // 4 scalars + 2 ports × 4 if-columns + 2 VLANs × 3 columns
        // (default VLAN 1 + 101) + 2 PVIDs = 20
        assert_eq!(count, 20);
    }
}
