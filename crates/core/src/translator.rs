//! The OpenFlow Translator Component (SS_1 in the paper's Fig. 1).
//!
//! SS_1 is the adaptation layer that keeps controller programs portable:
//! it dispatches packets between the trunk (where access ports appear as
//! VLAN tags) and per-port patch links toward the main OpenFlow switch
//! SS_2, "based on the used VLAN ids". This module generates its flow
//! table.
//!
//! Port conventions on SS_1 (see [`crate::instance`]):
//! * port `1..=n_trunks` — trunk interconnect(s) to the legacy switch,
//! * port `PATCH_BASE + i` — patch link toward SS_2's port `i`.

use openflow::message::FlowMod;
use openflow::{Action, Match};

use crate::portmap::PortMap;

/// First patch port number on SS_1 (trunks occupy the low numbers).
pub const PATCH_BASE: u32 = 100;

/// SS_1 port number of the `i`-th patch link (towards SS_2 port `i`).
pub fn patch_port(access_port: u16) -> u32 {
    PATCH_BASE + u32::from(access_port)
}

/// Generate SS_1's complete flow table for `map`, with `n_trunks` trunk
/// links (trunk selection for upstream traffic is `vlan % n_trunks` to
/// spread load).
///
/// Two rule families, exactly the "Flow table of SS_1" in Fig. 1:
/// * downstream (`trunk → patch`): match the access VLAN, pop the tag,
///   output to the patch port;
/// * upstream (`patch → trunk`): push a fresh tag, set the access VLAN,
///   output to the trunk.
pub fn translator_rules(map: &PortMap, n_trunks: u16) -> Vec<FlowMod> {
    assert!(n_trunks >= 1, "need at least one trunk");
    let mut rules = Vec::with_capacity(2 * usize::from(map.n_ports()));
    for (port, vlan) in map.iter() {
        let trunk = 1 + (u32::from(vlan) % u32::from(n_trunks));
        // Downstream: tagged frames from any trunk to the patch port.
        for t in 1..=n_trunks {
            rules.push(
                FlowMod::add(0)
                    .priority(100)
                    .match_(Match::new().in_port(u32::from(t)).vlan(vlan))
                    .apply(vec![Action::PopVlan, Action::output(patch_port(port))])
                    .cookie(u64::from(vlan)),
            );
        }
        // Upstream: untagged frames from the patch port, tag + trunk.
        rules.push(
            FlowMod::add(0)
                .priority(100)
                .match_(Match::new().in_port(patch_port(port)))
                .apply(vec![
                    Action::PushVlan(0x8100),
                    Action::set_vlan_vid(vlan),
                    Action::output(trunk),
                ])
                .cookie(u64::from(vlan)),
        );
    }
    rules
}

/// Rule count SS_1 needs for `n_ports` access ports over `n_trunks`
/// trunks (capacity planning).
pub fn rule_count(n_ports: u16, n_trunks: u16) -> usize {
    usize::from(n_ports) * (usize::from(n_trunks) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netpkt::vlan::{push_vlan, VlanTag};
    use netpkt::{builder, FlowKey, MacAddr};
    use softswitch::datapath::{Datapath, DpConfig};
    use std::net::Ipv4Addr;

    fn frame() -> Bytes {
        builder::udp_packet(
            MacAddr::host(1),
            MacAddr::host(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1111,
            53,
            b"q",
        )
    }

    fn ss1_for(n_ports: u16) -> Datapath {
        let map = PortMap::with_defaults(n_ports).unwrap();
        let mut dp = Datapath::new(DpConfig::software(0x51));
        dp.add_port(1, "trunk0", 10_000_000);
        for p in 1..=n_ports {
            dp.add_port(patch_port(p), format!("patch{p}"), 10_000_000);
        }
        for fm in translator_rules(&map, 1) {
            dp.apply_flow_mod(&fm, 0).unwrap();
        }
        dp
    }

    #[test]
    fn rule_count_matches() {
        let map = PortMap::with_defaults(48).unwrap();
        assert_eq!(translator_rules(&map, 1).len(), rule_count(48, 1));
        assert_eq!(translator_rules(&map, 2).len(), rule_count(48, 2));
        assert_eq!(rule_count(48, 1), 96);
    }

    #[test]
    fn downstream_pops_and_dispatches() {
        let mut dp = ss1_for(4);
        // VLAN 103 (access port 3) arrives on the trunk.
        let tagged = push_vlan(&frame(), VlanTag::new(103)).unwrap();
        let r = dp.process(1, tagged, 0);
        assert_eq!(r.outputs.len(), 1);
        assert_eq!(r.outputs[0].0, patch_port(3));
        let key = FlowKey::extract(0, &r.outputs[0].1).unwrap();
        assert_eq!(key.vlan_vid, 0, "tag must be removed toward SS_2");
        assert_eq!(key.udp_dst, 53);
    }

    #[test]
    fn upstream_tags_and_trunks() {
        let mut dp = ss1_for(4);
        // SS_2 hairpins a packet out its port 2 -> SS_1 patch port 102.
        let r = dp.process(patch_port(2), frame(), 0);
        assert_eq!(r.outputs.len(), 1);
        assert_eq!(r.outputs[0].0, 1, "must leave via the trunk");
        let key = FlowKey::extract(0, &r.outputs[0].1).unwrap();
        assert_eq!(key.vlan(), netpkt::flowkey::VlanKey::Tagged(102));
    }

    #[test]
    fn round_trip_is_identity_on_the_frame() {
        let mut dp = ss1_for(4);
        let orig = frame();
        let tagged = push_vlan(&orig, VlanTag::new(101)).unwrap();
        let down = dp.process(1, tagged, 0);
        let at_patch = down.outputs[0].1.clone();
        assert_eq!(&at_patch[..], &orig[..], "SS_2 must see the original frame");
        // Hairpin back through the same port pair.
        let up = dp.process(patch_port(1), at_patch, 1);
        let back_on_trunk = &up.outputs[0].1;
        let key = FlowKey::extract(0, back_on_trunk).unwrap();
        assert_eq!(key.vlan(), netpkt::flowkey::VlanKey::Tagged(101));
    }

    #[test]
    fn unknown_vlan_is_dropped() {
        let mut dp = ss1_for(4);
        let tagged = push_vlan(&frame(), VlanTag::new(999)).unwrap();
        let r = dp.process(1, tagged, 0);
        assert!(r.dropped, "VLANs outside the map must not leak");
    }

    #[test]
    fn untagged_trunk_traffic_is_dropped() {
        let mut dp = ss1_for(4);
        let r = dp.process(1, frame(), 0);
        assert!(r.dropped, "the trunk only carries tagged traffic");
    }

    #[test]
    fn multi_trunk_spreads_upstream_load() {
        let map = PortMap::with_defaults(8).unwrap();
        let rules = translator_rules(&map, 2);
        assert_eq!(rules.len(), rule_count(8, 2));
        let mut dp = Datapath::new(DpConfig::software(0x51));
        dp.add_port(1, "trunk0", 10_000_000);
        dp.add_port(2, "trunk1", 10_000_000);
        for p in 1..=8 {
            dp.add_port(patch_port(p), format!("patch{p}"), 10_000_000);
        }
        for fm in &rules {
            dp.apply_flow_mod(fm, 0).unwrap();
        }
        let mut trunks_used = std::collections::HashSet::new();
        for p in 1..=8u16 {
            let r = dp.process(patch_port(p), frame(), 0);
            trunks_used.insert(r.outputs[0].0);
        }
        assert_eq!(
            trunks_used.len(),
            2,
            "both trunks must carry upstream traffic"
        );
        // Downstream works from either trunk.
        let tagged = push_vlan(&frame(), VlanTag::new(105)).unwrap();
        for trunk in [1u32, 2] {
            let r = dp.process(trunk, tagged.clone(), 0);
            assert_eq!(r.outputs[0].0, patch_port(5));
        }
    }
}
