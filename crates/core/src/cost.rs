//! The CAPEX model behind "cost-effective transitioning" — reproduces the
//! paper's economic claims: COTS SDN switches carry a hefty price tag and
//! must replace working gear; pure software switching cannot match port
//! density ("in a lower league"); HARMLESS reuses the legacy switch and
//! adds one commodity server per switch.
//!
//! Prices are street prices of the 2017 era, the paper's time frame;
//! every figure is a parameter so the sensitivity is easy to explore.

/// Price assumptions (USD).
#[derive(Debug, Clone, PartialEq)]
pub struct PriceCatalog {
    /// A 48-port GbE managed legacy switch, new. Sunk cost for migration
    /// scenarios — HARMLESS reuses the one already racked.
    pub legacy_switch_48p: f64,
    /// A commodity 48-port OpenFlow-capable switch (Pica8/Edge-core
    /// class, 2017).
    pub cots_sdn_48p: f64,
    /// A commodity 2-socket server.
    pub server: f64,
    /// A dual-port 10 GbE NIC (DPDK-capable).
    pub nic_dual_10g: f64,
    /// Max usable NIC ports per server chassis (PCIe/physical limit) when
    /// building a pure software switch.
    pub max_nic_ports_per_server: u16,
    /// Access ports one HARMLESS server instance can front (trunk fan-in;
    /// 48 matches one legacy switch per server over 1-2 trunks).
    pub access_ports_per_server: u16,
}

impl Default for PriceCatalog {
    fn default() -> Self {
        PriceCatalog {
            legacy_switch_48p: 900.0,
            cots_sdn_48p: 9_500.0,
            server: 2_200.0,
            nic_dual_10g: 350.0,
            max_nic_ports_per_server: 8,
            access_ports_per_server: 48,
        }
    }
}

/// A CAPEX breakdown for provisioning `ports` OpenFlow-enabled ports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Ports provisioned.
    pub ports: u16,
    /// New hardware spend (USD).
    pub capex: f64,
    /// Sunk value reused (legacy switches kept in service).
    pub reused: f64,
    /// Devices bought, for the narrative.
    pub new_devices: u32,
}

impl CostBreakdown {
    /// New spend per OpenFlow-enabled port.
    pub fn per_port(&self) -> f64 {
        if self.ports == 0 {
            0.0
        } else {
            self.capex / f64::from(self.ports)
        }
    }
}

fn switches_needed(ports: u16, per_switch: u16) -> u32 {
    u32::from(ports.div_ceil(per_switch.max(1)))
}

/// HARMLESS: keep the legacy switches, add one server + NIC per switch.
pub fn harmless_capex(ports: u16, c: &PriceCatalog) -> CostBreakdown {
    let n = switches_needed(ports, c.access_ports_per_server);
    CostBreakdown {
        ports,
        capex: f64::from(n) * (c.server + c.nic_dual_10g),
        reused: f64::from(switches_needed(ports, 48)) * c.legacy_switch_48p,
        new_devices: n,
    }
}

/// Greenfield HARMLESS: buy the (cheap) legacy switches too — the "smaller
/// enterprises gaining a foothold" case.
pub fn harmless_greenfield_capex(ports: u16, c: &PriceCatalog) -> CostBreakdown {
    let base = harmless_capex(ports, c);
    let switches = switches_needed(ports, 48);
    CostBreakdown {
        ports,
        capex: base.capex + f64::from(switches) * c.legacy_switch_48p,
        reused: 0.0,
        new_devices: base.new_devices + switches,
    }
}

/// Rip-and-replace with COTS SDN switches ("flag-day" migration).
pub fn cots_capex(ports: u16, c: &PriceCatalog) -> CostBreakdown {
    let n = switches_needed(ports, 48);
    CostBreakdown {
        ports,
        capex: f64::from(n) * c.cots_sdn_48p,
        reused: 0.0,
        new_devices: n,
    }
}

/// Pure software switching: servers bristling with NICs. Port density is
/// the limit — each server provides only `max_nic_ports_per_server`.
pub fn software_only_capex(ports: u16, c: &PriceCatalog) -> CostBreakdown {
    let n = switches_needed(ports, c.max_nic_ports_per_server);
    let nics_per_server = f64::from(c.max_nic_ports_per_server.div_ceil(2));
    CostBreakdown {
        ports,
        capex: f64::from(n) * (c.server + nics_per_server * c.nic_dual_10g),
        reused: 0.0,
        new_devices: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmless_beats_cots_on_migration() {
        let c = PriceCatalog::default();
        for ports in [8u16, 48, 96, 384] {
            let h = harmless_capex(ports, &c);
            let cots = cots_capex(ports, &c);
            assert!(
                h.capex < cots.capex / 2.0,
                "{ports} ports: harmless {} vs cots {}",
                h.capex,
                cots.capex
            );
        }
    }

    #[test]
    fn software_only_loses_on_port_density() {
        let c = PriceCatalog::default();
        let sw = software_only_capex(48, &c);
        let h = harmless_capex(48, &c);
        // 48 ports need 6 servers as a pure software switch vs 1 for
        // HARMLESS.
        assert_eq!(sw.new_devices, 6);
        assert_eq!(h.new_devices, 1);
        assert!(sw.capex > 3.0 * h.capex);
    }

    #[test]
    fn per_port_costs_are_sane() {
        let c = PriceCatalog::default();
        let h = harmless_capex(48, &c);
        assert!((h.per_port() - (2_200.0 + 350.0) / 48.0).abs() < 1e-9);
        assert_eq!(harmless_capex(0, &c).per_port(), 0.0);
    }

    #[test]
    fn greenfield_still_cheaper_than_cots() {
        let c = PriceCatalog::default();
        let g = harmless_greenfield_capex(48, &c);
        let cots = cots_capex(48, &c);
        assert!(g.capex < cots.capex);
        assert_eq!(g.new_devices, 2); // one switch + one server
        assert_eq!(g.reused, 0.0);
    }

    #[test]
    fn device_counts_round_up() {
        let c = PriceCatalog::default();
        assert_eq!(harmless_capex(49, &c).new_devices, 2);
        assert_eq!(cots_capex(49, &c).new_devices, 2);
        assert_eq!(software_only_capex(9, &c).new_devices, 2);
    }
}
