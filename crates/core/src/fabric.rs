//! Declarative multi-pod fabric construction — HARMLESS at *network*
//! scale.
//!
//! The paper retrofits one legacy switch at a time; the interesting
//! hybrid-SDN questions (partial deployment, per-pod migration waves,
//! traffic crossing the SDN/legacy boundary) only appear when many such
//! retrofits compose into one network. A [`FabricSpec`] describes that
//! network declaratively:
//!
//! * **N pods**, each the classic HARMLESS unit built by
//!   [`HarmlessSpec`] — a legacy access switch, the translator SS_1 and
//!   the main OpenFlow switch SS_2;
//! * an **interconnect** joining the pods' SS_2 uplink ports: a
//!   [`Interconnect::Line`] chain, a software-switch spine
//!   ([`Interconnect::SpineSoft`]), or a plain legacy/COTS Ethernet
//!   spine ([`Interconnect::SpineLegacy`]);
//! * **hosts** attached per `(pod, access port)` with globally unique
//!   MAC/IP identities ([`Fabric::attach_host`]);
//! * **one controller** for the whole fabric
//!   ([`Fabric::connect_controller`]) — every SS_2 (and a soft spine) is
//!   a separate datapath of the same controller node, so dpid-keyed apps
//!   such as the learning switch converge across pods;
//! * **migration waves** ([`Fabric::run_migration_wave`]): one
//!   [`HarmlessManager`] per pod drives the SNMP/OpenFlow migration of a
//!   subset of pods while the rest stay legacy.
//!
//! The single-pod path is [`FabricSpec::single`], which builds exactly
//! the topology `HarmlessSpec::build` always built — the fabric layer is
//! a superset, not a replacement, of the paper's Fig. 1.
//!
//! Pods are also the natural *shard boundary* for scaling the simulator:
//! all high-rate traffic inside a pod stays inside its three nodes, and
//! only inter-pod frames cross an uplink, so a sharded event loop can
//! run one pod per core and synchronise on uplink delays (see
//! ROADMAP.md).
//!
//! ```
//! use harmless::fabric::{FabricSpec, Interconnect};
//! use harmless::instance::HarmlessSpec;
//! use netsim::host::Host;
//! use netsim::{Network, SimTime};
//!
//! let mut net = Network::new(7);
//! let ctrl = net.add_node(controller::ControllerNode::new(
//!     "ctrl",
//!     vec![Box::new(controller::apps::LearningSwitch::new())],
//! ));
//! // Two 2-port pods joined by a legacy spine.
//! let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
//!     .with_interconnect(Interconnect::SpineLegacy)
//!     .build(&mut net)
//!     .unwrap();
//! fx.configure_direct(&mut net);
//! fx.connect_controller(&mut net, ctrl);
//! let a = fx.attach_host(&mut net, 0, 1).unwrap();
//! let b = fx.attach_host(&mut net, 1, 1).unwrap();
//! net.run_until(SimTime::from_millis(100));
//! let b_ip = fx.host_ip(1, 1);
//! net.with_node_ctx::<Host, _>(a, |h, ctx| {
//!     h.ping(b"cross-pod", b_ip);
//!     h.flush(ctx);
//! });
//! net.run_until(SimTime::from_millis(500));
//! assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
//! # let _ = b;
//! ```

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use controller::apps::{ArpProxy, HostRoute};
use controller::ControllerNode;
use legacy_switch::LegacySwitchNode;
use netsim::host::Host;
use netsim::{LinkSpec, Network, NodeId, PortId, ShardMap};
use softswitch::SoftSwitchNode;

use crate::instance::{HarmlessInstance, HarmlessSpec, Variant};
use crate::manager::{HarmlessManager, ManagerConfig, ManagerPhase};
use crate::portmap::{PortMap, PortMapError};

/// Default datapath id of a software spine switch.
pub const SPINE_DPID: u64 = 0x5F;
/// Base datapath id of per-pod translator switches (`0x5100 + pod`).
pub const POD_SS1_DPID_BASE: u64 = 0x5100;
/// Base datapath id of per-pod main switches (`0x5200 + pod`).
pub const POD_SS2_DPID_BASE: u64 = 0x5200;
/// Pod count ceiling — the host addressing scheme spends one IPv4 octet
/// on the pod index and reserves `10.200.0.0/13` for service addresses
/// (VIPs and the like).
pub const MAX_PODS: u16 = 200;

/// How the pods' SS_2 uplinks are joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interconnect {
    /// No interconnect: a standalone pod (single-pod fabrics only).
    None,
    /// A chain: pod `i` ↔ pod `i+1`. Two uplink ports per pod; frames
    /// between distant pods transit the SS_2 of every pod in between.
    Line,
    /// Leaf–spine over a dedicated spine `SoftSwitchNode` — the spine is
    /// one more datapath of the fabric's controller (connect it with
    /// [`Fabric::connect_controller`] or [`Fabric::connect_spine`]).
    SpineSoft,
    /// Leaf–spine over a plain legacy/COTS Ethernet switch in factory
    /// configuration — a flat learning bridge, no controller needed.
    /// This is the cheapest interconnect the cost model allows.
    SpineLegacy,
}

/// Errors validating or using a [`FabricSpec`] / [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// A fabric needs at least one pod.
    NoPods,
    /// More pods than the addressing scheme supports.
    TooManyPods {
        /// The [`MAX_PODS`] ceiling.
        max: u16,
        /// What the spec asked for.
        got: u16,
    },
    /// A multi-pod fabric needs an interconnect other than
    /// [`Interconnect::None`].
    MissingInterconnect,
    /// The merged single-datapath variant has no clean uplink port space
    /// and cannot be manager-migrated; fabrics of more than one pod
    /// require [`Variant::TwoSwitch`] pods.
    MergedVariant,
    /// The pod spec pins an uplink count that disagrees with what the
    /// chosen interconnect wires (leave `HarmlessSpec::uplinks` at 0 to
    /// let the fabric pick).
    UplinkMismatch {
        /// Uplinks the interconnect needs per pod.
        expected: u16,
        /// Uplinks the pod spec pinned.
        got: u16,
    },
    /// Pod index out of range.
    NoSuchPod {
        /// The requested pod.
        pod: usize,
        /// How many pods the fabric has.
        n_pods: usize,
    },
    /// The port is not a managed access port of that pod.
    NotAnAccessPort {
        /// Pod index.
        pod: usize,
        /// Offending port.
        port: u16,
    },
    /// Something is already attached to that `(pod, port)`.
    DuplicateHostPort {
        /// Pod index.
        pod: usize,
        /// Offending port.
        port: u16,
    },
    /// Detach/migrate of a `(pod, port)` with no host attached.
    NothingAttached {
        /// Pod index.
        pod: usize,
        /// Offending port.
        port: u16,
    },
    /// The per-pod port map does not fit the VLAN budget.
    PortMap(PortMapError),
}

impl core::fmt::Display for FabricError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FabricError::NoPods => write!(f, "a fabric needs at least one pod"),
            FabricError::TooManyPods { max, got } => {
                write!(f, "at most {max} pods are addressable, spec has {got}")
            }
            FabricError::MissingInterconnect => {
                write!(f, "a multi-pod fabric needs an interconnect")
            }
            FabricError::MergedVariant => {
                write!(f, "merged-variant pods cannot join a fabric interconnect")
            }
            FabricError::UplinkMismatch { expected, got } => {
                write!(
                    f,
                    "interconnect needs {expected} uplink(s) per pod, pod spec pins {got}"
                )
            }
            FabricError::NoSuchPod { pod, n_pods } => {
                write!(f, "pod {pod} out of range (fabric has {n_pods})")
            }
            FabricError::NotAnAccessPort { pod, port } => {
                write!(f, "port {port} is not an access port of pod {pod}")
            }
            FabricError::DuplicateHostPort { pod, port } => {
                write!(f, "pod {pod} port {port} already has a host attached")
            }
            FabricError::NothingAttached { pod, port } => {
                write!(f, "pod {pod} port {port} has no host attached")
            }
            FabricError::PortMap(e) => write!(f, "pod port map invalid: {e}"),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<PortMapError> for FabricError {
    fn from(e: PortMapError) -> Self {
        FabricError::PortMap(e)
    }
}

/// A declarative description of a multi-pod HARMLESS fabric.
#[derive(Debug, Clone)]
pub struct FabricSpec {
    /// Number of pods.
    pub n_pods: u16,
    /// Template for every pod (name prefixes and datapath ids are
    /// assigned per pod by the builder).
    pub pod: HarmlessSpec,
    /// How the pods are joined.
    pub interconnect: Interconnect,
    /// Link model of the inter-pod uplinks.
    pub uplink_link: LinkSpec,
    /// Datapath id of a [`Interconnect::SpineSoft`] spine.
    pub spine_dpid: u64,
    /// Contain round-1 ARP floods with a controller-side proxy: when
    /// set, the fabric registers every attached host's identity and
    /// location ([`Fabric::host_route`]) with the controller's
    /// [`ArpProxy`] app, which answers who-has punts at the pod edge and
    /// installs proactive `eth_dst` routes — O(hosts) round-1 packet-ins
    /// instead of O(hosts²). The controller passed to
    /// [`Fabric::connect_controller`] must then run an [`ArpProxy`] app
    /// (chained before any learning app).
    pub arp_proxy: bool,
}

impl FabricSpec {
    /// A fabric of `n_pods` copies of `pod`, joined by a legacy spine
    /// (override with [`Self::with_interconnect`]).
    pub fn new(n_pods: u16, pod: HarmlessSpec) -> FabricSpec {
        FabricSpec {
            n_pods,
            pod,
            interconnect: if n_pods <= 1 {
                Interconnect::None
            } else {
                Interconnect::SpineLegacy
            },
            uplink_link: LinkSpec::ten_gigabit(),
            spine_dpid: SPINE_DPID,
            arp_proxy: false,
        }
    }

    /// The single-pod fabric: exactly the paper's Fig. 1, with the same
    /// node names, datapath ids and host addressing the standalone
    /// [`HarmlessSpec::build`] produces.
    pub fn single(pod: HarmlessSpec) -> FabricSpec {
        FabricSpec::new(1, pod)
    }

    /// Builder-style interconnect selection.
    pub fn with_interconnect(mut self, i: Interconnect) -> Self {
        self.interconnect = i;
        self
    }

    /// Builder-style uplink link model.
    pub fn with_uplink_link(mut self, l: LinkSpec) -> Self {
        self.uplink_link = l;
        self
    }

    /// Builder-style spine datapath id.
    pub fn with_spine_dpid(mut self, dpid: u64) -> Self {
        self.spine_dpid = dpid;
        self
    }

    /// Builder-style ARP-proxy flood containment (see
    /// [`FabricSpec::arp_proxy`]).
    pub fn with_arp_proxy(mut self, on: bool) -> Self {
        self.arp_proxy = on;
        self
    }

    /// Uplink ports per pod the chosen interconnect wires.
    fn required_uplinks(&self) -> u16 {
        match self.interconnect {
            Interconnect::None => 0,
            Interconnect::Line => {
                if self.n_pods > 1 {
                    2
                } else {
                    0
                }
            }
            Interconnect::SpineSoft | Interconnect::SpineLegacy => 1,
        }
    }

    /// Check the spec without building anything.
    pub fn validate(&self) -> Result<(), FabricError> {
        if self.n_pods == 0 {
            return Err(FabricError::NoPods);
        }
        if self.n_pods > MAX_PODS {
            return Err(FabricError::TooManyPods {
                max: MAX_PODS,
                got: self.n_pods,
            });
        }
        if self.n_pods > 1 && self.interconnect == Interconnect::None {
            return Err(FabricError::MissingInterconnect);
        }
        if self.n_pods > 1 && self.pod.variant == Variant::Merged {
            return Err(FabricError::MergedVariant);
        }
        let required = self.required_uplinks();
        if self.pod.uplinks != 0 && self.pod.uplinks != required {
            return Err(FabricError::UplinkMismatch {
                expected: required,
                got: self.pod.uplinks,
            });
        }
        PortMap::new(self.pod.vlan_base, self.pod.n_access_ports)?;
        Ok(())
    }

    /// Instantiate the fabric in `net`: build every pod, add the uplink
    /// ports, and wire the interconnect. Hosts, direct configuration,
    /// controller connections and migration waves are driven off the
    /// returned [`Fabric`].
    pub fn build(self, net: &mut Network) -> Result<Fabric, FabricError> {
        self.validate()?;
        let uplinks = if self.pod.uplinks != 0 {
            self.pod.uplinks
        } else {
            self.required_uplinks()
        };
        let multi = self.n_pods > 1;
        let mut pods = Vec::with_capacity(usize::from(self.n_pods));
        for p in 0..self.n_pods {
            let mut spec = self.pod.clone().with_uplinks(uplinks);
            if multi {
                // Per-pod identities; the single-pod fabric keeps the
                // classic names/dpids so it is a drop-in for the
                // standalone instance.
                spec = spec
                    .with_name_prefix(format!("{}pod{p}/", self.pod.name_prefix))
                    .with_dpids(
                        POD_SS1_DPID_BASE + u64::from(p),
                        POD_SS2_DPID_BASE + u64::from(p),
                    );
            }
            pods.push(spec.build(net));
        }
        let n = self.pod.n_access_ports;
        let spine = match self.interconnect {
            Interconnect::None => None,
            Interconnect::Line => {
                for p in 0..usize::from(self.n_pods) - 1 {
                    // Right uplink (n+1) of pod p to left uplink (n+2)
                    // of pod p+1.
                    net.connect(
                        pods[p].ss2,
                        PortId(n + 1),
                        pods[p + 1].ss2,
                        PortId(n + 2),
                        self.uplink_link,
                    );
                }
                None
            }
            Interconnect::SpineSoft => {
                let mut spine = self
                    .pod
                    .clone()
                    .with_name_prefix(String::new())
                    .soft_switch_node("spine", self.spine_dpid);
                for p in 1..=self.n_pods {
                    spine.add_port(u32::from(p), format!("pod{}", p - 1), 10_000_000);
                }
                let spine = net.add_node(spine);
                for (p, pod) in pods.iter().enumerate() {
                    net.connect(
                        spine,
                        PortId(p as u16 + 1),
                        pod.ss2,
                        PortId(n + 1),
                        self.uplink_link,
                    );
                }
                Some(Spine::Soft(spine))
            }
            Interconnect::SpineLegacy => {
                let spine = net.add_node(LegacySwitchNode::new("spine", self.n_pods));
                for (p, pod) in pods.iter().enumerate() {
                    net.connect(
                        spine,
                        PortId(p as u16 + 1),
                        pod.ss2,
                        PortId(n + 1),
                        self.uplink_link,
                    );
                }
                Some(Spine::Legacy(spine))
            }
        };
        Ok(Fabric {
            spec: self,
            pods,
            spine,
            attached: BTreeMap::new(),
            host_ports: std::collections::BTreeSet::new(),
            controller: None,
        })
    }
}

/// The fabric's interconnect switch, when it has one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spine {
    /// A software-switch spine (one more datapath of the controller).
    Soft(NodeId),
    /// A legacy Ethernet spine (self-learning, controller-free).
    Legacy(NodeId),
}

impl Spine {
    /// The spine's simulator node.
    pub fn node(&self) -> NodeId {
        match self {
            Spine::Soft(n) | Spine::Legacy(n) => *n,
        }
    }
}

/// Per-datapath `(dpid, port)` pairs — the location half of a
/// [`HostRoute`] (output ports, or reflection-guard ports).
type DpidPorts = Vec<(u64, u32)>;

/// A built multi-pod HARMLESS fabric.
pub struct Fabric {
    /// The spec it was built from.
    pub spec: FabricSpec,
    pods: Vec<HarmlessInstance>,
    spine: Option<Spine>,
    attached: BTreeMap<(usize, u16), NodeId>,
    /// The subset of `attached` created by [`Fabric::attach_host`] —
    /// stations that actually carry the fabric-wide `(IP, MAC)` identity
    /// and therefore belong in the ARP-proxy host table (arbitrary
    /// [`Fabric::attach_node`] devices do not).
    host_ports: std::collections::BTreeSet<(usize, u16)>,
    /// Set by [`Fabric::connect_controller`]; where ARP-proxy host
    /// routes are synced when [`FabricSpec::arp_proxy`] is on.
    controller: Option<NodeId>,
}

impl Fabric {
    /// Number of pods.
    pub fn n_pods(&self) -> usize {
        self.pods.len()
    }

    /// Handle of pod `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range; use [`Self::try_pod`] to probe.
    pub fn pod(&self, i: usize) -> &HarmlessInstance {
        &self.pods[i]
    }

    /// Handle of pod `i`, if it exists.
    pub fn try_pod(&self, i: usize) -> Option<&HarmlessInstance> {
        self.pods.get(i)
    }

    /// Iterate over all pods.
    pub fn pods(&self) -> impl Iterator<Item = &HarmlessInstance> {
        self.pods.iter()
    }

    /// The interconnect switch, if the fabric has one.
    pub fn spine(&self) -> Option<Spine> {
        self.spine
    }

    fn check_pod(&self, pod: usize) -> Result<&HarmlessInstance, FabricError> {
        self.pods.get(pod).ok_or(FabricError::NoSuchPod {
            pod,
            n_pods: self.pods.len(),
        })
    }

    fn check_access(&self, pod: usize, port: u16) -> Result<(), FabricError> {
        let px = self.check_pod(pod)?;
        if !(1..=px.spec.n_access_ports).contains(&port) {
            return Err(FabricError::NotAnAccessPort { pod, port });
        }
        Ok(())
    }

    /// Fabric-wide IPv4 address of the host on `(pod, port)`:
    /// `10.<pod>.<(port-1)/250>.<1+(port-1)%250>`. Pod 0 matches the
    /// classic single-instance `10.0.0.<port>` scheme for the first 250
    /// ports.
    ///
    /// # Panics
    /// Panics on a pod index or access port this fabric does not have —
    /// silently aliasing a neighbouring host's address would be worse.
    pub fn host_ip(&self, pod: usize, port: u16) -> Ipv4Addr {
        self.check_access(pod, port)
            .expect("host_ip of an existing (pod, access port)");
        let i = u32::from(port) - 1;
        Ipv4Addr::new(10, pod as u8, (i / 250) as u8, (1 + i % 250) as u8)
    }

    /// Fabric-wide MAC address of the host on `(pod, port)` — the pod
    /// index in the third-lowest octet keeps MACs unique across pods
    /// while pod 0 matches the classic `MacAddr::host(port)` scheme.
    ///
    /// # Panics
    /// Panics on a pod index or access port this fabric does not have.
    pub fn host_mac(&self, pod: usize, port: u16) -> netpkt::MacAddr {
        self.check_access(pod, port)
            .expect("host_mac of an existing (pod, access port)");
        netpkt::MacAddr::host((pod as u32) << 16 | u32::from(port))
    }

    /// Attach a host to access port `port` of pod `pod`, with the
    /// fabric-wide identity of [`Self::host_ip`] / [`Self::host_mac`].
    /// Duplicate `(pod, port)` attachments are rejected — each access
    /// port carries exactly one station. With [`FabricSpec::arp_proxy`]
    /// set and a controller connected, the host's identity and route are
    /// registered with the controller's [`ArpProxy`] app.
    pub fn attach_host(
        &mut self,
        net: &mut Network,
        pod: usize,
        port: u16,
    ) -> Result<NodeId, FabricError> {
        self.check_access(pod, port)?;
        if self.attached.contains_key(&(pod, port)) {
            return Err(FabricError::DuplicateHostPort { pod, port });
        }
        let px = &self.pods[pod];
        let h = net.add_node(Host::new(
            format!("{}h{port}", px.spec.name_prefix),
            self.host_mac(pod, port),
            self.host_ip(pod, port),
        ));
        self.attached.insert((pod, port), h);
        self.host_ports.insert((pod, port));
        self.pods[pod].attach_node(net, port, h);
        if self.spec.arp_proxy && self.controller.is_some() {
            let route = self.host_route(pod, port);
            self.push_route(net, route);
        }
        Ok(h)
    }

    /// The fabric-wide [`HostRoute`] of the host on `(pod, port)`: its
    /// [`Self::host_ip`] / [`Self::host_mac`] identity plus, for every
    /// datapath the controller serves, the port that leads toward it —
    /// the pod's own access port at its home SS_2, the uplink
    /// (direction-aware for [`Interconnect::Line`]) everywhere else, and
    /// the pod-facing spine port on a [`Interconnect::SpineSoft`] spine.
    /// [`Interconnect::SpineLegacy`] routes additionally carry
    /// reflection guards: the legacy spine floods unknown destinations,
    /// and a flood copy arriving at a pod that does not host the MAC
    /// must be dropped, not bounced back out of the uplink it came in
    /// on.
    ///
    /// # Panics
    /// Panics on a pod index or access port this fabric does not have.
    pub fn host_route(&self, pod: usize, port: u16) -> HostRoute {
        self.check_access(pod, port)
            .expect("host_route of an existing (pod, access port)");
        let (ports, guards) = self.route_location(pod, port);
        HostRoute {
            ip: self.host_ip(pod, port),
            mac: self.host_mac(pod, port),
            ports,
            guards,
        }
    }

    /// The location half of a [`HostRoute`] for a station attached at
    /// `(pod, port)`: per-dpid output ports and reflection guards.
    /// Identity (IP/MAC) is the caller's business — a migrated host
    /// keeps the identity of its original attach point while its
    /// location follows it around the fabric.
    fn route_location(&self, pod: usize, port: u16) -> (DpidPorts, DpidPorts) {
        let n = self.spec.pod.n_access_ports;
        let uplink_right = u32::from(n + 1);
        let uplink_left = u32::from(n + 2);
        let mut ports = Vec::with_capacity(self.pods.len() + 1);
        let mut guards = Vec::new();
        for (p, px) in self.pods.iter().enumerate() {
            let dpid = px.spec.ss2_dpid;
            if p == pod {
                ports.push((dpid, u32::from(port)));
                continue;
            }
            match self.spec.interconnect {
                Interconnect::None => {} // single-pod fabrics never get here
                Interconnect::Line => {
                    // Toward higher pods out of the right uplink, lower
                    // pods out of the left; transit frames enter on one
                    // and leave on the other, so no reflection guard is
                    // needed.
                    let out = if pod > p { uplink_right } else { uplink_left };
                    ports.push((dpid, out));
                }
                Interconnect::SpineSoft => ports.push((dpid, uplink_right)),
                Interconnect::SpineLegacy => {
                    ports.push((dpid, uplink_right));
                    guards.push((dpid, uplink_right));
                }
            }
        }
        if let Some(Spine::Soft(_)) = self.spine {
            ports.push((self.spec.spine_dpid, pod as u32 + 1));
        }
        (ports, guards)
    }

    /// Register one route with the connected controller's [`ArpProxy`].
    ///
    /// # Panics
    /// Panics if the controller node runs no [`ArpProxy`] app — the
    /// spec explicitly asked for proxying, so silently skipping it would
    /// quietly restore the O(hosts²) flood.
    fn push_route(&self, net: &mut Network, route: HostRoute) {
        let ctrl = self.controller.expect("push_route with a controller");
        net.node_mut::<ControllerNode>(ctrl)
            .app_mut::<ArpProxy>()
            .expect(
                "FabricSpec::arp_proxy is set, but the fabric controller \
                 has no ArpProxy app (chain one before the learning app)",
            )
            .add_host(route);
    }

    /// Flush pending [`ArpProxy`] retractions/installs to every ready
    /// datapath immediately, instead of waiting for the next controller
    /// tick. Safe without the proxy flag — it is then a no-op.
    fn sync_proxy_now(&self, net: &mut Network) {
        let Some(ctrl) = self.controller else { return };
        net.with_node_ctx::<ControllerNode, _>(ctrl, |c, ctx| {
            c.for_each_switch(ctx, |apps, sw| {
                if let Some(p) = apps
                    .iter_mut()
                    .find_map(|a| a.as_any_mut().downcast_mut::<ArpProxy>())
                {
                    p.sync_switch(sw);
                }
            });
        });
    }

    /// Detach the station on `(pod, port)`: cut its access link (frames
    /// queued on it are blackholed, as on any cable pull) and free the
    /// port for a new attachment. For [`Self::attach_host`] stations
    /// with the ARP proxy on, the host's entry is removed and its
    /// proactive routes are retracted fabric-wide right away — leaving
    /// them would blackhole every frame for that MAC at its old edge.
    /// Returns the detached node.
    pub fn detach_host(
        &mut self,
        net: &mut Network,
        pod: usize,
        port: u16,
    ) -> Result<NodeId, FabricError> {
        self.check_access(pod, port)?;
        let Some(&h) = self.attached.get(&(pod, port)) else {
            return Err(FabricError::NothingAttached { pod, port });
        };
        self.attached.remove(&(pod, port));
        let carries_identity = self.host_ports.remove(&(pod, port));
        net.disconnect(h, PortId(0));
        if let Some(ctrl) = self
            .controller
            .filter(|_| carries_identity && self.spec.arp_proxy)
        {
            let ip = net.node_ref::<Host>(h).ip();
            net.node_mut::<ControllerNode>(ctrl)
                .app_mut::<ArpProxy>()
                .expect("arp_proxy flag verified on attach")
                .remove_host(ip);
            self.sync_proxy_now(net);
        }
        Ok(h)
    }

    /// Move the host on `from` to the access port `to` — possibly in a
    /// different pod — keeping its `(IP, MAC)` identity (that is the
    /// whole point: a VM migrates, its addresses travel with it). The
    /// old access link is cut, the host re-attaches at `to`, and with
    /// the ARP proxy on its routes are *retracted and re-installed for
    /// the new location in one sync*, deletes first — without the
    /// retraction the stale `eth_dst` routes at the old pod would keep
    /// matching and silently blackhole all traffic to the moved host.
    ///
    /// Callable between `run_*` calls; re-derive [`Self::shard_map`]
    /// afterwards if the fabric is sharded, so the host's events live on
    /// its new pod's shard.
    pub fn migrate_host(
        &mut self,
        net: &mut Network,
        from: (usize, u16),
        to: (usize, u16),
    ) -> Result<NodeId, FabricError> {
        self.check_access(from.0, from.1)?;
        self.check_access(to.0, to.1)?;
        if self.attached.contains_key(&to) {
            return Err(FabricError::DuplicateHostPort {
                pod: to.0,
                port: to.1,
            });
        }
        if !self.host_ports.contains(&from) {
            return Err(FabricError::NothingAttached {
                pod: from.0,
                port: from.1,
            });
        }
        let h = self.attached.remove(&from).expect("host_ports ⊆ attached");
        self.host_ports.remove(&from);
        net.disconnect(h, PortId(0));
        self.attached.insert(to, h);
        self.host_ports.insert(to);
        self.pods[to.0].attach_node(net, to.1, h);
        if self.spec.arp_proxy && self.controller.is_some() {
            let (ip, mac) = {
                let hr = net.node_ref::<Host>(h);
                (hr.ip(), hr.mac())
            };
            let (ports, guards) = self.route_location(to.0, to.1);
            self.push_route(
                net,
                HostRoute {
                    ip,
                    mac,
                    ports,
                    guards,
                },
            );
            self.sync_proxy_now(net);
        }
        Ok(h)
    }

    /// Attach an arbitrary node (generator/sink) to `(pod, port)` on its
    /// port 0, with the same duplicate-port bookkeeping as
    /// [`Self::attach_host`].
    pub fn attach_node(
        &mut self,
        net: &mut Network,
        pod: usize,
        port: u16,
        node: NodeId,
    ) -> Result<(), FabricError> {
        self.check_access(pod, port)?;
        if self.attached.contains_key(&(pod, port)) {
            return Err(FabricError::DuplicateHostPort { pod, port });
        }
        self.attached.insert((pod, port), node);
        self.pods[pod].attach_node(net, port, node);
        Ok(())
    }

    /// Attach a measurement station (traffic generator or sink) at
    /// `(pod, port)` and, with the ARP proxy on, register the port's
    /// fabric identity ([`Self::host_ip`] / [`Self::host_mac`]) with the
    /// proxy. Sinks never transmit, so reactive learning alone would
    /// flood every frame destined to them fabric-wide forever; the
    /// proactive route keeps station traffic unicast. The station's
    /// flows should use the port's fabric identity as their addresses.
    pub fn attach_station(
        &mut self,
        net: &mut Network,
        pod: usize,
        port: u16,
        node: NodeId,
    ) -> Result<(), FabricError> {
        self.attach_node(net, pod, port, node)?;
        if self.spec.arp_proxy && self.controller.is_some() {
            let route = self.host_route(pod, port);
            self.push_route(net, route);
        }
        Ok(())
    }

    /// The node attached to `(pod, port)`, if any.
    pub fn attached_node(&self, pod: usize, port: u16) -> Option<NodeId> {
        self.attached.get(&(pod, port)).copied()
    }

    /// The natural [`ShardMap`] of this fabric for the sharded event
    /// engine (`Network::set_shards`): pod `p`'s switches and attached
    /// stations go to shard `p + 1`; shard 0 — the *system shard* — keeps
    /// everything else (the spine, the controller, managers and any node
    /// this fabric does not know about). Pods only talk to each other
    /// through spine/line uplinks and to the controller through the
    /// control channel, so those are the only cross-shard edges and the
    /// engine's lookahead is `min(uplink delay, ctrl delay)`.
    ///
    /// Call after all hosts are attached; nodes attached later default to
    /// shard 0, which is correct for management nodes but serializes
    /// data-plane traffic of late-attached stations.
    pub fn shard_map(&self) -> ShardMap {
        let mut map = ShardMap::new(self.pods.len() + 1);
        for (p, pod) in self.pods.iter().enumerate() {
            map.assign(pod.legacy, p + 1);
            if let Some(ss1) = pod.ss1 {
                map.assign(ss1, p + 1);
            }
            map.assign(pod.ss2, p + 1);
        }
        for (&(pod, _port), &node) in &self.attached {
            map.assign(node, pod + 1);
        }
        map
    }

    /// Configure every pod through the direct (non-SNMP) path: legacy
    /// VLAN tagging plus translator rules. Experiments that are not
    /// about migration call this once instead of running managers.
    pub fn configure_direct(&self, net: &mut Network) {
        for pod in &self.pods {
            pod.configure_legacy_directly(net);
            pod.install_translator_rules(net);
        }
    }

    /// Register every pod's SS_2 — and a soft spine, if present — with
    /// the one fabric controller. Like
    /// [`HarmlessInstance::connect_controller`], call before the first
    /// `run_*` so the OpenFlow HELLOs go out on start; mid-run
    /// connections go through the manager's admin path instead.
    ///
    /// With [`FabricSpec::arp_proxy`] set, all hosts attached so far are
    /// registered with the controller's [`ArpProxy`] app (hosts attached
    /// afterwards register as they attach).
    pub fn connect_controller(&mut self, net: &mut Network, controller: NodeId) {
        for pod in &self.pods {
            pod.connect_controller(net, controller);
        }
        self.register_controller(net, controller);
    }

    /// Adopt `controller` as the fabric controller — spine hookup, ARP
    /// proxy bookkeeping, route registration — **without touching the
    /// pods**. Migration-wave scenarios use this: the pods join the
    /// controller later through their managers, and the routes
    /// registered here flow to each datapath when it eventually
    /// handshakes ([`ArpProxy`] replays its table on `on_switch_ready`).
    pub fn register_controller(&mut self, net: &mut Network, controller: NodeId) {
        self.connect_spine(net, controller);
        self.controller = Some(controller);
        if self.spec.arp_proxy {
            // Identity from the attached node itself, not the port — a
            // host migrated before the controller connected keeps the
            // addresses of its original attach point.
            let routes: Vec<HostRoute> = self
                .host_ports
                .iter()
                .map(|&(pod, port)| {
                    let hr = net.node_ref::<Host>(self.attached[&(pod, port)]);
                    let (ip, mac) = (hr.ip(), hr.mac());
                    let (ports, guards) = self.route_location(pod, port);
                    HostRoute {
                        ip,
                        mac,
                        ports,
                        guards,
                    }
                })
                .collect();
            for route in routes {
                self.push_route(net, route);
            }
        }
    }

    /// Register only a [`Spine::Soft`] spine with the controller (no-op
    /// for legacy spines). Migration-wave scenarios use this: pods join
    /// the controller through their managers, but the spine is server
    /// infrastructure that must be connected from the start.
    pub fn connect_spine(&self, net: &mut Network, controller: NodeId) {
        if let Some(Spine::Soft(spine)) = self.spine {
            net.node_mut::<SoftSwitchNode>(spine)
                .connect_controller(controller);
        }
    }

    /// True once every pod's SS_2 has a controller configured.
    pub fn all_pods_connected(&self, net: &Network) -> bool {
        self.pods.iter().all(|p| p.ss2_has_controller(net))
    }

    /// Launch one [`HarmlessManager`] per listed pod, migrating those
    /// pods to SDN control over the live management plane (SNMP
    /// configure + verify, translator install, controller hookup).
    /// Returns the manager nodes, in `pods` order; poll them with
    /// [`Self::wave_done`]. Callable mid-run — managers start with the
    /// next processed event, which is what makes staged migration waves
    /// possible.
    pub fn run_migration_wave(
        &self,
        net: &mut Network,
        pods: &[usize],
        controller: NodeId,
    ) -> Result<Vec<NodeId>, FabricError> {
        let mut managers = Vec::with_capacity(pods.len());
        for &p in pods {
            let pod = self.check_pod(p)?;
            if pod.ss1.is_none() {
                return Err(FabricError::MergedVariant);
            }
            let cfg = ManagerConfig::for_instance(pod, controller);
            managers.push(net.add_node(HarmlessManager::new(cfg)));
        }
        Ok(managers)
    }

    /// True once every manager of a wave reports [`ManagerPhase::Done`].
    pub fn wave_done(&self, net: &Network, managers: &[NodeId]) -> bool {
        managers
            .iter()
            .all(|&m| *net.node_ref::<HarmlessManager>(m).phase() == ManagerPhase::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use controller::apps::LearningSwitch;
    use netsim::SimTime;

    fn learning_ctrl(net: &mut Network) -> NodeId {
        net.add_node(ControllerNode::new(
            "ctrl",
            vec![Box::new(LearningSwitch::new())],
        ))
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let pod = HarmlessSpec::new(4);
        assert_eq!(
            FabricSpec::new(0, pod.clone()).validate(),
            Err(FabricError::NoPods)
        );
        assert!(matches!(
            FabricSpec::new(201, pod.clone()).validate(),
            Err(FabricError::TooManyPods { max: 200, got: 201 })
        ));
        assert_eq!(
            FabricSpec::new(2, pod.clone())
                .with_interconnect(Interconnect::None)
                .validate(),
            Err(FabricError::MissingInterconnect)
        );
        assert_eq!(
            FabricSpec::new(2, pod.clone().with_variant(Variant::Merged)).validate(),
            Err(FabricError::MergedVariant)
        );
        // Pinned uplink count disagreeing with the interconnect.
        assert_eq!(
            FabricSpec::new(2, pod.clone().with_uplinks(2))
                .with_interconnect(Interconnect::SpineLegacy)
                .validate(),
            Err(FabricError::UplinkMismatch {
                expected: 1,
                got: 2
            })
        );
        assert_eq!(
            FabricSpec::new(3, pod.clone().with_uplinks(1))
                .with_interconnect(Interconnect::Line)
                .validate(),
            Err(FabricError::UplinkMismatch {
                expected: 2,
                got: 1
            })
        );
        // VLAN budget propagates.
        let mut big = HarmlessSpec::new(4000);
        big.vlan_base = 100;
        assert_eq!(
            FabricSpec::single(big).validate(),
            Err(FabricError::PortMap(PortMapError::VlanSpaceExhausted))
        );
        // And a good spec passes.
        assert_eq!(FabricSpec::new(2, pod).validate(), Ok(()));
    }

    #[test]
    fn attach_host_rejects_bad_and_duplicate_ports() {
        let mut net = Network::new(1);
        let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
            .build(&mut net)
            .unwrap();
        assert!(matches!(
            fx.attach_host(&mut net, 5, 1),
            Err(FabricError::NoSuchPod { pod: 5, n_pods: 2 })
        ));
        assert_eq!(
            fx.attach_host(&mut net, 1, 3).unwrap_err(),
            FabricError::NotAnAccessPort { pod: 1, port: 3 }
        );
        fx.attach_host(&mut net, 1, 2).unwrap();
        assert_eq!(
            fx.attach_host(&mut net, 1, 2).unwrap_err(),
            FabricError::DuplicateHostPort { pod: 1, port: 2 }
        );
        // Same port on the *other* pod is fine.
        fx.attach_host(&mut net, 0, 2).unwrap();
    }

    #[test]
    fn host_identities_are_globally_unique() {
        let mut net = Network::new(1);
        let fx = FabricSpec::new(3, HarmlessSpec::new(300))
            .build(&mut net)
            .unwrap();
        // Pod 0 keeps the classic scheme.
        assert_eq!(fx.host_ip(0, 2), Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(fx.host_mac(0, 2), netpkt::MacAddr::host(2));
        // Other pods move to their own /16.
        assert_eq!(fx.host_ip(2, 1), Ipv4Addr::new(10, 2, 0, 1));
        assert_eq!(fx.host_ip(1, 251), Ipv4Addr::new(10, 1, 1, 1));
        let mut ips = std::collections::HashSet::new();
        let mut macs = std::collections::HashSet::new();
        for pod in 0..3usize {
            for port in 1..=4u16 {
                assert!(ips.insert(fx.host_ip(pod, port)));
                assert!(macs.insert(fx.host_mac(pod, port)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "host_ip of an existing")]
    fn host_ip_rejects_addresses_outside_the_fabric() {
        let mut net = Network::new(1);
        let fx = FabricSpec::new(2, HarmlessSpec::new(4))
            .build(&mut net)
            .unwrap();
        let _ = fx.host_ip(2, 1); // no such pod
    }

    #[test]
    fn single_pod_fabric_matches_the_classic_instance() {
        let mut net = Network::new(42);
        let ctrl = learning_ctrl(&mut net);
        let mut fx = FabricSpec::single(HarmlessSpec::new(4))
            .build(&mut net)
            .unwrap();
        assert_eq!(fx.n_pods(), 1);
        assert!(fx.spine().is_none());
        // Classic dpid + no uplink ports.
        assert_eq!(fx.pod(0).spec.ss2_dpid, crate::instance::SS2_DPID);
        assert_eq!(fx.pod(0).spec.uplinks, 0);
        fx.configure_direct(&mut net);
        fx.connect_controller(&mut net, ctrl);
        assert!(fx.all_pods_connected(&net));
        let a = fx.attach_host(&mut net, 0, 1).unwrap();
        let _b = fx.attach_host(&mut net, 0, 2).unwrap();
        net.run_until(SimTime::from_millis(100));
        let ip = fx.host_ip(0, 2);
        net.with_node_ctx::<Host, _>(a, |h, ctx| {
            h.ping(b"single", ip);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(400));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
    }

    #[test]
    fn cross_pod_ping_over_every_interconnect() {
        for ic in [
            Interconnect::Line,
            Interconnect::SpineSoft,
            Interconnect::SpineLegacy,
        ] {
            let mut net = Network::new(77);
            let ctrl = learning_ctrl(&mut net);
            let mut fx = FabricSpec::new(3, HarmlessSpec::new(2))
                .with_interconnect(ic)
                .build(&mut net)
                .unwrap();
            fx.configure_direct(&mut net);
            fx.connect_controller(&mut net, ctrl);
            let a = fx.attach_host(&mut net, 0, 1).unwrap();
            let b = fx.attach_host(&mut net, 2, 1).unwrap();
            net.run_until(SimTime::from_millis(100));
            let ip = fx.host_ip(2, 1);
            net.with_node_ctx::<Host, _>(a, |h, ctx| {
                h.ping(b"cross-pod", ip);
                h.flush(ctx);
            });
            net.run_until(SimTime::from_millis(600));
            assert_eq!(
                net.node_ref::<Host>(a).echo_replies_received(),
                1,
                "{ic:?}: pod 0 must reach pod 2"
            );
            assert_eq!(net.node_ref::<Host>(b).echo_requests_answered(), 1);
            // The controller really serves several datapaths.
            let c = net.node_ref::<ControllerNode>(ctrl);
            assert!(c.packet_ins() > 0);
        }
    }

    #[test]
    fn shard_map_puts_pods_on_their_own_shards() {
        let mut net = Network::new(3);
        let ctrl = learning_ctrl(&mut net);
        let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
            .with_interconnect(Interconnect::SpineSoft)
            .build(&mut net)
            .unwrap();
        let a = fx.attach_host(&mut net, 0, 1).unwrap();
        let b = fx.attach_host(&mut net, 1, 1).unwrap();
        let map = fx.shard_map();
        assert_eq!(map.n_shards(), 3);
        assert_eq!(map.shard_of(ctrl), 0, "controller stays on system shard");
        assert_eq!(map.shard_of(fx.spine().unwrap().node()), 0);
        assert_eq!(map.shard_of(fx.pod(0).legacy), 1);
        assert_eq!(map.shard_of(fx.pod(0).ss2), 1);
        assert_eq!(map.shard_of(a), 1);
        assert_eq!(map.shard_of(fx.pod(1).ss2), 2);
        assert_eq!(map.shard_of(b), 2);
        assert_eq!(fx.attached_node(0, 1), Some(a));
        assert_eq!(fx.attached_node(0, 2), None);
    }

    #[test]
    fn sharded_fabric_pings_cross_pod_on_any_thread_count() {
        let run = |threads: Option<usize>| -> (u64, u64, u64) {
            let mut net = Network::new(77);
            let ctrl = learning_ctrl(&mut net);
            let mut fx = FabricSpec::new(3, HarmlessSpec::new(2))
                .with_interconnect(Interconnect::SpineSoft)
                .build(&mut net)
                .unwrap();
            fx.configure_direct(&mut net);
            fx.connect_controller(&mut net, ctrl);
            let a = fx.attach_host(&mut net, 0, 1).unwrap();
            let b = fx.attach_host(&mut net, 2, 1).unwrap();
            if let Some(t) = threads {
                net.set_shards(&fx.shard_map());
                net.set_threads(t);
            }
            net.run_until(SimTime::from_millis(100));
            let ip = fx.host_ip(2, 1);
            net.with_node_ctx::<Host, _>(a, |h, ctx| {
                h.ping(b"sharded", ip);
                h.flush(ctx);
            });
            net.run_until(SimTime::from_millis(600));
            (
                net.node_ref::<Host>(a).echo_replies_received(),
                net.node_ref::<Host>(b).echo_requests_answered(),
                net.events_processed(),
            )
        };
        let (r1, a1, e1) = run(Some(1));
        for threads in [2, 4] {
            assert_eq!(run(Some(threads)), (r1, a1, e1), "threads={threads}");
        }
        assert_eq!(r1, 1);
        assert_eq!(a1, 1);
        // And the sharded engine reaches the same converged state as the
        // classic single-queue loop.
        let (lr, la, _) = run(None);
        assert_eq!((lr, la), (r1, a1));
    }

    #[test]
    fn faulted_fabric_is_bit_identical_for_any_thread_count() {
        use netsim::FaultPlan;
        // A 4-pod fabric under live cross-pod traffic with an uplink
        // flap, a softswitch power-cycle and a legacy reboot. The fault
        // events ride the shard machinery, so every thread count — and
        // the classic unsharded loop — must produce the same replies,
        // the same blackhole count and the same event total.
        let run = |threads: Option<usize>| -> (u64, u64, u64, u64) {
            let mut net = Network::new(21);
            let ctrl = net.add_node(ControllerNode::new(
                "ctrl",
                vec![Box::new(ArpProxy::new()), Box::new(LearningSwitch::new())],
            ));
            let mut fx = FabricSpec::new(4, HarmlessSpec::new(2))
                .with_interconnect(Interconnect::SpineSoft)
                .with_arp_proxy(true)
                .build(&mut net)
                .unwrap();
            fx.configure_direct(&mut net);
            fx.connect_controller(&mut net, ctrl);
            let hosts: Vec<NodeId> = (0..4)
                .map(|p| fx.attach_host(&mut net, p, 1).unwrap())
                .collect();
            if let Some(t) = threads {
                net.set_shards(&fx.shard_map());
                net.set_threads(t);
            }
            let uplink = PortId(fx.pod(1).uplink_port(1) as u16);
            let plan = FaultPlan::new()
                .link_flap(
                    SimTime::from_millis(200),
                    SimTime::from_millis(100),
                    fx.pod(1).ss2,
                    uplink,
                )
                .reset(SimTime::from_millis(350), fx.pod(2).ss2)
                .reset(SimTime::from_millis(400), fx.pod(3).legacy);
            net.apply_faults(&plan);
            net.run_until(SimTime::from_millis(100));
            // Ping rounds spanning the whole fault window.
            for _ in 0..6 {
                for (p, &h) in hosts.iter().enumerate() {
                    let target = fx.host_ip((p + 1) % 4, 1);
                    net.with_node_ctx::<Host, _>(h, move |h, ctx| {
                        h.ping(b"fault", target);
                        h.flush(ctx);
                    });
                }
                net.run_for(SimTime::from_millis(100));
            }
            net.run_until(SimTime::from_millis(1500));
            let replies: u64 = hosts
                .iter()
                .map(|&h| net.node_ref::<Host>(h).echo_replies_received())
                .sum();
            let resets = net.node_ref::<SoftSwitchNode>(fx.pod(2).ss2).resets()
                + net.node_ref::<LegacySwitchNode>(fx.pod(3).legacy).reboots();
            (
                replies,
                net.blackholed_frames(),
                net.events_processed(),
                resets,
            )
        };
        let baseline = run(Some(1));
        assert_eq!(baseline.3, 2, "both scheduled resets fired");
        assert!(baseline.0 > 0, "traffic still flows around the faults");
        for threads in [2, 4] {
            assert_eq!(run(Some(threads)), baseline, "threads={threads}");
        }
        // The unsharded loop reaches the same converged state.
        let (ur, ub, _, ures) = run(None);
        assert_eq!((ur, ub, ures), (baseline.0, baseline.1, baseline.3));
    }

    /// Build a pods × hosts fabric (optionally with the ARP proxy),
    /// stagger one all-hosts cross-pod ping round, then a second
    /// (converged) round. Returns
    /// `(round-1 replies, round-1 packet-ins, round-2 packet-ins,
    ///   proxied answers, total hosts)`.
    fn ping_rounds(
        proxy: bool,
        interconnect: Interconnect,
        n_pods: u16,
        n_hosts: u16,
    ) -> (u64, u64, u64, u64, u64) {
        let mut net = Network::new(5);
        let apps: Vec<Box<dyn controller::App>> = if proxy {
            vec![Box::new(ArpProxy::new()), Box::new(LearningSwitch::new())]
        } else {
            vec![Box::new(LearningSwitch::new())]
        };
        let ctrl = net.add_node(ControllerNode::new("ctrl", apps));
        let mut fx = FabricSpec::new(n_pods, HarmlessSpec::new(n_hosts))
            .with_interconnect(interconnect)
            .with_arp_proxy(proxy)
            .build(&mut net)
            .unwrap();
        fx.configure_direct(&mut net);
        fx.connect_controller(&mut net, ctrl);
        let mut hosts: Vec<Vec<NodeId>> = Vec::new();
        for p in 0..usize::from(n_pods) {
            hosts.push(
                (1..=n_hosts)
                    .map(|i| fx.attach_host(&mut net, p, i).unwrap())
                    .collect(),
            );
        }
        net.run_until(SimTime::from_millis(100));
        let round = |net: &mut Network| {
            for i in 1..=n_hosts {
                for (p, pod_hosts) in hosts.iter().enumerate() {
                    let target = fx.host_ip((p + 1) % usize::from(n_pods), i);
                    let h = pod_hosts[usize::from(i) - 1];
                    net.with_node_ctx::<Host, _>(h, move |h, ctx| {
                        h.ping(b"proxy", target);
                        h.flush(ctx);
                    });
                }
                net.run_for(SimTime::from_micros(400));
            }
            net.run_for(SimTime::from_millis(400));
        };
        round(&mut net);
        let replies1: u64 = hosts
            .iter()
            .flatten()
            .map(|&h| net.node_ref::<Host>(h).echo_replies_received())
            .sum();
        let pi1 = net.node_ref::<ControllerNode>(ctrl).packet_ins();
        round(&mut net);
        let pi2 = net.node_ref::<ControllerNode>(ctrl).packet_ins() - pi1;
        let answered = if proxy {
            net.node_mut::<ControllerNode>(ctrl)
                .app_mut::<ArpProxy>()
                .unwrap()
                .answered()
        } else {
            0
        };
        let total = u64::from(n_pods) * u64::from(n_hosts);
        (replies1, pi1, pi2, answered, total)
    }

    #[test]
    fn arp_proxy_contains_round1_floods() {
        // Without the proxy: reactive learning, broadcast punts at every
        // datapath — packet-ins grow superlinearly with hosts.
        let (replies, pi1, pi2, _, total) = ping_rounds(false, Interconnect::SpineSoft, 3, 4);
        assert_eq!(replies, total);
        assert_eq!(pi2, 0);
        assert!(
            pi1 > total + 3,
            "reactive baseline floods: {pi1} packet-ins for {total} hosts"
        );
        // With the proxy: one ARP punt per host, answered at the pod
        // edge; proactive routes keep the unicast path silent.
        let (replies, pi1, pi2, answered, total) = ping_rounds(true, Interconnect::SpineSoft, 3, 4);
        assert_eq!(replies, total, "convergence is unchanged");
        assert_eq!(pi2, 0, "round 2 stays silent");
        assert!(
            pi1 <= total + 3,
            "round-1 packet-ins must be O(hosts): {pi1} > {total} + pods"
        );
        assert_eq!(answered, total, "every host's one ARP was proxied");
    }

    #[test]
    fn arp_proxy_guards_legacy_spine_reflections() {
        // A legacy spine floods unknown destinations; without the
        // reflection guards the proactive uplink routes would bounce
        // flood copies straight back and storm the fabric. The guarded
        // routes must converge with pod-edge-only punts.
        let (replies, pi1, pi2, answered, total) =
            ping_rounds(true, Interconnect::SpineLegacy, 3, 2);
        assert_eq!(replies, total);
        assert_eq!(pi2, 0);
        assert!(pi1 <= total + 3, "{pi1} packet-ins for {total} hosts");
        assert_eq!(answered, total);
    }

    #[test]
    fn host_routes_follow_the_interconnect() {
        let mut net = Network::new(1);
        let fx = FabricSpec::new(3, HarmlessSpec::new(4))
            .with_interconnect(Interconnect::SpineSoft)
            .build(&mut net)
            .unwrap();
        // Host (pod 1, port 2): home access port, uplinks elsewhere,
        // pod-facing port on the spine.
        let r = fx.host_route(1, 2);
        assert_eq!(r.ip, fx.host_ip(1, 2));
        assert_eq!(r.mac, fx.host_mac(1, 2));
        assert_eq!(
            r.ports,
            vec![
                (POD_SS2_DPID_BASE, 5),     // pod 0: uplink (4 access + 1)
                (POD_SS2_DPID_BASE + 1, 2), // home pod: access port
                (POD_SS2_DPID_BASE + 2, 5), // pod 2: uplink
                (SPINE_DPID, 2),            // spine: port pod+1
            ]
        );
        assert!(r.guards.is_empty(), "soft spines need no guards");

        // Line interconnect: direction-aware uplinks, no spine entry.
        let fx = FabricSpec::new(3, HarmlessSpec::new(4))
            .with_interconnect(Interconnect::Line)
            .build(&mut net)
            .unwrap();
        let r = fx.host_route(1, 3);
        assert_eq!(
            r.ports,
            vec![
                (POD_SS2_DPID_BASE, 5),     // pod 0 reaches pod 1 rightward
                (POD_SS2_DPID_BASE + 1, 3), // home
                (POD_SS2_DPID_BASE + 2, 6), // pod 2 reaches pod 1 leftward
            ]
        );

        // Legacy spine: uplink routes carry reflection guards.
        let fx = FabricSpec::new(2, HarmlessSpec::new(4))
            .with_interconnect(Interconnect::SpineLegacy)
            .build(&mut net)
            .unwrap();
        let r = fx.host_route(0, 1);
        assert_eq!(r.guards, vec![(POD_SS2_DPID_BASE + 1, 5)]);
    }

    #[test]
    #[should_panic(expected = "no ArpProxy app")]
    fn arp_proxy_flag_requires_the_app() {
        let mut net = Network::new(1);
        let ctrl = learning_ctrl(&mut net); // no ArpProxy in the chain
        let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
            .with_arp_proxy(true)
            .build(&mut net)
            .unwrap();
        fx.connect_controller(&mut net, ctrl);
        let _ = fx.attach_host(&mut net, 0, 1);
    }

    #[test]
    fn migrating_a_host_retracts_stale_routes_and_reroutes_traffic() {
        use controller::apps::arp_proxy::ROUTE_PRIORITY;
        use openflow::{Action, Instruction, Match};
        let mut net = Network::new(11);
        let ctrl = net.add_node(ControllerNode::new(
            "ctrl",
            vec![Box::new(ArpProxy::new()), Box::new(LearningSwitch::new())],
        ));
        let mut fx = FabricSpec::new(3, HarmlessSpec::new(2))
            .with_interconnect(Interconnect::SpineSoft)
            .with_arp_proxy(true)
            .build(&mut net)
            .unwrap();
        fx.configure_direct(&mut net);
        fx.connect_controller(&mut net, ctrl);
        let a = fx.attach_host(&mut net, 0, 1).unwrap();
        let b = fx.attach_host(&mut net, 1, 1).unwrap();
        net.run_until(SimTime::from_millis(100));
        let b_ip = fx.host_ip(1, 1);
        let b_mac = fx.host_mac(1, 1);
        // Warm the path: proxied ARP, then pod 0 → spine → pod 1.
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"before", b_ip);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(400));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);

        // Live-migrate b to pod 2, access port 2; its IP/MAC travel
        // with it. The proxy retracts the pod-1 routes and installs the
        // pod-2 ones in the same sync.
        fx.migrate_host(&mut net, (1, 1), (2, 2)).unwrap();
        net.run_until(SimTime::from_millis(450)); // control plane lands
        let blackholed_at_reconvergence = net.blackholed_frames();

        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"after", b_ip);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(900));
        assert_eq!(
            net.node_ref::<Host>(a).echo_replies_received(),
            2,
            "ping must reach the migrated host without re-ARPing"
        );
        assert_eq!(net.node_ref::<Host>(b).echo_requests_answered(), 2);
        assert_eq!(
            net.blackholed_frames(),
            blackholed_at_reconvergence,
            "zero packets blackholed after reconvergence"
        );

        // Every datapath holds exactly one prio-20 route for b's MAC,
        // and it points at the *new* location — in particular the old
        // home pod now routes b out of its uplink, not access port 1.
        let uplink = 3u32; // 2 access ports + 1
        for (node, expected_out, what) in [
            (fx.pod(0).ss2, uplink, "pod 0 uplink"),
            (
                fx.pod(1).ss2,
                uplink,
                "old home: uplink, not the stale access port",
            ),
            (fx.pod(2).ss2, 2, "new home: access port 2"),
            (fx.spine().unwrap().node(), 3, "spine: pod-2-facing port"),
        ] {
            let dp = net.node_ref::<SoftSwitchNode>(node);
            let routes: Vec<_> = dp
                .datapath()
                .table(0)
                .unwrap()
                .entries()
                .iter()
                .filter(|e| e.priority == ROUTE_PRIORITY && e.match_ == Match::new().eth_dst(b_mac))
                .collect();
            assert_eq!(routes.len(), 1, "{what}: one live route, no stale ones");
            assert_eq!(
                routes[0].instructions,
                vec![Instruction::ApplyActions(vec![Action::output(
                    expected_out
                )])],
                "{what}"
            );
        }
    }

    #[test]
    fn detach_host_retracts_routes_and_frees_the_port() {
        let mut net = Network::new(4);
        let ctrl = net.add_node(ControllerNode::new(
            "ctrl",
            vec![Box::new(ArpProxy::new()), Box::new(LearningSwitch::new())],
        ));
        let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
            .with_interconnect(Interconnect::SpineSoft)
            .with_arp_proxy(true)
            .build(&mut net)
            .unwrap();
        fx.configure_direct(&mut net);
        fx.connect_controller(&mut net, ctrl);
        let a = fx.attach_host(&mut net, 0, 1).unwrap();
        let _b = fx.attach_host(&mut net, 1, 1).unwrap();
        net.run_until(SimTime::from_millis(100));
        assert_eq!(
            fx.detach_host(&mut net, 1, 2).unwrap_err(),
            FabricError::NothingAttached { pod: 1, port: 2 }
        );
        fx.detach_host(&mut net, 1, 1).unwrap();
        assert_eq!(fx.attached_node(1, 1), None);
        // The proxy no longer answers for the detached IP...
        let gone = fx.host_ip(1, 1);
        assert_eq!(
            net.node_mut::<ControllerNode>(ctrl)
                .app_mut::<ArpProxy>()
                .unwrap()
                .lookup(gone),
            None
        );
        // ...pings toward it stall at ARP (the host queues them and
        // keeps retrying)...
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"ghost", gone);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(600));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 0);
        // ...and the port takes a fresh attachment, which revives the
        // IP: the queued ping resolves and both pings go through.
        let b2 = fx.attach_host(&mut net, 1, 1).unwrap();
        net.run_until(SimTime::from_millis(700));
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"reborn", gone);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(1500));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 2);
        assert_eq!(net.node_ref::<Host>(b2).echo_requests_answered(), 2);
    }

    #[test]
    fn migration_waves_bring_pods_under_sdn_one_at_a_time() {
        let mut net = Network::new(99);
        let ctrl = learning_ctrl(&mut net);
        let mut fx = FabricSpec::new(2, HarmlessSpec::new(4))
            .with_interconnect(Interconnect::SpineLegacy)
            .build(&mut net)
            .unwrap();
        let a = fx.attach_host(&mut net, 0, 1).unwrap();
        let b = fx.attach_host(&mut net, 1, 1).unwrap();

        // Wave 1: migrate pod 0 only.
        let w1 = fx.run_migration_wave(&mut net, &[0], ctrl).unwrap();
        net.run_until(SimTime::from_secs(2));
        assert!(fx.wave_done(&net, &w1));
        assert!(fx.pod(0).ss2_has_controller(&net));
        assert!(!fx.pod(1).ss2_has_controller(&net));

        // Pod 1 is still an unmigrated island: cross-pod traffic dies at
        // its unconfigured translator.
        let ip_b = fx.host_ip(1, 1);
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"too early", ip_b);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_secs(3));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 0);

        // Wave 2: migrate pod 1 mid-run, then pinging works — including
        // the queued "too early" ping, whose ARP now resolves.
        let w2 = fx.run_migration_wave(&mut net, &[1], ctrl).unwrap();
        net.run_until(SimTime::from_secs(6));
        assert!(fx.wave_done(&net, &w2));
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"post wave 2", ip_b);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_secs(8));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 2);
        assert_eq!(net.node_ref::<Host>(b).echo_requests_answered(), 2);
    }
}
