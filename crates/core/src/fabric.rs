//! Declarative multi-pod fabric construction — HARMLESS at *network*
//! scale.
//!
//! The paper retrofits one legacy switch at a time; the interesting
//! hybrid-SDN questions (partial deployment, per-pod migration waves,
//! traffic crossing the SDN/legacy boundary) only appear when many such
//! retrofits compose into one network. A [`FabricSpec`] describes that
//! network declaratively:
//!
//! * **N pods**, each the classic HARMLESS unit built by
//!   [`HarmlessSpec`] — a legacy access switch, the translator SS_1 and
//!   the main OpenFlow switch SS_2;
//! * an **interconnect** joining the pods' SS_2 uplink ports: a
//!   [`Interconnect::Line`] chain, a software-switch spine
//!   ([`Interconnect::SpineSoft`]), or a plain legacy/COTS Ethernet
//!   spine ([`Interconnect::SpineLegacy`]);
//! * **hosts** attached per `(pod, access port)` with globally unique
//!   MAC/IP identities ([`Fabric::attach_host`]);
//! * **one controller** for the whole fabric
//!   ([`Fabric::connect_controller`]) — every SS_2 (and a soft spine) is
//!   a separate datapath of the same controller node, so dpid-keyed apps
//!   such as the learning switch converge across pods;
//! * **migration waves** ([`Fabric::run_migration_wave`]): one
//!   [`HarmlessManager`] per pod drives the SNMP/OpenFlow migration of a
//!   subset of pods while the rest stay legacy.
//!
//! The single-pod path is [`FabricSpec::single`], which builds exactly
//! the topology `HarmlessSpec::build` always built — the fabric layer is
//! a superset, not a replacement, of the paper's Fig. 1.
//!
//! Pods are also the natural *shard boundary* for scaling the simulator:
//! all high-rate traffic inside a pod stays inside its three nodes, and
//! only inter-pod frames cross an uplink, so a sharded event loop can
//! run one pod per core and synchronise on uplink delays (see
//! ROADMAP.md).
//!
//! ```
//! use harmless::fabric::{FabricSpec, Interconnect};
//! use harmless::instance::HarmlessSpec;
//! use netsim::host::Host;
//! use netsim::{Network, SimTime};
//!
//! let mut net = Network::new(7);
//! let ctrl = net.add_node(controller::ControllerNode::new(
//!     "ctrl",
//!     vec![Box::new(controller::apps::LearningSwitch::new())],
//! ));
//! // Two 2-port pods joined by a legacy spine.
//! let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
//!     .with_interconnect(Interconnect::SpineLegacy)
//!     .build(&mut net)
//!     .unwrap();
//! fx.configure_direct(&mut net);
//! fx.connect_controller(&mut net, ctrl);
//! let a = fx.attach_host(&mut net, 0, 1).unwrap();
//! let b = fx.attach_host(&mut net, 1, 1).unwrap();
//! net.run_until(SimTime::from_millis(100));
//! let b_ip = fx.host_ip(1, 1);
//! net.with_node_ctx::<Host, _>(a, |h, ctx| {
//!     h.ping(b"cross-pod", b_ip);
//!     h.flush(ctx);
//! });
//! net.run_until(SimTime::from_millis(500));
//! assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
//! # let _ = b;
//! ```

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use controller::apps::{ArpProxy, HostRoute, PrefixRoute, Router, RouterConfig};
use controller::ControllerNode;
use legacy_switch::LegacySwitchNode;
use netpkt::vlan::{push_vlan, VlanTag};
use netpkt::MacAddr;
use netsim::flowsim::{FlowBundleSpec, FlowHop};
use netsim::host::Host;
use netsim::stats::Rollup;
use netsim::traffic::{Generator, Sink};
use netsim::{LinkSpec, Network, NodeId, PortId, ShardMap};
use openflow::NatDir;
use softswitch::{NatConfig, SoftSwitchNode};

use crate::instance::{HarmlessInstance, HarmlessSpec, Variant};
use crate::manager::{HarmlessManager, ManagerConfig, ManagerPhase};
use crate::portmap::{PortMap, PortMapError};
use crate::translator::patch_port;

/// Default datapath id of a software spine switch.
pub const SPINE_DPID: u64 = 0x5F;
/// Base datapath id of per-pod translator switches (`0x5100 + pod`).
pub const POD_SS1_DPID_BASE: u64 = 0x5100;
/// Base datapath id of per-pod main switches (`0x5200 + pod`).
pub const POD_SS2_DPID_BASE: u64 = 0x5200;
/// Pod count ceiling — the host addressing scheme spends one IPv4 octet
/// on the pod index and reserves `10.200.0.0/13` for service addresses
/// (VIPs and the like).
pub const MAX_PODS: u16 = 200;

/// MAC identity of the soft spine's routing stage in L3 mode.
pub const SPINE_ROUTER_MAC: MacAddr = MacAddr::host(0x4e00_ff00);
/// IPv4 identity of the soft spine's routing stage (service space) —
/// the source address of its ICMP time-exceeded replies.
pub const SPINE_ROUTER_IP: Ipv4Addr = Ipv4Addr::new(10, 200, 255, 254);
/// MAC of the upstream "internet" host a gateway pod NATs toward.
pub const INTERNET_MAC: MacAddr = MacAddr::host(0x4e01_0001);

/// MAC identity of pod `p`'s routing stage — the `eth_src` of every
/// frame it routes and the `eth_dst` next hops address it by. Disjoint
/// from the host MAC space ([`Fabric::host_mac`] third-lowest octet
/// caps at [`MAX_PODS`]).
pub fn router_mac(pod: usize) -> MacAddr {
    MacAddr::host(0x4e00_0000 + pod as u32)
}

/// IPv4 identity of pod `p`'s routing stage — the source address of
/// its ICMP time-exceeded replies. Lives in the pod's own `/16`, past
/// any address [`Fabric::host_ip`] can produce.
pub fn router_ip(pod: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, pod as u8, 255, 254)
}

/// How the pods' SS_2 uplinks are joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interconnect {
    /// No interconnect: a standalone pod (single-pod fabrics only).
    None,
    /// A chain: pod `i` ↔ pod `i+1`. Two uplink ports per pod; frames
    /// between distant pods transit the SS_2 of every pod in between.
    Line,
    /// Leaf–spine over a dedicated spine `SoftSwitchNode` — the spine is
    /// one more datapath of the fabric's controller (connect it with
    /// [`Fabric::connect_controller`] or [`Fabric::connect_spine`]).
    SpineSoft,
    /// Leaf–spine over a plain legacy/COTS Ethernet switch in factory
    /// configuration — a flat learning bridge, no controller needed.
    /// This is the cheapest interconnect the cost model allows.
    SpineLegacy,
}

/// Where a fabric meets the internet: one pod hosts the NAT gateway.
///
/// Egress traffic from every pod follows the default route to
/// `pod`, is source-NATted behind `external_ip`
/// ([`softswitch::NatTable`] on the gateway's SS_2), and leaves
/// through access port `port` — where [`Fabric::attach_internet`]
/// places the upstream host answering as `internet_ip`. Return
/// traffic addressed to `external_ip` is reverse-translated at the
/// gateway before routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewaySpec {
    /// The pod whose SS_2 runs the NAT stage.
    pub pod: usize,
    /// Gateway-pod access port the upstream host occupies.
    pub port: u16,
    /// The NAT's public face — what egress flows are translated to.
    pub external_ip: Ipv4Addr,
    /// Address of the upstream host (what internal hosts dial).
    pub internet_ip: Ipv4Addr,
}

impl GatewaySpec {
    /// A gateway at `(pod, port)` with the default `198.18.0.0/24`
    /// (RFC 2544 benchmarking space) upstream addressing.
    pub fn new(pod: usize, port: u16) -> GatewaySpec {
        GatewaySpec {
            pod,
            port,
            external_ip: Ipv4Addr::new(198, 18, 0, 254),
            internet_ip: Ipv4Addr::new(198, 18, 0, 1),
        }
    }
}

/// Errors validating or using a [`FabricSpec`] / [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// A fabric needs at least one pod.
    NoPods,
    /// More pods than the addressing scheme supports.
    TooManyPods {
        /// The [`MAX_PODS`] ceiling.
        max: u16,
        /// What the spec asked for.
        got: u16,
    },
    /// A multi-pod fabric needs an interconnect other than
    /// [`Interconnect::None`].
    MissingInterconnect,
    /// The merged single-datapath variant has no clean uplink port space
    /// and cannot be manager-migrated; fabrics of more than one pod
    /// require [`Variant::TwoSwitch`] pods.
    MergedVariant,
    /// The pod spec pins an uplink count that disagrees with what the
    /// chosen interconnect wires (leave `HarmlessSpec::uplinks` at 0 to
    /// let the fabric pick).
    UplinkMismatch {
        /// Uplinks the interconnect needs per pod.
        expected: u16,
        /// Uplinks the pod spec pinned.
        got: u16,
    },
    /// Pod index out of range.
    NoSuchPod {
        /// The requested pod.
        pod: usize,
        /// How many pods the fabric has.
        n_pods: usize,
    },
    /// The port is not a managed access port of that pod.
    NotAnAccessPort {
        /// Pod index.
        pod: usize,
        /// Offending port.
        port: u16,
    },
    /// Something is already attached to that `(pod, port)`.
    DuplicateHostPort {
        /// Pod index.
        pod: usize,
        /// Offending port.
        port: u16,
    },
    /// Detach/migrate of a `(pod, port)` with no host attached.
    NothingAttached {
        /// Pod index.
        pod: usize,
        /// Offending port.
        port: u16,
    },
    /// The per-pod port map does not fit the VLAN budget.
    PortMap(PortMapError),
    /// Per-prefix routing needs the ARP proxy: something must answer
    /// who-has for hosts the first hop no longer floods toward.
    L3NeedsArpProxy,
    /// A NAT gateway only makes sense on a routed fabric.
    GatewayNeedsL3,
    /// [`Fabric::attach_internet`] on a spec without a gateway.
    NoGateway,
}

impl core::fmt::Display for FabricError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FabricError::NoPods => write!(f, "a fabric needs at least one pod"),
            FabricError::TooManyPods { max, got } => {
                write!(f, "at most {max} pods are addressable, spec has {got}")
            }
            FabricError::MissingInterconnect => {
                write!(f, "a multi-pod fabric needs an interconnect")
            }
            FabricError::MergedVariant => {
                write!(f, "merged-variant pods cannot join a fabric interconnect")
            }
            FabricError::UplinkMismatch { expected, got } => {
                write!(
                    f,
                    "interconnect needs {expected} uplink(s) per pod, pod spec pins {got}"
                )
            }
            FabricError::NoSuchPod { pod, n_pods } => {
                write!(f, "pod {pod} out of range (fabric has {n_pods})")
            }
            FabricError::NotAnAccessPort { pod, port } => {
                write!(f, "port {port} is not an access port of pod {pod}")
            }
            FabricError::DuplicateHostPort { pod, port } => {
                write!(f, "pod {pod} port {port} already has a host attached")
            }
            FabricError::NothingAttached { pod, port } => {
                write!(f, "pod {pod} port {port} has no host attached")
            }
            FabricError::PortMap(e) => write!(f, "pod port map invalid: {e}"),
            FabricError::L3NeedsArpProxy => {
                write!(f, "l3_routing requires arp_proxy (who answers who-has?)")
            }
            FabricError::GatewayNeedsL3 => {
                write!(f, "a NAT gateway requires l3_routing")
            }
            FabricError::NoGateway => {
                write!(f, "attach_internet needs FabricSpec::gateway")
            }
        }
    }
}

impl std::error::Error for FabricError {}

impl From<PortMapError> for FabricError {
    fn from(e: PortMapError) -> Self {
        FabricError::PortMap(e)
    }
}

/// A declarative description of a multi-pod HARMLESS fabric.
#[derive(Debug, Clone)]
pub struct FabricSpec {
    /// Number of pods.
    pub n_pods: u16,
    /// Template for every pod (name prefixes and datapath ids are
    /// assigned per pod by the builder).
    pub pod: HarmlessSpec,
    /// How the pods are joined.
    pub interconnect: Interconnect,
    /// Link model of the inter-pod uplinks.
    pub uplink_link: LinkSpec,
    /// Datapath id of a [`Interconnect::SpineSoft`] spine.
    pub spine_dpid: u64,
    /// Contain round-1 ARP floods with a controller-side proxy: when
    /// set, the fabric registers every attached host's identity and
    /// location ([`Fabric::host_route`]) with the controller's
    /// [`ArpProxy`] app, which answers who-has punts at the pod edge and
    /// installs proactive `eth_dst` routes — O(hosts) round-1 packet-ins
    /// instead of O(hosts²). The controller passed to
    /// [`Fabric::connect_controller`] must then run an [`ArpProxy`] app
    /// (chained before any learning app).
    pub arp_proxy: bool,
    /// Route between pods instead of bridging them: the controller's
    /// [`Router`] app installs per-prefix rules (one `/16` per remote
    /// pod, `/32`s only for the *local* pod's hosts) so inter-pod rule
    /// state is O(pods), not O(hosts), per datapath. Requires
    /// [`FabricSpec::arp_proxy`] (the proxy still answers who-has with
    /// the target's real MAC; per-host `eth_dst` routes shrink to the
    /// home pod). The controller must chain a [`Router`] app; a
    /// learning app must *not* be chained — a router drops what it has
    /// no route for, it does not flood.
    pub l3_routing: bool,
    /// NAT'd internet egress through one gateway pod (implies nothing
    /// by itself — see [`GatewaySpec`]; requires `l3_routing`).
    pub gateway: Option<GatewaySpec>,
}

impl FabricSpec {
    /// A fabric of `n_pods` copies of `pod`, joined by a legacy spine
    /// (override with [`Self::with_interconnect`]).
    pub fn new(n_pods: u16, pod: HarmlessSpec) -> FabricSpec {
        FabricSpec {
            n_pods,
            pod,
            interconnect: if n_pods <= 1 {
                Interconnect::None
            } else {
                Interconnect::SpineLegacy
            },
            uplink_link: LinkSpec::ten_gigabit(),
            spine_dpid: SPINE_DPID,
            arp_proxy: false,
            l3_routing: false,
            gateway: None,
        }
    }

    /// The single-pod fabric: exactly the paper's Fig. 1, with the same
    /// node names, datapath ids and host addressing the standalone
    /// [`HarmlessSpec::build`] produces.
    pub fn single(pod: HarmlessSpec) -> FabricSpec {
        FabricSpec::new(1, pod)
    }

    /// Builder-style interconnect selection.
    pub fn with_interconnect(mut self, i: Interconnect) -> Self {
        self.interconnect = i;
        self
    }

    /// Builder-style uplink link model.
    pub fn with_uplink_link(mut self, l: LinkSpec) -> Self {
        self.uplink_link = l;
        self
    }

    /// Builder-style spine datapath id.
    pub fn with_spine_dpid(mut self, dpid: u64) -> Self {
        self.spine_dpid = dpid;
        self
    }

    /// Builder-style ARP-proxy flood containment (see
    /// [`FabricSpec::arp_proxy`]).
    pub fn with_arp_proxy(mut self, on: bool) -> Self {
        self.arp_proxy = on;
        self
    }

    /// Builder-style per-prefix routing (see [`FabricSpec::l3_routing`]);
    /// also turns the ARP proxy on — routing depends on it.
    pub fn with_l3_routing(mut self) -> Self {
        self.l3_routing = true;
        self.arp_proxy = true;
        self
    }

    /// Builder-style NAT gateway (see [`GatewaySpec`]); implies
    /// [`FabricSpec::with_l3_routing`].
    pub fn with_gateway(mut self, gw: GatewaySpec) -> Self {
        self.gateway = Some(gw);
        self.with_l3_routing()
    }

    /// Uplink ports per pod the chosen interconnect wires.
    fn required_uplinks(&self) -> u16 {
        match self.interconnect {
            Interconnect::None => 0,
            Interconnect::Line => {
                if self.n_pods > 1 {
                    2
                } else {
                    0
                }
            }
            Interconnect::SpineSoft | Interconnect::SpineLegacy => 1,
        }
    }

    /// Check the spec without building anything.
    pub fn validate(&self) -> Result<(), FabricError> {
        if self.n_pods == 0 {
            return Err(FabricError::NoPods);
        }
        if self.n_pods > MAX_PODS {
            return Err(FabricError::TooManyPods {
                max: MAX_PODS,
                got: self.n_pods,
            });
        }
        if self.n_pods > 1 && self.interconnect == Interconnect::None {
            return Err(FabricError::MissingInterconnect);
        }
        if self.n_pods > 1 && self.pod.variant == Variant::Merged {
            return Err(FabricError::MergedVariant);
        }
        let required = self.required_uplinks();
        if self.pod.uplinks != 0 && self.pod.uplinks != required {
            return Err(FabricError::UplinkMismatch {
                expected: required,
                got: self.pod.uplinks,
            });
        }
        if self.l3_routing && !self.arp_proxy {
            return Err(FabricError::L3NeedsArpProxy);
        }
        if let Some(gw) = self.gateway {
            if !self.l3_routing {
                return Err(FabricError::GatewayNeedsL3);
            }
            if gw.pod >= usize::from(self.n_pods) {
                return Err(FabricError::NoSuchPod {
                    pod: gw.pod,
                    n_pods: usize::from(self.n_pods),
                });
            }
            if !(1..=self.pod.n_access_ports).contains(&gw.port) {
                return Err(FabricError::NotAnAccessPort {
                    pod: gw.pod,
                    port: gw.port,
                });
            }
        }
        PortMap::new(self.pod.vlan_base, self.pod.n_access_ports)?;
        Ok(())
    }

    /// Instantiate the fabric in `net`: build every pod, add the uplink
    /// ports, and wire the interconnect. Hosts, direct configuration,
    /// controller connections and migration waves are driven off the
    /// returned [`Fabric`].
    pub fn build(self, net: &mut Network) -> Result<Fabric, FabricError> {
        self.validate()?;
        let uplinks = if self.pod.uplinks != 0 {
            self.pod.uplinks
        } else {
            self.required_uplinks()
        };
        let multi = self.n_pods > 1;
        let mut pods = Vec::with_capacity(usize::from(self.n_pods));
        for p in 0..self.n_pods {
            let mut spec = self.pod.clone().with_uplinks(uplinks);
            if multi {
                // Per-pod identities; the single-pod fabric keeps the
                // classic names/dpids so it is a drop-in for the
                // standalone instance.
                spec = spec
                    .with_name_prefix(format!("{}pod{p}/", self.pod.name_prefix))
                    .with_dpids(
                        POD_SS1_DPID_BASE + u64::from(p),
                        POD_SS2_DPID_BASE + u64::from(p),
                    );
            }
            pods.push(spec.build(net));
        }
        let n = self.pod.n_access_ports;
        let spine = match self.interconnect {
            Interconnect::None => None,
            Interconnect::Line => {
                for p in 0..usize::from(self.n_pods) - 1 {
                    // Right uplink (n+1) of pod p to left uplink (n+2)
                    // of pod p+1.
                    net.connect(
                        pods[p].ss2,
                        PortId(n + 1),
                        pods[p + 1].ss2,
                        PortId(n + 2),
                        self.uplink_link,
                    );
                }
                None
            }
            Interconnect::SpineSoft => {
                let mut spine = self
                    .pod
                    .clone()
                    .with_name_prefix(String::new())
                    .soft_switch_node("spine", self.spine_dpid);
                for p in 1..=self.n_pods {
                    spine.add_port(u32::from(p), format!("pod{}", p - 1), 10_000_000);
                }
                let spine = net.add_node(spine);
                for (p, pod) in pods.iter().enumerate() {
                    net.connect(
                        spine,
                        PortId(p as u16 + 1),
                        pod.ss2,
                        PortId(n + 1),
                        self.uplink_link,
                    );
                }
                Some(Spine::Soft(spine))
            }
            Interconnect::SpineLegacy => {
                let spine = net.add_node(LegacySwitchNode::new("spine", self.n_pods));
                for (p, pod) in pods.iter().enumerate() {
                    net.connect(
                        spine,
                        PortId(p as u16 + 1),
                        pod.ss2,
                        PortId(n + 1),
                        self.uplink_link,
                    );
                }
                Some(Spine::Legacy(spine))
            }
        };
        Ok(Fabric {
            spec: self,
            pods,
            spine,
            attached: BTreeMap::new(),
            host_ports: std::collections::BTreeSet::new(),
            station_ports: std::collections::BTreeSet::new(),
            controller: None,
            backup_controller: None,
            internet: None,
        })
    }
}

/// The fabric's interconnect switch, when it has one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spine {
    /// A software-switch spine (one more datapath of the controller).
    Soft(NodeId),
    /// A legacy Ethernet spine (self-learning, controller-free).
    Legacy(NodeId),
}

impl Spine {
    /// The spine's simulator node.
    pub fn node(&self) -> NodeId {
        match self {
            Spine::Soft(n) | Spine::Legacy(n) => *n,
        }
    }
}

/// Per-datapath `(dpid, port)` pairs — the location half of a
/// [`HostRoute`] (output ports, or reflection-guard ports).
type DpidPorts = Vec<(u64, u32)>;

/// A built multi-pod HARMLESS fabric.
pub struct Fabric {
    /// The spec it was built from.
    pub spec: FabricSpec,
    pods: Vec<HarmlessInstance>,
    spine: Option<Spine>,
    attached: BTreeMap<(usize, u16), NodeId>,
    /// The subset of `attached` created by [`Fabric::attach_host`] —
    /// stations that actually carry the fabric-wide `(IP, MAC)` identity
    /// and therefore belong in the ARP-proxy host table (arbitrary
    /// [`Fabric::attach_node`] devices do not).
    host_ports: std::collections::BTreeSet<(usize, u16)>,
    /// Ports taken by [`Fabric::attach_station`] devices — these carry
    /// the *port's* fabric identity, and in L3 mode get a local `/32`
    /// route like hosts do.
    station_ports: std::collections::BTreeSet<(usize, u16)>,
    /// Set by [`Fabric::connect_controller`]; where ARP-proxy host
    /// routes are synced when [`FabricSpec::arp_proxy`] is on.
    controller: Option<NodeId>,
    /// Warm-standby controller set by
    /// [`Fabric::connect_backup_controller`]; switches dial it only
    /// after declaring the primary dead.
    backup_controller: Option<NodeId>,
    /// The upstream host placed by [`Fabric::attach_internet`].
    internet: Option<NodeId>,
}

impl Fabric {
    /// Number of pods.
    pub fn n_pods(&self) -> usize {
        self.pods.len()
    }

    /// Handle of pod `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range; use [`Self::try_pod`] to probe.
    pub fn pod(&self, i: usize) -> &HarmlessInstance {
        &self.pods[i]
    }

    /// Handle of pod `i`, if it exists.
    pub fn try_pod(&self, i: usize) -> Option<&HarmlessInstance> {
        self.pods.get(i)
    }

    /// Iterate over all pods.
    pub fn pods(&self) -> impl Iterator<Item = &HarmlessInstance> {
        self.pods.iter()
    }

    /// The interconnect switch, if the fabric has one.
    pub fn spine(&self) -> Option<Spine> {
        self.spine
    }

    fn check_pod(&self, pod: usize) -> Result<&HarmlessInstance, FabricError> {
        self.pods.get(pod).ok_or(FabricError::NoSuchPod {
            pod,
            n_pods: self.pods.len(),
        })
    }

    fn check_access(&self, pod: usize, port: u16) -> Result<(), FabricError> {
        let px = self.check_pod(pod)?;
        if !(1..=px.spec.n_access_ports).contains(&port) {
            return Err(FabricError::NotAnAccessPort { pod, port });
        }
        Ok(())
    }

    /// Fabric-wide IPv4 address of the host on `(pod, port)`:
    /// `10.<pod>.<(port-1)/250>.<1+(port-1)%250>`. Pod 0 matches the
    /// classic single-instance `10.0.0.<port>` scheme for the first 250
    /// ports.
    ///
    /// # Panics
    /// Panics on a pod index or access port this fabric does not have —
    /// silently aliasing a neighbouring host's address would be worse.
    pub fn host_ip(&self, pod: usize, port: u16) -> Ipv4Addr {
        self.check_access(pod, port)
            .expect("host_ip of an existing (pod, access port)");
        let i = u32::from(port) - 1;
        Ipv4Addr::new(10, pod as u8, (i / 250) as u8, (1 + i % 250) as u8)
    }

    /// Fabric-wide MAC address of the host on `(pod, port)` — the pod
    /// index in the third-lowest octet keeps MACs unique across pods
    /// while pod 0 matches the classic `MacAddr::host(port)` scheme.
    ///
    /// # Panics
    /// Panics on a pod index or access port this fabric does not have.
    pub fn host_mac(&self, pod: usize, port: u16) -> netpkt::MacAddr {
        self.check_access(pod, port)
            .expect("host_mac of an existing (pod, access port)");
        netpkt::MacAddr::host((pod as u32) << 16 | u32::from(port))
    }

    /// Attach a host to access port `port` of pod `pod`, with the
    /// fabric-wide identity of [`Self::host_ip`] / [`Self::host_mac`].
    /// Duplicate `(pod, port)` attachments are rejected — each access
    /// port carries exactly one station. With [`FabricSpec::arp_proxy`]
    /// set and a controller connected, the host's identity and route are
    /// registered with the controller's [`ArpProxy`] app.
    pub fn attach_host(
        &mut self,
        net: &mut Network,
        pod: usize,
        port: u16,
    ) -> Result<NodeId, FabricError> {
        self.check_access(pod, port)?;
        if self.attached.contains_key(&(pod, port)) {
            return Err(FabricError::DuplicateHostPort { pod, port });
        }
        let px = &self.pods[pod];
        let h = net.add_node(Host::new(
            format!("{}h{port}", px.spec.name_prefix),
            self.host_mac(pod, port),
            self.host_ip(pod, port),
        ));
        self.attached.insert((pod, port), h);
        self.host_ports.insert((pod, port));
        self.pods[pod].attach_node(net, port, h);
        if self.spec.arp_proxy && self.controller.is_some() {
            let route = self.host_route(pod, port);
            self.push_route(net, route);
        }
        self.sync_l3(net);
        Ok(h)
    }

    /// The fabric-wide [`HostRoute`] of the host on `(pod, port)`: its
    /// [`Self::host_ip`] / [`Self::host_mac`] identity plus, for every
    /// datapath the controller serves, the port that leads toward it —
    /// the pod's own access port at its home SS_2, the uplink
    /// (direction-aware for [`Interconnect::Line`]) everywhere else, and
    /// the pod-facing spine port on a [`Interconnect::SpineSoft`] spine.
    /// [`Interconnect::SpineLegacy`] routes additionally carry
    /// reflection guards: the legacy spine floods unknown destinations,
    /// and a flood copy arriving at a pod that does not host the MAC
    /// must be dropped, not bounced back out of the uplink it came in
    /// on.
    ///
    /// # Panics
    /// Panics on a pod index or access port this fabric does not have.
    pub fn host_route(&self, pod: usize, port: u16) -> HostRoute {
        self.check_access(pod, port)
            .expect("host_route of an existing (pod, access port)");
        let (ports, guards) = self.route_location(pod, port);
        HostRoute {
            ip: self.host_ip(pod, port),
            mac: self.host_mac(pod, port),
            ports,
            guards,
        }
    }

    /// The location half of a [`HostRoute`] for a station attached at
    /// `(pod, port)`: per-dpid output ports and reflection guards.
    /// Identity (IP/MAC) is the caller's business — a migrated host
    /// keeps the identity of its original attach point while its
    /// location follows it around the fabric.
    fn route_location(&self, pod: usize, port: u16) -> (DpidPorts, DpidPorts) {
        // Per-prefix routing shrinks per-host state to the home pod:
        // inter-pod delivery rides the Router app's /16 aggregates, so
        // the only eth_dst rule a host needs is its own access port
        // (pod-local L2 traffic short-circuits the routed pipeline
        // there). No uplink routes, no spine entry, no guards.
        if self.spec.l3_routing {
            let dpid = self.pods[pod].spec.ss2_dpid;
            return (vec![(dpid, u32::from(port))], Vec::new());
        }
        let n = self.spec.pod.n_access_ports;
        let uplink_right = u32::from(n + 1);
        let uplink_left = u32::from(n + 2);
        let mut ports = Vec::with_capacity(self.pods.len() + 1);
        let mut guards = Vec::new();
        for (p, px) in self.pods.iter().enumerate() {
            let dpid = px.spec.ss2_dpid;
            if p == pod {
                ports.push((dpid, u32::from(port)));
                continue;
            }
            match self.spec.interconnect {
                Interconnect::None => {} // single-pod fabrics never get here
                Interconnect::Line => {
                    // Toward higher pods out of the right uplink, lower
                    // pods out of the left; transit frames enter on one
                    // and leave on the other, so no reflection guard is
                    // needed.
                    let out = if pod > p { uplink_right } else { uplink_left };
                    ports.push((dpid, out));
                }
                Interconnect::SpineSoft => ports.push((dpid, uplink_right)),
                Interconnect::SpineLegacy => {
                    ports.push((dpid, uplink_right));
                    guards.push((dpid, uplink_right));
                }
            }
        }
        if let Some(Spine::Soft(_)) = self.spine {
            ports.push((self.spec.spine_dpid, pod as u32 + 1));
        }
        (ports, guards)
    }

    /// Register one route with the connected controller's [`ArpProxy`].
    ///
    /// # Panics
    /// Panics if the controller node runs no [`ArpProxy`] app — the
    /// spec explicitly asked for proxying, so silently skipping it would
    /// quietly restore the O(hosts²) flood.
    fn push_route(&self, net: &mut Network, route: HostRoute) {
        let ctrl = self.controller.expect("push_route with a controller");
        if let Some(backup) = self.backup_controller {
            Self::push_route_to(net, backup, route.clone());
        }
        Self::push_route_to(net, ctrl, route);
    }

    /// Feed one host route into `ctrl`'s [`ArpProxy`]. The warm-standby
    /// backup gets the same feed as the primary so that, after a
    /// fail-over, it rebuilds an identical rule set.
    fn push_route_to(net: &mut Network, ctrl: NodeId, route: HostRoute) {
        net.node_mut::<ControllerNode>(ctrl)
            .app_mut::<ArpProxy>()
            .expect(
                "FabricSpec::arp_proxy is set, but the fabric controller \
                 has no ArpProxy app (chain one before the learning app)",
            )
            .add_host(route);
    }

    /// Flush pending [`ArpProxy`] retractions/installs to every ready
    /// datapath immediately, instead of waiting for the next controller
    /// tick. Safe without the proxy flag — it is then a no-op.
    fn sync_proxy_now(&self, net: &mut Network) {
        let Some(ctrl) = self.controller else { return };
        net.with_node_ctx::<ControllerNode, _>(ctrl, |c, ctx| {
            c.for_each_switch(ctx, |apps, sw| {
                if let Some(p) = apps
                    .iter_mut()
                    .find_map(|a| a.as_any_mut().downcast_mut::<ArpProxy>())
                {
                    p.sync_switch(sw);
                }
            });
        });
    }

    /// Next hop from pod `p` toward pod `q`: the uplink out-port and
    /// the MAC the routed frame is re-addressed to. Hop-by-hop on a
    /// [`Interconnect::Line`] (each transited pod routes onward), via
    /// the spine's own routing stage on [`Interconnect::SpineSoft`],
    /// and straight to the target pod's router MAC across a flooding
    /// [`Interconnect::SpineLegacy`] (the bridge learns router MACs
    /// like any others; guard rules contain its flood copies).
    fn l3_next_hop(&self, p: usize, q: usize) -> (u32, MacAddr) {
        let n = self.spec.pod.n_access_ports;
        let uplink_right = u32::from(n + 1);
        let uplink_left = u32::from(n + 2);
        match self.spec.interconnect {
            Interconnect::None => {
                unreachable!("single-pod fabrics route no inter-pod traffic")
            }
            Interconnect::Line => {
                if q > p {
                    (uplink_right, router_mac(p + 1))
                } else {
                    (uplink_left, router_mac(p - 1))
                }
            }
            Interconnect::SpineSoft => (uplink_right, SPINE_ROUTER_MAC),
            Interconnect::SpineLegacy => (uplink_right, router_mac(q)),
        }
    }

    /// Pod `p`'s routing personality under the current topology and
    /// attachment state: one `/16` per remote pod, one `/32` per
    /// locally attached station, and — with a gateway — the default
    /// route (NAT'd at the gateway pod itself).
    fn l3_pod_config(&self, net: &Network, p: usize) -> RouterConfig {
        let mut routes = Vec::new();
        for q in 0..self.pods.len() {
            if q == p {
                continue;
            }
            let (out_port, next_hop) = self.l3_next_hop(p, q);
            routes.push(PrefixRoute {
                prefix: Ipv4Addr::new(10, q as u8, 0, 0),
                len: 16,
                out_port,
                next_hop,
                nat: None,
            });
        }
        // Local delivery: identity from the attached node itself for
        // hosts (a migrated host keeps its original addresses), from
        // the port for stations (that is the identity they signed up
        // for in attach_station).
        for &(hp, hport) in self.host_ports.iter().filter(|&&(hp, _)| hp == p) {
            let hr = net.node_ref::<Host>(self.attached[&(hp, hport)]);
            routes.push(PrefixRoute {
                prefix: hr.ip(),
                len: 32,
                out_port: u32::from(hport),
                next_hop: hr.mac(),
                nat: None,
            });
        }
        for &(sp, sport) in self.station_ports.iter().filter(|&&(sp, _)| sp == p) {
            routes.push(PrefixRoute {
                prefix: self.host_ip(sp, sport),
                len: 32,
                out_port: u32::from(sport),
                next_hop: self.host_mac(sp, sport),
                nat: None,
            });
        }
        // Exception routes: a migrated host keeps its original address,
        // so the `/16` aggregate of its home pod no longer covers it. A
        // fabric-wide `/32` punches through the aggregate (longest
        // prefix wins) and steers toward wherever it lives now.
        for (ip, _, hp) in self.l3_exceptions(net) {
            if hp == p {
                continue; // already a local /32 above
            }
            let (out_port, next_hop) = self.l3_next_hop(p, hp);
            routes.push(PrefixRoute {
                prefix: ip,
                len: 32,
                out_port,
                next_hop,
                nat: None,
            });
        }
        let mut nat_external = None;
        if let Some(gw) = self.spec.gateway {
            if gw.pod == p {
                routes.push(PrefixRoute {
                    prefix: Ipv4Addr::UNSPECIFIED,
                    len: 0,
                    out_port: u32::from(gw.port),
                    next_hop: INTERNET_MAC,
                    nat: Some(NatDir::Egress),
                });
                nat_external = Some(gw.external_ip);
            } else {
                let (out_port, next_hop) = self.l3_next_hop(p, gw.pod);
                routes.push(PrefixRoute {
                    prefix: Ipv4Addr::UNSPECIFIED,
                    len: 0,
                    out_port,
                    next_hop,
                    nat: None,
                });
            }
        }
        let uplink_guards = if self.spec.interconnect == Interconnect::SpineLegacy {
            vec![u32::from(self.spec.pod.n_access_ports + 1)]
        } else {
            Vec::new()
        };
        RouterConfig {
            mac: router_mac(p),
            routes,
            nat_external,
            uplink_guards,
        }
    }

    /// Hosts living outside their address's home `/16` (migration
    /// keeps IP and MAC), as `(ip, mac, current pod)` — each needs a
    /// fabric-wide `/32` exception route.
    fn l3_exceptions(&self, net: &Network) -> Vec<(Ipv4Addr, MacAddr, usize)> {
        self.host_ports
            .iter()
            .filter_map(|&(hp, hport)| {
                let hr = net.node_ref::<Host>(self.attached[&(hp, hport)]);
                (usize::from(hr.ip().octets()[1]) != hp).then(|| (hr.ip(), hr.mac(), hp))
            })
            .collect()
    }

    /// A soft spine's routing personality: one `/16` per pod out of
    /// its pod-facing port, plus `/32` exceptions for migrated hosts
    /// and the default route toward the gateway pod. The spine is a
    /// real routed hop (TTL decrement, ICMP time-exceeded under its
    /// own identity).
    fn l3_spine_config(&self, net: &Network) -> RouterConfig {
        let mut routes: Vec<PrefixRoute> = (0..self.pods.len())
            .map(|q| PrefixRoute {
                prefix: Ipv4Addr::new(10, q as u8, 0, 0),
                len: 16,
                out_port: q as u32 + 1,
                next_hop: router_mac(q),
                nat: None,
            })
            .collect();
        for (ip, _, hp) in self.l3_exceptions(net) {
            routes.push(PrefixRoute {
                prefix: ip,
                len: 32,
                out_port: hp as u32 + 1,
                next_hop: router_mac(hp),
                nat: None,
            });
        }
        if let Some(gw) = self.spec.gateway {
            routes.push(PrefixRoute {
                prefix: Ipv4Addr::UNSPECIFIED,
                len: 0,
                out_port: gw.pod as u32 + 1,
                next_hop: router_mac(gw.pod),
                nat: None,
            });
        }
        RouterConfig {
            mac: SPINE_ROUTER_MAC,
            routes,
            nat_external: None,
            uplink_guards: Vec::new(),
        }
    }

    /// Recompute every datapath's routing personality from the live
    /// attachment state, hand the configs to the controller's
    /// [`Router`] app, set the dataplane identities the rules depend
    /// on (router MAC/IP for ICMP errors, the gateway's NAT table),
    /// and flush to every ready datapath. Identical configs are
    /// no-ops end to end, so this is safe to call on every attach,
    /// detach and migrate.
    ///
    /// # Panics
    /// Panics if the controller runs no [`Router`] app while
    /// [`FabricSpec::l3_routing`] is set — silently skipping it would
    /// leave inter-pod traffic blackholed at the first classifier.
    fn sync_l3(&self, net: &mut Network) {
        if !self.spec.l3_routing {
            return;
        }
        let Some(ctrl) = self.controller else { return };
        let mut configs: Vec<(u64, RouterConfig)> = (0..self.pods.len())
            .map(|p| (self.pods[p].spec.ss2_dpid, self.l3_pod_config(net, p)))
            .collect();
        if let Some(Spine::Soft(_)) = self.spine {
            configs.push((self.spec.spine_dpid, self.l3_spine_config(net)));
        }
        for c in [Some(ctrl), self.backup_controller].into_iter().flatten() {
            let r = net
                .node_mut::<ControllerNode>(c)
                .app_mut::<Router>()
                .expect(
                    "FabricSpec::l3_routing is set, but the fabric controller \
                     has no Router app (chain one after the ArpProxy)",
                );
            for (dpid, cfg) in &configs {
                r.set_config(*dpid, cfg.clone());
            }
        }
        for (p, px) in self.pods.iter().enumerate() {
            let dp = net.node_mut::<SoftSwitchNode>(px.ss2).datapath_mut();
            if dp.router() != Some((router_ip(p), router_mac(p))) {
                dp.set_router(router_ip(p), router_mac(p));
            }
            if let Some(gw) = self.spec.gateway.filter(|g| g.pod == p) {
                if dp.nat().external_ip() != Some(gw.external_ip) {
                    dp.configure_nat(NatConfig::new(gw.external_ip));
                }
            }
        }
        if let Some(Spine::Soft(s)) = self.spine {
            let dp = net.node_mut::<SoftSwitchNode>(s).datapath_mut();
            if dp.router() != Some((SPINE_ROUTER_IP, SPINE_ROUTER_MAC)) {
                dp.set_router(SPINE_ROUTER_IP, SPINE_ROUTER_MAC);
            }
        }
        self.sync_router_now(net);
    }

    /// Flush pending [`Router`] retractions/installs to every ready
    /// datapath immediately, instead of waiting for the next
    /// controller tick.
    fn sync_router_now(&self, net: &mut Network) {
        let Some(ctrl) = self.controller else { return };
        net.with_node_ctx::<ControllerNode, _>(ctrl, |c, ctx| {
            c.for_each_switch(ctx, |apps, sw| {
                if let Some(r) = apps
                    .iter_mut()
                    .find_map(|a| a.as_any_mut().downcast_mut::<Router>())
                {
                    r.sync_switch(sw);
                }
            });
        });
    }

    /// Place the upstream "internet" host at the gateway's access
    /// port: a plain [`Host`] with the [`GatewaySpec::internet_ip`]
    /// identity, answering from behind nothing while the fabric's
    /// hosts answer from behind the NAT. With the ARP proxy on, the
    /// address is registered for who-has answering only — no
    /// `eth_dst` routes anywhere, reaching it is the default route's
    /// job.
    pub fn attach_internet(&mut self, net: &mut Network) -> Result<NodeId, FabricError> {
        let Some(gw) = self.spec.gateway else {
            return Err(FabricError::NoGateway);
        };
        let h = net.add_node(Host::new("internet", INTERNET_MAC, gw.internet_ip));
        self.attach_node(net, gw.pod, gw.port, h)?;
        self.internet = Some(h);
        if self.spec.arp_proxy && self.controller.is_some() {
            self.push_route(
                net,
                HostRoute {
                    ip: gw.internet_ip,
                    mac: INTERNET_MAC,
                    ports: Vec::new(),
                    guards: Vec::new(),
                },
            );
            self.sync_proxy_now(net);
        }
        Ok(h)
    }

    /// The upstream host placed by [`Fabric::attach_internet`], if any.
    pub fn internet_node(&self) -> Option<NodeId> {
        self.internet
    }

    /// Detach the station on `(pod, port)`: cut its access link (frames
    /// queued on it are blackholed, as on any cable pull) and free the
    /// port for a new attachment. For [`Self::attach_host`] stations
    /// with the ARP proxy on, the host's entry is removed and its
    /// proactive routes are retracted fabric-wide right away — leaving
    /// them would blackhole every frame for that MAC at its old edge.
    /// Returns the detached node.
    pub fn detach_host(
        &mut self,
        net: &mut Network,
        pod: usize,
        port: u16,
    ) -> Result<NodeId, FabricError> {
        self.check_access(pod, port)?;
        let Some(&h) = self.attached.get(&(pod, port)) else {
            return Err(FabricError::NothingAttached { pod, port });
        };
        self.attached.remove(&(pod, port));
        let carries_identity = self.host_ports.remove(&(pod, port));
        self.station_ports.remove(&(pod, port));
        net.disconnect(h, PortId(0));
        if let Some(ctrl) = self
            .controller
            .filter(|_| carries_identity && self.spec.arp_proxy)
        {
            let ip = net.node_ref::<Host>(h).ip();
            for c in [Some(ctrl), self.backup_controller].into_iter().flatten() {
                net.node_mut::<ControllerNode>(c)
                    .app_mut::<ArpProxy>()
                    .expect("arp_proxy flag verified on attach")
                    .remove_host(ip);
            }
            self.sync_proxy_now(net);
        }
        self.sync_l3(net);
        Ok(h)
    }

    /// Move the host on `from` to the access port `to` — possibly in a
    /// different pod — keeping its `(IP, MAC)` identity (that is the
    /// whole point: a VM migrates, its addresses travel with it). The
    /// old access link is cut, the host re-attaches at `to`, and with
    /// the ARP proxy on its routes are *retracted and re-installed for
    /// the new location in one sync*, deletes first — without the
    /// retraction the stale `eth_dst` routes at the old pod would keep
    /// matching and silently blackhole all traffic to the moved host.
    ///
    /// Callable between `run_*` calls; re-derive [`Self::shard_map`]
    /// afterwards if the fabric is sharded, so the host's events live on
    /// its new pod's shard.
    pub fn migrate_host(
        &mut self,
        net: &mut Network,
        from: (usize, u16),
        to: (usize, u16),
    ) -> Result<NodeId, FabricError> {
        self.check_access(from.0, from.1)?;
        self.check_access(to.0, to.1)?;
        if self.attached.contains_key(&to) {
            return Err(FabricError::DuplicateHostPort {
                pod: to.0,
                port: to.1,
            });
        }
        if !self.host_ports.contains(&from) {
            return Err(FabricError::NothingAttached {
                pod: from.0,
                port: from.1,
            });
        }
        let h = self.attached.remove(&from).expect("host_ports ⊆ attached");
        self.host_ports.remove(&from);
        net.disconnect(h, PortId(0));
        self.attached.insert(to, h);
        self.host_ports.insert(to);
        self.pods[to.0].attach_node(net, to.1, h);
        if self.spec.arp_proxy && self.controller.is_some() {
            let (ip, mac) = {
                let hr = net.node_ref::<Host>(h);
                (hr.ip(), hr.mac())
            };
            let (ports, guards) = self.route_location(to.0, to.1);
            self.push_route(
                net,
                HostRoute {
                    ip,
                    mac,
                    ports,
                    guards,
                },
            );
            self.sync_proxy_now(net);
        }
        self.sync_l3(net);
        Ok(h)
    }

    /// Attach an arbitrary node (generator/sink) to `(pod, port)` on its
    /// port 0, with the same duplicate-port bookkeeping as
    /// [`Self::attach_host`].
    pub fn attach_node(
        &mut self,
        net: &mut Network,
        pod: usize,
        port: u16,
        node: NodeId,
    ) -> Result<(), FabricError> {
        self.check_access(pod, port)?;
        if self.attached.contains_key(&(pod, port)) {
            return Err(FabricError::DuplicateHostPort { pod, port });
        }
        self.attached.insert((pod, port), node);
        self.pods[pod].attach_node(net, port, node);
        Ok(())
    }

    /// Attach a measurement station (traffic generator or sink) at
    /// `(pod, port)` and, with the ARP proxy on, register the port's
    /// fabric identity ([`Self::host_ip`] / [`Self::host_mac`]) with the
    /// proxy. Sinks never transmit, so reactive learning alone would
    /// flood every frame destined to them fabric-wide forever; the
    /// proactive route keeps station traffic unicast. The station's
    /// flows should use the port's fabric identity as their addresses.
    pub fn attach_station(
        &mut self,
        net: &mut Network,
        pod: usize,
        port: u16,
        node: NodeId,
    ) -> Result<(), FabricError> {
        self.attach_node(net, pod, port, node)?;
        self.station_ports.insert((pod, port));
        if self.spec.arp_proxy && self.controller.is_some() {
            let route = self.host_route(pod, port);
            self.push_route(net, route);
        }
        self.sync_l3(net);
        Ok(())
    }

    /// The node attached to `(pod, port)`, if any.
    pub fn attached_node(&self, pod: usize, port: u16) -> Option<NodeId> {
        self.attached.get(&(pod, port)).copied()
    }

    /// The promotable flow-level bundle of a station pair: the ordered
    /// hops frames traverse from the [`Generator`] at `src = (pod,
    /// port)` to the [`Sink`] at `dst`, cache-residency probes for
    /// every hop whose ingress frames are reconstructible, and one
    /// endpoint per link on the path — everything
    /// [`netsim::flowsim::FlowSim::add_bundle`] needs.
    ///
    /// Probes are the generator's [`Generator::probe_frame`] templates:
    /// VLAN-tagged with the source port's access VLAN at the source
    /// SS_1 (that is what the legacy switch puts on the trunk),
    /// untagged at the source SS_2. Past the source pod the frames stay
    /// byte-identical only without [`FabricSpec::with_l3_routing`] —
    /// per-hop L3 rewrites (MAC re-addressing, TTL) make downstream
    /// ingress frames non-reconstructible, so those hops carry no probe
    /// and are gated by their quiescence counters alone. Legacy
    /// switches never carry probes (no flow cache to probe).
    ///
    /// # Panics
    /// Panics if either end is not an existing access port with an
    /// attached node, if the generator at `src` is not a
    /// [`Generator`], or on a [`Variant::Merged`] pod — bundles assume
    /// the paper's two-switch data path.
    pub fn flow_bundle(
        &self,
        net: &Network,
        src: (usize, u16),
        dst: (usize, u16),
    ) -> FlowBundleSpec {
        let (sp, spt) = src;
        let (dp, dpt) = dst;
        let generator = self
            .attached_node(sp, spt)
            .expect("flow_bundle src has an attached generator");
        let sink = self
            .attached_node(dp, dpt)
            .expect("flow_bundle dst has an attached sink");
        let spod = &self.pods[sp];
        let dpod = &self.pods[dp];
        let src_ss1 = spod.ss1.expect("flow bundles need the two-switch variant");
        let dst_ss1 = dpod.ss1.expect("flow bundles need the two-switch variant");
        let gen = net.node_ref::<Generator>(generator);
        let untagged: std::sync::Arc<[_]> =
            (0..gen.flows().len()).map(|i| gen.probe_frame(i)).collect();
        let vlan_src = spod.map.vlan_of(spt).expect("access port has a VLAN");
        let vlan_dst = dpod.map.vlan_of(dpt).expect("access port has a VLAN");
        let tagged: std::sync::Arc<[_]> = untagged
            .iter()
            .map(|f| push_vlan(f, VlanTag::new(vlan_src)).expect("probe frames are well-formed"))
            .collect();
        // Downstream of the source pod, probes exist only while frames
        // stay byte-identical (no L3 rewrites).
        let downstream = || (!self.spec.l3_routing).then(|| untagged.clone());
        let n = self.spec.pod.n_access_ports;
        let t = self.spec.pod.n_trunks;
        let tr_src = 1 + (vlan_src % t);
        let tr_dst = 1 + (vlan_dst % t);
        let mut hops = vec![
            FlowHop {
                node: spod.legacy,
                in_port: PortId(spt),
                probe: None,
            },
            FlowHop {
                node: src_ss1,
                in_port: PortId(tr_src),
                probe: Some(tagged),
            },
            FlowHop {
                node: spod.ss2,
                in_port: PortId(spt),
                probe: Some(untagged.clone()),
            },
        ];
        let mut links = vec![
            (generator, PortId(0)),
            (spod.legacy, PortId(n + tr_src)),
            (spod.ss2, PortId(spt)),
        ];
        if sp != dp {
            match self.spec.interconnect {
                Interconnect::None => {
                    unreachable!("multi-pod fabrics always have an interconnect")
                }
                Interconnect::Line => {
                    // Transit pods route the frame onward; it arrives on
                    // the uplink facing the source side.
                    let arrive = if dp > sp {
                        PortId(n + 2)
                    } else {
                        PortId(n + 1)
                    };
                    let mut p = sp;
                    while p != dp {
                        p = if dp > sp { p + 1 } else { p - 1 };
                        hops.push(FlowHop {
                            node: self.pods[p].ss2,
                            in_port: arrive,
                            probe: downstream(),
                        });
                    }
                    for p in sp.min(dp)..sp.max(dp) {
                        links.push((self.pods[p].ss2, PortId(n + 1)));
                    }
                }
                Interconnect::SpineSoft | Interconnect::SpineLegacy => {
                    let spine = self.spine.expect("spine interconnects build a spine");
                    let probe = match spine {
                        Spine::Soft(_) => downstream(),
                        Spine::Legacy(_) => None,
                    };
                    hops.push(FlowHop {
                        node: spine.node(),
                        in_port: PortId(sp as u16 + 1),
                        probe,
                    });
                    hops.push(FlowHop {
                        node: dpod.ss2,
                        in_port: PortId(n + 1),
                        probe: downstream(),
                    });
                    links.push((spod.ss2, PortId(n + 1)));
                    links.push((dpod.ss2, PortId(n + 1)));
                }
            }
        }
        hops.push(FlowHop {
            node: dst_ss1,
            in_port: PortId(patch_port(dpt) as u16),
            probe: downstream(),
        });
        hops.push(FlowHop {
            node: dpod.legacy,
            in_port: PortId(n + tr_dst),
            probe: None,
        });
        links.push((dpod.ss2, PortId(dpt)));
        links.push((dpod.legacy, PortId(n + tr_dst)));
        links.push((sink, PortId(0)));
        FlowBundleSpec {
            generator,
            sink,
            hops,
            links,
        }
    }

    /// Aggregate measurement rollup of pod `pod`: every attached
    /// [`Sink`]'s frames, bytes and latency folded into one [`Rollup`].
    /// Flow-level engine counters are per-driver, not per-pod — fold
    /// them in with [`netsim::flowsim::HybridStats::roll_into`].
    pub fn pod_rollup(&self, net: &Network, pod: usize) -> Rollup {
        let mut r = Rollup::new();
        for (&(p, _port), &node) in &self.attached {
            if p == pod {
                if let Some(sink) = net.try_node_ref::<Sink>(node) {
                    sink.roll_into(&mut r);
                }
            }
        }
        r
    }

    /// The natural [`ShardMap`] of this fabric for the sharded event
    /// engine (`Network::set_shards`): pod `p`'s switches and attached
    /// stations go to shard `p + 1`; shard 0 — the *system shard* — keeps
    /// everything else (the spine, the controller, managers and any node
    /// this fabric does not know about). Pods only talk to each other
    /// through spine/line uplinks and to the controller through the
    /// control channel, so those are the only cross-shard edges and the
    /// engine's lookahead is `min(uplink delay, ctrl delay)`.
    ///
    /// Call after all hosts are attached; nodes attached later default to
    /// shard 0, which is correct for management nodes but serializes
    /// data-plane traffic of late-attached stations.
    pub fn shard_map(&self) -> ShardMap {
        let mut map = ShardMap::new(self.pods.len() + 1);
        for (p, pod) in self.pods.iter().enumerate() {
            map.assign(pod.legacy, p + 1);
            if let Some(ss1) = pod.ss1 {
                map.assign(ss1, p + 1);
            }
            map.assign(pod.ss2, p + 1);
        }
        for (&(pod, _port), &node) in &self.attached {
            map.assign(node, pod + 1);
        }
        map
    }

    /// Configure every pod through the direct (non-SNMP) path: legacy
    /// VLAN tagging plus translator rules. Experiments that are not
    /// about migration call this once instead of running managers.
    pub fn configure_direct(&self, net: &mut Network) {
        for pod in &self.pods {
            pod.configure_legacy_directly(net);
            pod.install_translator_rules(net);
        }
    }

    /// Register every pod's SS_2 — and a soft spine, if present — with
    /// the one fabric controller. Like
    /// [`HarmlessInstance::connect_controller`], call before the first
    /// `run_*` so the OpenFlow HELLOs go out on start; mid-run
    /// connections go through the manager's admin path instead.
    ///
    /// With [`FabricSpec::arp_proxy`] set, all hosts attached so far are
    /// registered with the controller's [`ArpProxy`] app (hosts attached
    /// afterwards register as they attach).
    pub fn connect_controller(&mut self, net: &mut Network, controller: NodeId) {
        for pod in &self.pods {
            pod.connect_controller(net, controller);
        }
        self.register_controller(net, controller);
    }

    /// Register `backup` as the warm-standby controller of every software
    /// switch (all SS_2s and a soft spine). A switch dials it only after
    /// declaring the primary dead; the backup then rebuilds each
    /// datapath's rules from the resulting re-handshakes. Build the
    /// backup [`ControllerNode`] with the same app chain as the primary
    /// (and a higher role generation); the fabric replays the routes and
    /// router configs registered so far into it here, and mirrors every
    /// later registration, so the rebuilt rule set matches the primary's.
    pub fn connect_backup_controller(&mut self, net: &mut Network, backup: NodeId) {
        self.for_each_softswitch(net, |sw| sw.add_backup_controller(backup));
        self.backup_controller = Some(backup);
        // Warm the standby: replay every proxy route and router config
        // already registered with the primary, and mirror all future
        // pushes (push_route / sync_l3 fan out to both from here on).
        if self.spec.arp_proxy {
            for route in self.proxy_routes(net) {
                Self::push_route_to(net, backup, route);
            }
        }
        self.sync_l3(net);
    }

    /// The configured backup controller, if any.
    pub fn backup_controller(&self) -> Option<NodeId> {
        self.backup_controller
    }

    /// Run `f` over every software switch of the fabric — each pod's SS_2
    /// and the soft spine, if present. Experiments use this to tune
    /// resilience knobs (fail mode, keepalive cadence, reconnect backoff)
    /// after the topology is built.
    pub fn for_each_softswitch(&self, net: &mut Network, mut f: impl FnMut(&mut SoftSwitchNode)) {
        for pod in &self.pods {
            f(net.node_mut::<SoftSwitchNode>(pod.ss2));
        }
        if let Some(Spine::Soft(spine)) = self.spine {
            f(net.node_mut::<SoftSwitchNode>(spine));
        }
    }

    /// Adopt `controller` as the fabric controller — spine hookup, ARP
    /// proxy bookkeeping, route registration — **without touching the
    /// pods**. Migration-wave scenarios use this: the pods join the
    /// controller later through their managers, and the routes
    /// registered here flow to each datapath when it eventually
    /// handshakes ([`ArpProxy`] replays its table on `on_switch_ready`).
    pub fn register_controller(&mut self, net: &mut Network, controller: NodeId) {
        self.connect_spine(net, controller);
        self.controller = Some(controller);
        if self.spec.arp_proxy {
            for route in self.proxy_routes(net) {
                self.push_route(net, route);
            }
        }
        self.sync_l3(net);
    }

    /// Proactive [`ArpProxy`] routes for every identity-carrying host
    /// attached so far, plus the internet gateway when configured.
    /// Identity comes from the attached node itself, not the port — a
    /// host migrated before the controller connected keeps the
    /// addresses of its original attach point.
    fn proxy_routes(&self, net: &Network) -> Vec<HostRoute> {
        let mut routes: Vec<HostRoute> = self
            .host_ports
            .iter()
            .map(|&(pod, port)| {
                let hr = net.node_ref::<Host>(self.attached[&(pod, port)]);
                let (ip, mac) = (hr.ip(), hr.mac());
                let (ports, guards) = self.route_location(pod, port);
                HostRoute {
                    ip,
                    mac,
                    ports,
                    guards,
                }
            })
            .collect();
        if let (Some(gw), Some(_)) = (self.spec.gateway, self.internet) {
            routes.push(HostRoute {
                ip: gw.internet_ip,
                mac: INTERNET_MAC,
                ports: Vec::new(),
                guards: Vec::new(),
            });
        }
        routes
    }

    /// Register only a [`Spine::Soft`] spine with the controller (no-op
    /// for legacy spines). Migration-wave scenarios use this: pods join
    /// the controller through their managers, but the spine is server
    /// infrastructure that must be connected from the start.
    pub fn connect_spine(&self, net: &mut Network, controller: NodeId) {
        if let Some(Spine::Soft(spine)) = self.spine {
            net.node_mut::<SoftSwitchNode>(spine)
                .connect_controller(controller);
        }
    }

    /// True once every pod's SS_2 has a controller configured.
    pub fn all_pods_connected(&self, net: &Network) -> bool {
        self.pods.iter().all(|p| p.ss2_has_controller(net))
    }

    /// Launch one [`HarmlessManager`] per listed pod, migrating those
    /// pods to SDN control over the live management plane (SNMP
    /// configure + verify, translator install, controller hookup).
    /// Returns the manager nodes, in `pods` order; poll them with
    /// [`Self::wave_done`]. Callable mid-run — managers start with the
    /// next processed event, which is what makes staged migration waves
    /// possible.
    pub fn run_migration_wave(
        &self,
        net: &mut Network,
        pods: &[usize],
        controller: NodeId,
    ) -> Result<Vec<NodeId>, FabricError> {
        let mut managers = Vec::with_capacity(pods.len());
        for &p in pods {
            let pod = self.check_pod(p)?;
            if pod.ss1.is_none() {
                return Err(FabricError::MergedVariant);
            }
            let cfg = ManagerConfig::for_instance(pod, controller);
            managers.push(net.add_node(HarmlessManager::new(cfg)));
        }
        Ok(managers)
    }

    /// True once every manager of a wave reports [`ManagerPhase::Done`].
    pub fn wave_done(&self, net: &Network, managers: &[NodeId]) -> bool {
        managers
            .iter()
            .all(|&m| *net.node_ref::<HarmlessManager>(m).phase() == ManagerPhase::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use controller::apps::LearningSwitch;
    use netsim::SimTime;
    use openflow::Match;

    fn learning_ctrl(net: &mut Network) -> NodeId {
        net.add_node(ControllerNode::new(
            "ctrl",
            vec![Box::new(LearningSwitch::new())],
        ))
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let pod = HarmlessSpec::new(4);
        assert_eq!(
            FabricSpec::new(0, pod.clone()).validate(),
            Err(FabricError::NoPods)
        );
        assert!(matches!(
            FabricSpec::new(201, pod.clone()).validate(),
            Err(FabricError::TooManyPods { max: 200, got: 201 })
        ));
        assert_eq!(
            FabricSpec::new(2, pod.clone())
                .with_interconnect(Interconnect::None)
                .validate(),
            Err(FabricError::MissingInterconnect)
        );
        assert_eq!(
            FabricSpec::new(2, pod.clone().with_variant(Variant::Merged)).validate(),
            Err(FabricError::MergedVariant)
        );
        // Pinned uplink count disagreeing with the interconnect.
        assert_eq!(
            FabricSpec::new(2, pod.clone().with_uplinks(2))
                .with_interconnect(Interconnect::SpineLegacy)
                .validate(),
            Err(FabricError::UplinkMismatch {
                expected: 1,
                got: 2
            })
        );
        assert_eq!(
            FabricSpec::new(3, pod.clone().with_uplinks(1))
                .with_interconnect(Interconnect::Line)
                .validate(),
            Err(FabricError::UplinkMismatch {
                expected: 2,
                got: 1
            })
        );
        // VLAN budget propagates.
        let mut big = HarmlessSpec::new(4000);
        big.vlan_base = 100;
        assert_eq!(
            FabricSpec::single(big).validate(),
            Err(FabricError::PortMap(PortMapError::VlanSpaceExhausted))
        );
        // And a good spec passes.
        assert_eq!(FabricSpec::new(2, pod).validate(), Ok(()));
    }

    #[test]
    fn attach_host_rejects_bad_and_duplicate_ports() {
        let mut net = Network::new(1);
        let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
            .build(&mut net)
            .unwrap();
        assert!(matches!(
            fx.attach_host(&mut net, 5, 1),
            Err(FabricError::NoSuchPod { pod: 5, n_pods: 2 })
        ));
        assert_eq!(
            fx.attach_host(&mut net, 1, 3).unwrap_err(),
            FabricError::NotAnAccessPort { pod: 1, port: 3 }
        );
        fx.attach_host(&mut net, 1, 2).unwrap();
        assert_eq!(
            fx.attach_host(&mut net, 1, 2).unwrap_err(),
            FabricError::DuplicateHostPort { pod: 1, port: 2 }
        );
        // Same port on the *other* pod is fine.
        fx.attach_host(&mut net, 0, 2).unwrap();
    }

    #[test]
    fn host_identities_are_globally_unique() {
        let mut net = Network::new(1);
        let fx = FabricSpec::new(3, HarmlessSpec::new(300))
            .build(&mut net)
            .unwrap();
        // Pod 0 keeps the classic scheme.
        assert_eq!(fx.host_ip(0, 2), Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(fx.host_mac(0, 2), netpkt::MacAddr::host(2));
        // Other pods move to their own /16.
        assert_eq!(fx.host_ip(2, 1), Ipv4Addr::new(10, 2, 0, 1));
        assert_eq!(fx.host_ip(1, 251), Ipv4Addr::new(10, 1, 1, 1));
        let mut ips = std::collections::HashSet::new();
        let mut macs = std::collections::HashSet::new();
        for pod in 0..3usize {
            for port in 1..=4u16 {
                assert!(ips.insert(fx.host_ip(pod, port)));
                assert!(macs.insert(fx.host_mac(pod, port)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "host_ip of an existing")]
    fn host_ip_rejects_addresses_outside_the_fabric() {
        let mut net = Network::new(1);
        let fx = FabricSpec::new(2, HarmlessSpec::new(4))
            .build(&mut net)
            .unwrap();
        let _ = fx.host_ip(2, 1); // no such pod
    }

    #[test]
    fn single_pod_fabric_matches_the_classic_instance() {
        let mut net = Network::new(42);
        let ctrl = learning_ctrl(&mut net);
        let mut fx = FabricSpec::single(HarmlessSpec::new(4))
            .build(&mut net)
            .unwrap();
        assert_eq!(fx.n_pods(), 1);
        assert!(fx.spine().is_none());
        // Classic dpid + no uplink ports.
        assert_eq!(fx.pod(0).spec.ss2_dpid, crate::instance::SS2_DPID);
        assert_eq!(fx.pod(0).spec.uplinks, 0);
        fx.configure_direct(&mut net);
        fx.connect_controller(&mut net, ctrl);
        assert!(fx.all_pods_connected(&net));
        let a = fx.attach_host(&mut net, 0, 1).unwrap();
        let _b = fx.attach_host(&mut net, 0, 2).unwrap();
        net.run_until(SimTime::from_millis(100));
        let ip = fx.host_ip(0, 2);
        net.with_node_ctx::<Host, _>(a, |h, ctx| {
            h.ping(b"single", ip);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(400));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
    }

    #[test]
    fn cross_pod_ping_over_every_interconnect() {
        for ic in [
            Interconnect::Line,
            Interconnect::SpineSoft,
            Interconnect::SpineLegacy,
        ] {
            let mut net = Network::new(77);
            let ctrl = learning_ctrl(&mut net);
            let mut fx = FabricSpec::new(3, HarmlessSpec::new(2))
                .with_interconnect(ic)
                .build(&mut net)
                .unwrap();
            fx.configure_direct(&mut net);
            fx.connect_controller(&mut net, ctrl);
            let a = fx.attach_host(&mut net, 0, 1).unwrap();
            let b = fx.attach_host(&mut net, 2, 1).unwrap();
            net.run_until(SimTime::from_millis(100));
            let ip = fx.host_ip(2, 1);
            net.with_node_ctx::<Host, _>(a, |h, ctx| {
                h.ping(b"cross-pod", ip);
                h.flush(ctx);
            });
            net.run_until(SimTime::from_millis(600));
            assert_eq!(
                net.node_ref::<Host>(a).echo_replies_received(),
                1,
                "{ic:?}: pod 0 must reach pod 2"
            );
            assert_eq!(net.node_ref::<Host>(b).echo_requests_answered(), 1);
            // The controller really serves several datapaths.
            let c = net.node_ref::<ControllerNode>(ctrl);
            assert!(c.packet_ins() > 0);
        }
    }

    #[test]
    fn shard_map_puts_pods_on_their_own_shards() {
        let mut net = Network::new(3);
        let ctrl = learning_ctrl(&mut net);
        let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
            .with_interconnect(Interconnect::SpineSoft)
            .build(&mut net)
            .unwrap();
        let a = fx.attach_host(&mut net, 0, 1).unwrap();
        let b = fx.attach_host(&mut net, 1, 1).unwrap();
        let map = fx.shard_map();
        assert_eq!(map.n_shards(), 3);
        assert_eq!(map.shard_of(ctrl), 0, "controller stays on system shard");
        assert_eq!(map.shard_of(fx.spine().unwrap().node()), 0);
        assert_eq!(map.shard_of(fx.pod(0).legacy), 1);
        assert_eq!(map.shard_of(fx.pod(0).ss2), 1);
        assert_eq!(map.shard_of(a), 1);
        assert_eq!(map.shard_of(fx.pod(1).ss2), 2);
        assert_eq!(map.shard_of(b), 2);
        assert_eq!(fx.attached_node(0, 1), Some(a));
        assert_eq!(fx.attached_node(0, 2), None);
    }

    #[test]
    fn sharded_fabric_pings_cross_pod_on_any_thread_count() {
        let run = |threads: Option<usize>| -> (u64, u64, u64) {
            let mut net = Network::new(77);
            let ctrl = learning_ctrl(&mut net);
            let mut fx = FabricSpec::new(3, HarmlessSpec::new(2))
                .with_interconnect(Interconnect::SpineSoft)
                .build(&mut net)
                .unwrap();
            fx.configure_direct(&mut net);
            fx.connect_controller(&mut net, ctrl);
            let a = fx.attach_host(&mut net, 0, 1).unwrap();
            let b = fx.attach_host(&mut net, 2, 1).unwrap();
            if let Some(t) = threads {
                net.set_shards(&fx.shard_map());
                net.set_threads(t);
            }
            net.run_until(SimTime::from_millis(100));
            let ip = fx.host_ip(2, 1);
            net.with_node_ctx::<Host, _>(a, |h, ctx| {
                h.ping(b"sharded", ip);
                h.flush(ctx);
            });
            net.run_until(SimTime::from_millis(600));
            (
                net.node_ref::<Host>(a).echo_replies_received(),
                net.node_ref::<Host>(b).echo_requests_answered(),
                net.events_processed(),
            )
        };
        let (r1, a1, e1) = run(Some(1));
        for threads in [2, 4] {
            assert_eq!(run(Some(threads)), (r1, a1, e1), "threads={threads}");
        }
        assert_eq!(r1, 1);
        assert_eq!(a1, 1);
        // And the sharded engine reaches the same converged state as the
        // classic single-queue loop.
        let (lr, la, _) = run(None);
        assert_eq!((lr, la), (r1, a1));
    }

    #[test]
    fn faulted_fabric_is_bit_identical_for_any_thread_count() {
        use netsim::FaultPlan;
        // A 4-pod fabric under live cross-pod traffic with an uplink
        // flap, a softswitch power-cycle and a legacy reboot. The fault
        // events ride the shard machinery, so every thread count — and
        // the classic unsharded loop — must produce the same replies,
        // the same blackhole count and the same event total.
        let run = |threads: Option<usize>| -> (u64, u64, u64, u64) {
            let mut net = Network::new(21);
            let ctrl = net.add_node(ControllerNode::new(
                "ctrl",
                vec![Box::new(ArpProxy::new()), Box::new(LearningSwitch::new())],
            ));
            let mut fx = FabricSpec::new(4, HarmlessSpec::new(2))
                .with_interconnect(Interconnect::SpineSoft)
                .with_arp_proxy(true)
                .build(&mut net)
                .unwrap();
            fx.configure_direct(&mut net);
            fx.connect_controller(&mut net, ctrl);
            let hosts: Vec<NodeId> = (0..4)
                .map(|p| fx.attach_host(&mut net, p, 1).unwrap())
                .collect();
            if let Some(t) = threads {
                net.set_shards(&fx.shard_map());
                net.set_threads(t);
            }
            let uplink = PortId(fx.pod(1).uplink_port(1) as u16);
            let plan = FaultPlan::new()
                .link_flap(
                    SimTime::from_millis(200),
                    SimTime::from_millis(100),
                    fx.pod(1).ss2,
                    uplink,
                )
                .reset(SimTime::from_millis(350), fx.pod(2).ss2)
                .reset(SimTime::from_millis(400), fx.pod(3).legacy);
            net.apply_faults(&plan);
            net.run_until(SimTime::from_millis(100));
            // Ping rounds spanning the whole fault window.
            for _ in 0..6 {
                for (p, &h) in hosts.iter().enumerate() {
                    let target = fx.host_ip((p + 1) % 4, 1);
                    net.with_node_ctx::<Host, _>(h, move |h, ctx| {
                        h.ping(b"fault", target);
                        h.flush(ctx);
                    });
                }
                net.run_for(SimTime::from_millis(100));
            }
            net.run_until(SimTime::from_millis(1500));
            let replies: u64 = hosts
                .iter()
                .map(|&h| net.node_ref::<Host>(h).echo_replies_received())
                .sum();
            let resets = net.node_ref::<SoftSwitchNode>(fx.pod(2).ss2).resets()
                + net.node_ref::<LegacySwitchNode>(fx.pod(3).legacy).reboots();
            (
                replies,
                net.blackholed_frames(),
                net.events_processed(),
                resets,
            )
        };
        let baseline = run(Some(1));
        assert_eq!(baseline.3, 2, "both scheduled resets fired");
        assert!(baseline.0 > 0, "traffic still flows around the faults");
        for threads in [2, 4] {
            assert_eq!(run(Some(threads)), baseline, "threads={threads}");
        }
        // The unsharded loop reaches the same converged state.
        let (ur, ub, _, ures) = run(None);
        assert_eq!((ur, ub, ures), (baseline.0, baseline.1, baseline.3));
    }

    #[test]
    fn backup_controller_takes_over_after_primary_crash() {
        use openflow::ControllerRole;
        // A warm-standby backup with the same app chain. Crash the
        // primary mid-run: every software switch must declare it dead,
        // fail over, and the backup must self-promote to master and
        // rebuild the exact fault-free rule set — bounded downtime,
        // zero stale rules, and the data plane keeps forwarding on its
        // proactive routes throughout the outage.
        let run = |crash: bool| {
            let mut net = Network::new(33);
            let apps = || -> Vec<Box<dyn controller::App>> {
                vec![Box::new(ArpProxy::new()), Box::new(LearningSwitch::new())]
            };
            let primary = net.add_node(
                ControllerNode::new("primary", apps()).with_role(ControllerRole::Master, 1),
            );
            let backup = net.add_node(
                ControllerNode::new("backup", apps()).with_role(ControllerRole::Slave, 2),
            );
            let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
                .with_interconnect(Interconnect::SpineSoft)
                .with_arp_proxy(true)
                .build(&mut net)
                .unwrap();
            fx.configure_direct(&mut net);
            fx.connect_controller(&mut net, primary);
            fx.connect_backup_controller(&mut net, backup);
            fx.for_each_softswitch(&mut net, |sw| {
                sw.set_keepalive(SimTime::from_millis(50), 2);
                sw.set_backoff(SimTime::from_millis(50), SimTime::from_millis(200));
            });
            let hosts: Vec<NodeId> = (0..2)
                .map(|p| fx.attach_host(&mut net, p, 1).unwrap())
                .collect();
            net.run_until(SimTime::from_millis(100));
            let round = |net: &mut Network| {
                for (p, &h) in hosts.iter().enumerate() {
                    let target = fx.host_ip((p + 1) % 2, 1);
                    net.with_node_ctx::<Host, _>(h, move |h, ctx| {
                        h.ping(b"failover", target);
                        h.flush(ctx);
                    });
                }
                net.run_for(SimTime::from_millis(100));
            };
            round(&mut net);
            round(&mut net);
            if crash {
                net.ctrl_down(primary);
                // Outage window: detection (2 × 50 ms of unanswered
                // probes), backoff, redial and re-handshake.
                net.run_for(SimTime::from_millis(400));
            }
            round(&mut net);
            round(&mut net);
            net.run_until(SimTime::from_millis(1500));
            let replies: u64 = hosts
                .iter()
                .map(|&h| net.node_ref::<Host>(h).echo_replies_received())
                .sum();
            // Canonical rule set of every software datapath: the
            // converged state must not depend on which controller
            // installed it.
            let switches = [fx.pod(0).ss2, fx.pod(1).ss2, fx.spine().unwrap().node()];
            let rules: Vec<Vec<String>> = switches
                .iter()
                .map(|&n| {
                    let mut v: Vec<String> = net
                        .node_ref::<SoftSwitchNode>(n)
                        .datapath()
                        .table(0)
                        .unwrap()
                        .entries()
                        .iter()
                        .map(|e| format!("{}|{:?}|{:?}", e.priority, e.match_, e.instructions))
                        .collect();
                    v.sort();
                    v
                })
                .collect();
            let mut failovers = 0u64;
            let mut all_up = true;
            let mut on_backup = true;
            fx.for_each_softswitch(&mut net, |sw| {
                failovers += sw.failovers();
                all_up &= sw.controller_link_up();
                on_backup &= sw.controller() == Some(backup);
            });
            let promoted = net.node_ref::<ControllerNode>(backup).promotions();
            let backup_role = net.node_ref::<ControllerNode>(backup).role();
            (
                replies,
                rules,
                failovers,
                all_up,
                on_backup,
                promoted,
                backup_role,
            )
        };
        let base = run(false);
        assert_eq!(base.0, 8, "fault-free: all pings answered");
        assert_eq!(base.2, 0, "fault-free: no failovers");
        assert_eq!(base.5, 0, "fault-free: the backup is never dialed");
        let crashed = run(true);
        assert_eq!(
            crashed.2, 3,
            "every software switch failed over exactly once"
        );
        assert!(crashed.3, "all control links re-established");
        assert!(crashed.4, "every switch now dials the backup");
        assert!(
            crashed.5 >= 1,
            "backup self-promoted on the first re-handshake"
        );
        assert_eq!(crashed.6, ControllerRole::Master);
        assert_eq!(
            crashed.0, base.0,
            "proactive routes keep the data plane forwarding through the outage"
        );
        assert_eq!(
            crashed.1, base.1,
            "rule sets converge to the fault-free state — no stale, no missing rules"
        );
    }

    /// Build a pods × hosts fabric (optionally with the ARP proxy),
    /// stagger one all-hosts cross-pod ping round, then a second
    /// (converged) round. Returns
    /// `(round-1 replies, round-1 packet-ins, round-2 packet-ins,
    ///   proxied answers, total hosts)`.
    fn ping_rounds(
        proxy: bool,
        interconnect: Interconnect,
        n_pods: u16,
        n_hosts: u16,
    ) -> (u64, u64, u64, u64, u64) {
        let mut net = Network::new(5);
        let apps: Vec<Box<dyn controller::App>> = if proxy {
            vec![Box::new(ArpProxy::new()), Box::new(LearningSwitch::new())]
        } else {
            vec![Box::new(LearningSwitch::new())]
        };
        let ctrl = net.add_node(ControllerNode::new("ctrl", apps));
        let mut fx = FabricSpec::new(n_pods, HarmlessSpec::new(n_hosts))
            .with_interconnect(interconnect)
            .with_arp_proxy(proxy)
            .build(&mut net)
            .unwrap();
        fx.configure_direct(&mut net);
        fx.connect_controller(&mut net, ctrl);
        let mut hosts: Vec<Vec<NodeId>> = Vec::new();
        for p in 0..usize::from(n_pods) {
            hosts.push(
                (1..=n_hosts)
                    .map(|i| fx.attach_host(&mut net, p, i).unwrap())
                    .collect(),
            );
        }
        net.run_until(SimTime::from_millis(100));
        let round = |net: &mut Network| {
            for i in 1..=n_hosts {
                for (p, pod_hosts) in hosts.iter().enumerate() {
                    let target = fx.host_ip((p + 1) % usize::from(n_pods), i);
                    let h = pod_hosts[usize::from(i) - 1];
                    net.with_node_ctx::<Host, _>(h, move |h, ctx| {
                        h.ping(b"proxy", target);
                        h.flush(ctx);
                    });
                }
                net.run_for(SimTime::from_micros(400));
            }
            net.run_for(SimTime::from_millis(400));
        };
        round(&mut net);
        let replies1: u64 = hosts
            .iter()
            .flatten()
            .map(|&h| net.node_ref::<Host>(h).echo_replies_received())
            .sum();
        let pi1 = net.node_ref::<ControllerNode>(ctrl).packet_ins();
        round(&mut net);
        let pi2 = net.node_ref::<ControllerNode>(ctrl).packet_ins() - pi1;
        let answered = if proxy {
            net.node_mut::<ControllerNode>(ctrl)
                .app_mut::<ArpProxy>()
                .unwrap()
                .answered()
        } else {
            0
        };
        let total = u64::from(n_pods) * u64::from(n_hosts);
        (replies1, pi1, pi2, answered, total)
    }

    #[test]
    fn arp_proxy_contains_round1_floods() {
        // Without the proxy: reactive learning, broadcast punts at every
        // datapath — packet-ins grow superlinearly with hosts.
        let (replies, pi1, pi2, _, total) = ping_rounds(false, Interconnect::SpineSoft, 3, 4);
        assert_eq!(replies, total);
        assert_eq!(pi2, 0);
        assert!(
            pi1 > total + 3,
            "reactive baseline floods: {pi1} packet-ins for {total} hosts"
        );
        // With the proxy: one ARP punt per host, answered at the pod
        // edge; proactive routes keep the unicast path silent.
        let (replies, pi1, pi2, answered, total) = ping_rounds(true, Interconnect::SpineSoft, 3, 4);
        assert_eq!(replies, total, "convergence is unchanged");
        assert_eq!(pi2, 0, "round 2 stays silent");
        assert!(
            pi1 <= total + 3,
            "round-1 packet-ins must be O(hosts): {pi1} > {total} + pods"
        );
        assert_eq!(answered, total, "every host's one ARP was proxied");
    }

    #[test]
    fn arp_proxy_guards_legacy_spine_reflections() {
        // A legacy spine floods unknown destinations; without the
        // reflection guards the proactive uplink routes would bounce
        // flood copies straight back and storm the fabric. The guarded
        // routes must converge with pod-edge-only punts.
        let (replies, pi1, pi2, answered, total) =
            ping_rounds(true, Interconnect::SpineLegacy, 3, 2);
        assert_eq!(replies, total);
        assert_eq!(pi2, 0);
        assert!(pi1 <= total + 3, "{pi1} packet-ins for {total} hosts");
        assert_eq!(answered, total);
    }

    #[test]
    fn host_routes_follow_the_interconnect() {
        let mut net = Network::new(1);
        let fx = FabricSpec::new(3, HarmlessSpec::new(4))
            .with_interconnect(Interconnect::SpineSoft)
            .build(&mut net)
            .unwrap();
        // Host (pod 1, port 2): home access port, uplinks elsewhere,
        // pod-facing port on the spine.
        let r = fx.host_route(1, 2);
        assert_eq!(r.ip, fx.host_ip(1, 2));
        assert_eq!(r.mac, fx.host_mac(1, 2));
        assert_eq!(
            r.ports,
            vec![
                (POD_SS2_DPID_BASE, 5),     // pod 0: uplink (4 access + 1)
                (POD_SS2_DPID_BASE + 1, 2), // home pod: access port
                (POD_SS2_DPID_BASE + 2, 5), // pod 2: uplink
                (SPINE_DPID, 2),            // spine: port pod+1
            ]
        );
        assert!(r.guards.is_empty(), "soft spines need no guards");

        // Line interconnect: direction-aware uplinks, no spine entry.
        let fx = FabricSpec::new(3, HarmlessSpec::new(4))
            .with_interconnect(Interconnect::Line)
            .build(&mut net)
            .unwrap();
        let r = fx.host_route(1, 3);
        assert_eq!(
            r.ports,
            vec![
                (POD_SS2_DPID_BASE, 5),     // pod 0 reaches pod 1 rightward
                (POD_SS2_DPID_BASE + 1, 3), // home
                (POD_SS2_DPID_BASE + 2, 6), // pod 2 reaches pod 1 leftward
            ]
        );

        // Legacy spine: uplink routes carry reflection guards.
        let fx = FabricSpec::new(2, HarmlessSpec::new(4))
            .with_interconnect(Interconnect::SpineLegacy)
            .build(&mut net)
            .unwrap();
        let r = fx.host_route(0, 1);
        assert_eq!(r.guards, vec![(POD_SS2_DPID_BASE + 1, 5)]);
    }

    #[test]
    #[should_panic(expected = "no ArpProxy app")]
    fn arp_proxy_flag_requires_the_app() {
        let mut net = Network::new(1);
        let ctrl = learning_ctrl(&mut net); // no ArpProxy in the chain
        let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
            .with_arp_proxy(true)
            .build(&mut net)
            .unwrap();
        fx.connect_controller(&mut net, ctrl);
        let _ = fx.attach_host(&mut net, 0, 1);
    }

    #[test]
    fn migrating_a_host_retracts_stale_routes_and_reroutes_traffic() {
        use controller::apps::arp_proxy::ROUTE_PRIORITY;
        use openflow::{Action, Instruction, Match};
        let mut net = Network::new(11);
        let ctrl = net.add_node(ControllerNode::new(
            "ctrl",
            vec![Box::new(ArpProxy::new()), Box::new(LearningSwitch::new())],
        ));
        let mut fx = FabricSpec::new(3, HarmlessSpec::new(2))
            .with_interconnect(Interconnect::SpineSoft)
            .with_arp_proxy(true)
            .build(&mut net)
            .unwrap();
        fx.configure_direct(&mut net);
        fx.connect_controller(&mut net, ctrl);
        let a = fx.attach_host(&mut net, 0, 1).unwrap();
        let b = fx.attach_host(&mut net, 1, 1).unwrap();
        net.run_until(SimTime::from_millis(100));
        let b_ip = fx.host_ip(1, 1);
        let b_mac = fx.host_mac(1, 1);
        // Warm the path: proxied ARP, then pod 0 → spine → pod 1.
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"before", b_ip);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(400));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);

        // Live-migrate b to pod 2, access port 2; its IP/MAC travel
        // with it. The proxy retracts the pod-1 routes and installs the
        // pod-2 ones in the same sync.
        fx.migrate_host(&mut net, (1, 1), (2, 2)).unwrap();
        net.run_until(SimTime::from_millis(450)); // control plane lands
        let blackholed_at_reconvergence = net.blackholed_frames();

        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"after", b_ip);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(900));
        assert_eq!(
            net.node_ref::<Host>(a).echo_replies_received(),
            2,
            "ping must reach the migrated host without re-ARPing"
        );
        assert_eq!(net.node_ref::<Host>(b).echo_requests_answered(), 2);
        assert_eq!(
            net.blackholed_frames(),
            blackholed_at_reconvergence,
            "zero packets blackholed after reconvergence"
        );

        // Every datapath holds exactly one prio-20 route for b's MAC,
        // and it points at the *new* location — in particular the old
        // home pod now routes b out of its uplink, not access port 1.
        let uplink = 3u32; // 2 access ports + 1
        for (node, expected_out, what) in [
            (fx.pod(0).ss2, uplink, "pod 0 uplink"),
            (
                fx.pod(1).ss2,
                uplink,
                "old home: uplink, not the stale access port",
            ),
            (fx.pod(2).ss2, 2, "new home: access port 2"),
            (fx.spine().unwrap().node(), 3, "spine: pod-2-facing port"),
        ] {
            let dp = net.node_ref::<SoftSwitchNode>(node);
            let routes: Vec<_> = dp
                .datapath()
                .table(0)
                .unwrap()
                .entries()
                .iter()
                .filter(|e| e.priority == ROUTE_PRIORITY && e.match_ == Match::new().eth_dst(b_mac))
                .collect();
            assert_eq!(routes.len(), 1, "{what}: one live route, no stale ones");
            assert_eq!(
                routes[0].instructions,
                vec![Instruction::ApplyActions(vec![Action::output(
                    expected_out
                )])],
                "{what}"
            );
        }
    }

    #[test]
    fn detach_host_retracts_routes_and_frees_the_port() {
        let mut net = Network::new(4);
        let ctrl = net.add_node(ControllerNode::new(
            "ctrl",
            vec![Box::new(ArpProxy::new()), Box::new(LearningSwitch::new())],
        ));
        let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
            .with_interconnect(Interconnect::SpineSoft)
            .with_arp_proxy(true)
            .build(&mut net)
            .unwrap();
        fx.configure_direct(&mut net);
        fx.connect_controller(&mut net, ctrl);
        let a = fx.attach_host(&mut net, 0, 1).unwrap();
        let _b = fx.attach_host(&mut net, 1, 1).unwrap();
        net.run_until(SimTime::from_millis(100));
        assert_eq!(
            fx.detach_host(&mut net, 1, 2).unwrap_err(),
            FabricError::NothingAttached { pod: 1, port: 2 }
        );
        fx.detach_host(&mut net, 1, 1).unwrap();
        assert_eq!(fx.attached_node(1, 1), None);
        // The proxy no longer answers for the detached IP...
        let gone = fx.host_ip(1, 1);
        assert_eq!(
            net.node_mut::<ControllerNode>(ctrl)
                .app_mut::<ArpProxy>()
                .unwrap()
                .lookup(gone),
            None
        );
        // ...pings toward it stall at ARP (the host queues them and
        // keeps retrying)...
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"ghost", gone);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(600));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 0);
        // ...and the port takes a fresh attachment, which revives the
        // IP: the queued ping resolves and both pings go through.
        let b2 = fx.attach_host(&mut net, 1, 1).unwrap();
        net.run_until(SimTime::from_millis(700));
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"reborn", gone);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(1500));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 2);
        assert_eq!(net.node_ref::<Host>(b2).echo_requests_answered(), 2);
    }

    /// A controller for routed fabrics: proxy answers who-has, router
    /// installs the per-prefix pipeline. No learning app — a router
    /// drops what it has no route for.
    fn l3_ctrl(net: &mut Network) -> NodeId {
        net.add_node(ControllerNode::new(
            "ctrl",
            vec![Box::new(ArpProxy::new()), Box::new(Router::new())],
        ))
    }

    /// Build an l3 (or l2 baseline) fabric of `n_pods`×`n_hosts`, run
    /// an all-pairs ping round, and report
    /// `(replies, blackholed frames, net, fabric, hosts)`.
    fn all_pairs_pings(
        l3: bool,
        interconnect: Interconnect,
        n_pods: u16,
        n_hosts: u16,
    ) -> (u64, u64, Network, Fabric) {
        let mut net = Network::new(13);
        let ctrl = if l3 {
            l3_ctrl(&mut net)
        } else {
            net.add_node(ControllerNode::new(
                "ctrl",
                vec![Box::new(ArpProxy::new()), Box::new(LearningSwitch::new())],
            ))
        };
        let mut spec = FabricSpec::new(n_pods, HarmlessSpec::new(n_hosts))
            .with_interconnect(interconnect)
            .with_arp_proxy(true);
        if l3 {
            spec = spec.with_l3_routing();
        }
        let mut fx = spec.build(&mut net).unwrap();
        fx.configure_direct(&mut net);
        fx.connect_controller(&mut net, ctrl);
        let mut hosts = Vec::new();
        for p in 0..usize::from(n_pods) {
            for i in 1..=n_hosts {
                hosts.push(((p, i), fx.attach_host(&mut net, p, i).unwrap()));
            }
        }
        net.run_until(SimTime::from_millis(100));
        for &((sp, si), h) in &hosts {
            for &((dp, di), _) in &hosts {
                if (sp, si) == (dp, di) {
                    continue;
                }
                let target = fx.host_ip(dp, di);
                net.with_node_ctx::<Host, _>(h, move |h, ctx| {
                    h.ping(b"pairs", target);
                    h.flush(ctx);
                });
            }
            net.run_for(SimTime::from_millis(2));
        }
        net.run_for(SimTime::from_millis(900));
        let replies: u64 = hosts
            .iter()
            .map(|&(_, h)| net.node_ref::<Host>(h).echo_replies_received())
            .sum();
        (replies, net.blackholed_frames(), net, fx)
    }

    #[test]
    fn l3_routing_matches_the_l2_fabric_on_every_interconnect() {
        for ic in [
            Interconnect::Line,
            Interconnect::SpineSoft,
            Interconnect::SpineLegacy,
        ] {
            let (l2_replies, l2_bh, _, _) = all_pairs_pings(false, ic, 3, 2);
            let (l3_replies, l3_bh, net, fx) = all_pairs_pings(true, ic, 3, 2);
            // 6 hosts, 30 directed pairs: identical reply sets, nothing
            // blackholed in either fabric.
            assert_eq!(l2_replies, 30, "{ic:?}: l2 baseline must converge");
            assert_eq!(l3_replies, l2_replies, "{ic:?}: l3 ≡ l2");
            assert_eq!((l2_bh, l3_bh), (0, 0), "{ic:?}: zero blackholes");
            // And the routed fabric did it with per-prefix state: every
            // SS_2's route table holds 2 inter-pod /16s + 2 local /32s,
            // no per-host inter-pod rules.
            for p in 0..fx.n_pods() {
                let dp = net.node_ref::<SoftSwitchNode>(fx.pod(p).ss2);
                let routes = dp
                    .datapath()
                    .table(controller::apps::router::ROUTE_TABLE)
                    .unwrap();
                let aggregates = routes
                    .entries()
                    .iter()
                    .filter(|e| e.priority < controller::apps::router::ROUTE_PRIORITY_BASE + 32)
                    .count();
                assert_eq!(aggregates, 2, "{ic:?} pod {p}: one /16 per remote pod");
                assert_eq!(routes.entries().len(), 4, "{ic:?} pod {p}: plus local /32s");
            }
        }
    }

    #[test]
    fn sixteen_pod_fabric_routes_with_per_prefix_state() {
        // The scaling claim: inter-pod reachability on a 16-pod fabric
        // out of ≤ pods+1 aggregate rules per datapath, where per-host
        // routing would need hosts×pods rules.
        let mut net = Network::new(4);
        let ctrl = l3_ctrl(&mut net);
        let mut fx = FabricSpec::new(16, HarmlessSpec::new(2))
            .with_interconnect(Interconnect::SpineSoft)
            .with_gateway(GatewaySpec::new(0, 2))
            .build(&mut net)
            .unwrap();
        fx.configure_direct(&mut net);
        fx.connect_controller(&mut net, ctrl);
        let mut hosts = Vec::new();
        for p in 0..16 {
            hosts.push(fx.attach_host(&mut net, p, 1).unwrap());
        }
        fx.attach_internet(&mut net).unwrap();
        net.run_until(SimTime::from_millis(200));
        // Far corner to far corner, and out through the NAT.
        let far = fx.host_ip(15, 1);
        let inet = fx.spec.gateway.unwrap().internet_ip;
        net.with_node_ctx::<Host, _>(hosts[3], move |h, ctx| {
            h.ping(b"far", far);
            h.ping(b"out", inet);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(900));
        assert_eq!(net.node_ref::<Host>(hosts[3]).echo_replies_received(), 2);
        for p in 0..16 {
            let dp = net.node_ref::<SoftSwitchNode>(fx.pod(p).ss2);
            let routes = dp
                .datapath()
                .table(controller::apps::router::ROUTE_TABLE)
                .unwrap();
            let aggregates = routes
                .entries()
                .iter()
                .filter(|e| e.priority < controller::apps::router::ROUTE_PRIORITY_BASE + 32)
                .count();
            // 15 remote /16s + the default route.
            assert!(
                aggregates <= 16 + 1,
                "pod {p}: {aggregates} aggregate rules, want ≤ pods+1"
            );
            // Against the L2 alternative: 16 hosts + internet would put
            // 17 eth_dst rules on *every* datapath; here non-local state
            // is bounded by the pod count, local state by pod size.
            assert!(
                routes.entries().len() <= 16 + 1 + 2,
                "pod {p}: routing table must stay per-prefix"
            );
        }
    }

    #[test]
    fn nat_gateway_round_trips_and_offloads_to_the_caches() {
        let mut net = Network::new(8);
        let ctrl = l3_ctrl(&mut net);
        let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
            .with_interconnect(Interconnect::Line)
            .with_gateway(GatewaySpec::new(1, 2))
            .build(&mut net)
            .unwrap();
        fx.configure_direct(&mut net);
        fx.connect_controller(&mut net, ctrl);
        let a = fx.attach_host(&mut net, 0, 1).unwrap();
        let inet_node = fx.attach_internet(&mut net).unwrap();
        net.run_until(SimTime::from_millis(100));
        let inet = fx.spec.gateway.unwrap().internet_ip;
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"first", inet);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(500));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
        let gw_dp = net.node_ref::<SoftSwitchNode>(fx.pod(1).ss2).datapath();
        assert_eq!(gw_dp.nat().created(), 1, "one ICMP connection");
        assert_eq!(gw_dp.nat().live_conns(), 1);
        let warm_hits = gw_dp.micro_cache().hits() + gw_dp.mega_cache().hits();
        // Established connection: the next packets replay from the
        // caches — the offload-on-first-packet shape.
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"second", inet);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(900));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 2);
        let gw_dp = net.node_ref::<SoftSwitchNode>(fx.pod(1).ss2).datapath();
        assert_eq!(gw_dp.nat().created(), 1, "no new connection state");
        assert!(
            gw_dp.micro_cache().hits() + gw_dp.mega_cache().hits() >= warm_hits + 2,
            "request and reply must both hit the caches on round 2"
        );
        assert_eq!(net.node_ref::<Host>(inet_node).echo_requests_answered(), 2);
        assert_eq!(net.blackholed_frames(), 0);
    }

    #[test]
    fn l3_migration_reconverges_with_zero_stale_routes() {
        let mut net = Network::new(19);
        let ctrl = l3_ctrl(&mut net);
        let mut fx = FabricSpec::new(3, HarmlessSpec::new(2))
            .with_interconnect(Interconnect::SpineSoft)
            .with_l3_routing()
            .build(&mut net)
            .unwrap();
        fx.configure_direct(&mut net);
        fx.connect_controller(&mut net, ctrl);
        let a = fx.attach_host(&mut net, 0, 1).unwrap();
        let b = fx.attach_host(&mut net, 1, 1).unwrap();
        net.run_until(SimTime::from_millis(100));
        let b_ip = fx.host_ip(1, 1);
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"before", b_ip);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(400));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);

        // b moves to pod 2; its IP/MAC travel with it. The router
        // recomputes wholesale: pod 1 loses the /32, pod 2 gains it.
        fx.migrate_host(&mut net, (1, 1), (2, 2)).unwrap();
        net.run_until(SimTime::from_millis(500));
        let blackholed_at_reconvergence = net.blackholed_frames();
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"after", b_ip);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(1000));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 2);
        assert_eq!(net.node_ref::<Host>(b).echo_requests_answered(), 2);
        assert_eq!(net.blackholed_frames(), blackholed_at_reconvergence);
        // Zero stale rules: b kept its 10.1.* address, so every pod
        // holds exactly one /32 exception for it — pods 0 and 1 steer
        // up toward pod 2, pod 2 delivers on the new access port. No
        // leftover rule points at the old port.
        let host_prio = controller::apps::router::ROUTE_PRIORITY_BASE + 32;
        let b_match = Match::new()
            .eth_type(netpkt::EtherType::IPV4.0)
            .ipv4_dst_masked(b_ip, Ipv4Addr::BROADCAST);
        let uplink = u32::from(fx.spec.pod.n_access_ports + 1);
        for (p, want_port) in [(0usize, uplink), (1, uplink), (2, 2)] {
            let dp = net.node_ref::<SoftSwitchNode>(fx.pod(p).ss2);
            let found: Vec<_> = dp
                .datapath()
                .table(controller::apps::router::ROUTE_TABLE)
                .unwrap()
                .entries()
                .iter()
                .filter(|e| e.priority == host_prio && e.match_ == b_match)
                .cloned()
                .collect();
            assert_eq!(found.len(), 1, "pod {p}: exactly one /32 for b");
            assert!(
                matches!(
                    found[0].instructions.first(),
                    Some(openflow::Instruction::ApplyActions(acts))
                        if matches!(acts.last(), Some(openflow::Action::Output { port, .. }) if *port == want_port)
                ),
                "pod {p}: /32 must steer out port {want_port}"
            );
        }
    }

    #[test]
    fn route_loops_die_by_ttl_not_by_meltdown() {
        use controller::apps::router::PrefixRoute;
        let mut net = Network::new(23);
        let ctrl = l3_ctrl(&mut net);
        let mut fx = FabricSpec::new(2, HarmlessSpec::new(2))
            .with_interconnect(Interconnect::Line)
            .with_l3_routing()
            .build(&mut net)
            .unwrap();
        fx.configure_direct(&mut net);
        fx.connect_controller(&mut net, ctrl);
        let a = fx.attach_host(&mut net, 0, 1).unwrap();
        net.run_until(SimTime::from_millis(100));
        // Sabotage: both pods claim 10.99.0.0/16 points at the other —
        // a classic transient routing loop, made permanent.
        let phantom = Ipv4Addr::new(10, 99, 0, 1);
        {
            let c = net.node_mut::<ControllerNode>(ctrl);
            let r = c.app_mut::<Router>().unwrap();
            for (p, q) in [(0usize, 1usize), (1, 0)] {
                let dpid = fx.pod(p).spec.ss2_dpid;
                let mut cfg = r.config(dpid).unwrap().clone();
                let (out_port, next_hop) = fx.l3_next_hop(p, q);
                cfg.routes.push(PrefixRoute {
                    prefix: Ipv4Addr::new(10, 99, 0, 0),
                    len: 16,
                    out_port,
                    next_hop,
                    nat: None,
                });
                r.set_config(dpid, cfg);
            }
            // The proxy must answer who-has for the phantom or the ping
            // never leaves the host.
            c.app_mut::<ArpProxy>().unwrap().add_host(HostRoute {
                ip: phantom,
                mac: netpkt::MacAddr::host(0xbeef),
                ports: Vec::new(),
                guards: Vec::new(),
            });
        }
        fx.sync_router_now(&mut net);
        net.run_until(SimTime::from_millis(200));
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"looped", phantom);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(2000));
        let expiries: u64 = (0..2)
            .map(|p| {
                net.node_ref::<SoftSwitchNode>(fx.pod(p).ss2)
                    .datapath()
                    .ttl_expired_total()
            })
            .sum();
        assert_eq!(expiries, 1, "the looped frame dies exactly once, by TTL");
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 0);
        // Bounded damage: one TTL's worth of hops, not a meltdown. A
        // frame looping without TTL protection would cross links until
        // the horizon and swamp the event count.
        assert!(
            net.events_processed() < 100_000,
            "loop must be TTL-bounded: {} events",
            net.events_processed()
        );
    }

    #[test]
    fn l3_spec_validation_and_attach_internet_guards() {
        let pod = HarmlessSpec::new(2);
        let mut spec = FabricSpec::new(2, pod.clone());
        spec.l3_routing = true; // bypass the builder's auto-enable
        assert_eq!(spec.validate(), Err(FabricError::L3NeedsArpProxy));
        let mut spec = FabricSpec::new(2, pod.clone());
        spec.gateway = Some(GatewaySpec::new(0, 1));
        assert_eq!(spec.validate(), Err(FabricError::GatewayNeedsL3));
        assert!(matches!(
            FabricSpec::new(2, pod.clone())
                .with_gateway(GatewaySpec::new(7, 1))
                .validate(),
            Err(FabricError::NoSuchPod { pod: 7, .. })
        ));
        assert!(matches!(
            FabricSpec::new(2, pod.clone())
                .with_gateway(GatewaySpec::new(0, 9))
                .validate(),
            Err(FabricError::NotAnAccessPort { port: 9, .. })
        ));
        assert_eq!(
            FabricSpec::new(2, pod.clone())
                .with_gateway(GatewaySpec::new(1, 2))
                .validate(),
            Ok(())
        );
        // attach_internet needs a gateway in the spec.
        let mut net = Network::new(1);
        let mut fx = FabricSpec::new(2, pod).build(&mut net).unwrap();
        assert_eq!(
            fx.attach_internet(&mut net).unwrap_err(),
            FabricError::NoGateway
        );
    }

    #[test]
    fn migration_waves_bring_pods_under_sdn_one_at_a_time() {
        let mut net = Network::new(99);
        let ctrl = learning_ctrl(&mut net);
        let mut fx = FabricSpec::new(2, HarmlessSpec::new(4))
            .with_interconnect(Interconnect::SpineLegacy)
            .build(&mut net)
            .unwrap();
        let a = fx.attach_host(&mut net, 0, 1).unwrap();
        let b = fx.attach_host(&mut net, 1, 1).unwrap();

        // Wave 1: migrate pod 0 only.
        let w1 = fx.run_migration_wave(&mut net, &[0], ctrl).unwrap();
        net.run_until(SimTime::from_secs(2));
        assert!(fx.wave_done(&net, &w1));
        assert!(fx.pod(0).ss2_has_controller(&net));
        assert!(!fx.pod(1).ss2_has_controller(&net));

        // Pod 1 is still an unmigrated island: cross-pod traffic dies at
        // its unconfigured translator.
        let ip_b = fx.host_ip(1, 1);
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"too early", ip_b);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_secs(3));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 0);

        // Wave 2: migrate pod 1 mid-run, then pinging works — including
        // the queued "too early" ping, whose ARP now resolves.
        let w2 = fx.run_migration_wave(&mut net, &[1], ctrl).unwrap();
        net.run_until(SimTime::from_secs(6));
        assert!(fx.wave_done(&net, &w2));
        net.with_node_ctx::<Host, _>(a, move |h, ctx| {
            h.ping(b"post wave 2", ip_b);
            h.flush(ctx);
        });
        net.run_until(SimTime::from_secs(8));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 2);
        assert_eq!(net.node_ref::<Host>(b).echo_requests_answered(), 2);
    }
}
