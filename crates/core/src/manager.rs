//! The HARMLESS Manager — the automation the paper describes in §2:
//! "automatically manages and queries the legacy Ethernet switch via SNMP
//! through NAPALM [...] According to the desired OpenFlow-enabled
//! port-setting, the manager configures the legacy switch, then
//! instantiates HARMLESS-S4. Finally, it installs the corresponding flow
//! rules into SS_1 and connects SS_2 to the SDN controller."
//!
//! The manager runs as a simulator node and performs, over the live
//! management plane:
//!
//! 1. **Discover** — SNMP Get of sysDescr/sysName/ifNumber; NAPALM-style
//!    dialect detection from sysDescr;
//! 2. **Configure** — compile the tagging plan with the detected dialect
//!    and execute it (Sets + Verifies), with per-request timeout/retry
//!    and full rollback if verification fails;
//! 3. **Install** — push the translator flow table into SS_1 over
//!    OpenFlow and fence with a barrier;
//! 4. **Connect** — point SS_2 at the SDN controller (admin channel) and
//!    health-check the OpenFlow session with an echo.
//!
//! Every phase transition is timestamped; the E6 experiment reads the
//! timeline and the SNMP/OpenFlow operation counts off this node.

use bytes::{Bytes, BytesMut};
use std::any::Any;

use mgmt::driver::{detect_dialect, DesiredVlanConfig, Driver, SnmpOp, VlanDef};
use mgmt::{mibs, SnmpClient, Value};
use netsim::{Node, NodeCtx, NodeId, PortId, SimTime};
use openflow::message::Message;
use softswitch::node::admin_set_controller;

use crate::portmap::PortMap;
use crate::translator;

/// Static configuration of a migration run.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// The legacy switch to migrate.
    pub legacy: NodeId,
    /// The translator switch.
    pub ss1: NodeId,
    /// The main OpenFlow switch.
    pub ss2: NodeId,
    /// The SDN controller SS_2 should connect to.
    pub controller: NodeId,
    /// Access-port ↔ VLAN plan.
    pub map: PortMap,
    /// Trunk count.
    pub n_trunks: u16,
    /// SNMP community.
    pub community: String,
    /// Fault injection: pretend the `k`-th Verify read back a wrong value
    /// (tests the rollback path).
    pub fail_verify_at: Option<usize>,
}

impl ManagerConfig {
    /// Config for a built [`crate::HarmlessInstance`].
    pub fn for_instance(hx: &crate::HarmlessInstance, controller: NodeId) -> ManagerConfig {
        ManagerConfig {
            legacy: hx.legacy,
            ss1: hx.ss1.expect("manager drives the two-switch variant"),
            ss2: hx.ss2,
            controller,
            map: hx.map.clone(),
            n_trunks: hx.spec.n_trunks,
            community: "public".into(),
            fail_verify_at: None,
        }
    }
}

/// Where the migration stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManagerPhase {
    /// Not started.
    Idle,
    /// Reading device facts.
    Discovering,
    /// Executing the SNMP plan.
    Configuring,
    /// Undoing a partially applied plan.
    RollingBack,
    /// Pushing translator rules into SS_1.
    InstallingTranslator,
    /// Connecting SS_2 to the controller and health-checking.
    Connecting,
    /// Migration complete.
    Done,
    /// Migration aborted; legacy config restored.
    RolledBack(String),
    /// Migration aborted hard (management plane unreachable).
    Failed(String),
}

const TOKEN_TIMEOUT: u64 = 1;
/// High bit keeps the monitor token clear of `TOKEN_TIMEOUT + req_gen`.
const TOKEN_MONITOR: u64 = 1 << 62;
const REQUEST_TIMEOUT: SimTime = SimTime::from_millis(500);
/// sysUpTime poll period once migration is [`ManagerPhase::Done`].
const MONITOR_PERIOD: SimTime = SimTime::from_millis(500);
const MAX_RETRIES: u32 = 3;

enum Await {
    None,
    SnmpResponse,
    BarrierReply,
    EchoReply,
    /// A sysUpTime health poll of the migrated legacy switch.
    UptimePoll,
}

/// The manager node.
pub struct HarmlessManager {
    config: ManagerConfig,
    phase: ManagerPhase,
    snmp: SnmpClient,
    driver: Option<Driver>,
    plan: Vec<SnmpOp>,
    plan_idx: usize,
    verifies_done: usize,
    awaiting: Await,
    last_sent: Option<(NodeId, Bytes)>,
    retries: u32,
    req_gen: u64,
    timeline: Vec<(SimTime, String)>,
    flow_mods_sent: u64,
    facts_descr: String,
    /// Last sysUpTime (centiseconds) read from the legacy switch; a
    /// reading *below* the previous one means the device rebooted — the
    /// classic SNMP reboot heuristic.
    last_uptime: Option<u32>,
    /// True while re-executing the SNMP plan after a detected reboot
    /// (skips the translator/controller phases — those devices did not
    /// reboot).
    reprovisioning: bool,
    reprovisions: u64,
}

impl HarmlessManager {
    /// Build a manager; it starts migrating when the simulation starts.
    pub fn new(config: ManagerConfig) -> HarmlessManager {
        HarmlessManager {
            snmp: SnmpClient::new(config.community.clone()),
            config,
            phase: ManagerPhase::Idle,
            driver: None,
            plan: Vec::new(),
            plan_idx: 0,
            verifies_done: 0,
            awaiting: Await::None,
            last_sent: None,
            retries: 0,
            req_gen: 0,
            timeline: Vec::new(),
            flow_mods_sent: 0,
            facts_descr: String::new(),
            last_uptime: None,
            reprovisioning: false,
            reprovisions: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> &ManagerPhase {
        &self.phase
    }

    /// Phase transitions with timestamps.
    pub fn timeline(&self) -> &[(SimTime, String)] {
        &self.timeline
    }

    /// SNMP requests issued.
    pub fn snmp_ops(&self) -> u64 {
        self.snmp.ops_sent()
    }

    /// OpenFlow flow-mods pushed into SS_1.
    pub fn flow_mods_sent(&self) -> u64 {
        self.flow_mods_sent
    }

    /// sysDescr discovered in phase 1.
    pub fn discovered_descr(&self) -> &str {
        &self.facts_descr
    }

    /// Legacy-switch reboots detected (and reprovisioned) since
    /// migration completed. A COTS switch boots into factory defaults —
    /// VLANs, PVIDs and FDB gone — so every reboot without a config
    /// re-push leaves the pod silently unbridged.
    pub fn reprovisions(&self) -> u64 {
        self.reprovisions
    }

    /// Dialect the driver chose.
    pub fn dialect(&self) -> Option<&str> {
        self.driver.as_ref().map(|d| d.dialect_name())
    }

    fn enter(&mut self, phase: ManagerPhase, ctx: &mut NodeCtx) {
        self.timeline.push((ctx.now(), format!("{phase:?}")));
        self.phase = phase;
    }

    fn send_tracked(&mut self, to: NodeId, data: Bytes, awaiting: Await, ctx: &mut NodeCtx) {
        self.awaiting = awaiting;
        self.last_sent = Some((to, data.clone()));
        self.retries = 0;
        self.req_gen += 1;
        ctx.ctrl_send(to, data);
        ctx.schedule(REQUEST_TIMEOUT, TOKEN_TIMEOUT + self.req_gen);
    }

    fn start_discovery(&mut self, ctx: &mut NodeCtx) {
        self.enter(ManagerPhase::Discovering, ctx);
        let req = self
            .snmp
            .get(&[mibs::sys_descr(), mibs::sys_name(), mibs::if_number()]);
        let legacy = self.config.legacy;
        self.send_tracked(legacy, req, Await::SnmpResponse, ctx);
    }

    fn build_plan(&mut self) {
        let n_ports = self.config.map.n_ports() + self.config.n_trunks;
        let vlans = self
            .config
            .map
            .iter()
            .map(|(port, vid)| {
                // Each VLAN lives on exactly one trunk (its "home"), the
                // same one the translator's upstream rule picks — putting
                // a VLAN on two trunks would form an L2 loop through the
                // software switches.
                let home_trunk = self.config.map.n_ports() + 1 + (vid % self.config.n_trunks);
                VlanDef {
                    vid,
                    egress: vec![port, home_trunk],
                    untagged: vec![port],
                }
            })
            .collect();
        let cfg = DesiredVlanConfig {
            n_ports,
            vlans,
            pvids: self.config.map.iter().collect(),
        };
        let mut driver = Driver::new(detect_dialect(&self.facts_descr));
        driver.load_merge_candidate(cfg);
        self.plan = driver.commit_plan();
        self.driver = Some(driver);
        self.plan_idx = 0;
        self.verifies_done = 0;
    }

    fn step_plan(&mut self, ctx: &mut NodeCtx) {
        if self.plan_idx >= self.plan.len() {
            if self.reprovisioning {
                // Reboot recovery: only the legacy switch lost state, so
                // configuring it is the whole job — back to monitoring.
                self.reprovisioning = false;
                self.enter(ManagerPhase::Done, ctx);
                ctx.schedule(MONITOR_PERIOD, TOKEN_MONITOR);
            } else {
                self.start_translator_install(ctx);
            }
            return;
        }
        let op = self.plan[self.plan_idx].clone();
        let legacy = self.config.legacy;
        match op {
            SnmpOp::Set(bindings) => {
                let req = self.snmp.set(bindings);
                self.send_tracked(legacy, req, Await::SnmpResponse, ctx);
            }
            SnmpOp::Verify(oid, _expect) => {
                let req = self.snmp.get(&[oid]);
                self.send_tracked(legacy, req, Await::SnmpResponse, ctx);
            }
        }
    }

    fn start_rollback(&mut self, reason: String, ctx: &mut NodeCtx) {
        self.enter(ManagerPhase::RollingBack, ctx);
        self.plan = self
            .driver
            .as_mut()
            .map(|d| d.rollback_plan())
            .unwrap_or_default();
        self.plan_idx = 0;
        // The timeline entry stashes the reason for rollback_reason().
        self.timeline
            .push((ctx.now(), format!("rollback because: {reason}")));
        self.step_rollback(ctx, reason);
    }

    fn step_rollback(&mut self, ctx: &mut NodeCtx, reason: String) {
        if self.plan_idx >= self.plan.len() {
            self.enter(ManagerPhase::RolledBack(reason), ctx);
            return;
        }
        let op = self.plan[self.plan_idx].clone();
        let legacy = self.config.legacy;
        if let SnmpOp::Set(bindings) = op {
            let req = self.snmp.set(bindings);
            self.send_tracked(legacy, req, Await::SnmpResponse, ctx);
        } else {
            self.plan_idx += 1;
            self.step_rollback(ctx, reason);
        }
    }

    fn rollback_reason(&self) -> String {
        for (_, line) in self.timeline.iter().rev() {
            if let Some(r) = line.strip_prefix("rollback because: ") {
                return r.to_string();
            }
        }
        "unknown".into()
    }

    fn start_translator_install(&mut self, ctx: &mut NodeCtx) {
        self.enter(ManagerPhase::InstallingTranslator, ctx);
        // The manager acts as SS_1's provisioning controller: hello,
        // rules, barrier — all in one channel write.
        let mut blob = BytesMut::new();
        let mut xid = 1u32;
        blob.extend_from_slice(&Message::Hello.encode(xid));
        for fm in translator::translator_rules(&self.config.map, self.config.n_trunks) {
            xid += 1;
            self.flow_mods_sent += 1;
            blob.extend_from_slice(&Message::FlowMod(fm).encode(xid));
        }
        blob.extend_from_slice(&Message::BarrierRequest.encode(xid + 1));
        let ss1 = self.config.ss1;
        self.send_tracked(ss1, blob.freeze(), Await::BarrierReply, ctx);
    }

    fn start_connect(&mut self, ctx: &mut NodeCtx) {
        self.enter(ManagerPhase::Connecting, ctx);
        // Point SS_2 at the controller, then health-check the channel.
        ctx.ctrl_send(
            self.config.ss2,
            admin_set_controller(self.config.controller),
        );
        let echo = Message::EchoRequest(Bytes::from_static(b"harmless-health")).encode(0x7fff);
        let ss2 = self.config.ss2;
        self.send_tracked(ss2, echo, Await::EchoReply, ctx);
    }

    /// Issue a sysUpTime read; the response (or its timeout) drives the
    /// reboot monitor.
    fn poll_uptime(&mut self, ctx: &mut NodeCtx) {
        let req = self.snmp.get(&[mibs::sys_uptime()]);
        let legacy = self.config.legacy;
        self.send_tracked(legacy, req, Await::UptimePoll, ctx);
    }

    /// React to a sysUpTime reading: a value below the previous one
    /// means the switch rebooted into factory defaults, so re-run the
    /// SNMP configuration plan against it.
    fn handle_uptime(&mut self, pdu: &mgmt::Pdu, ctx: &mut NodeCtx) {
        let got = pdu.bindings.first().and_then(|(_, v)| match v {
            Value::TimeTicks(t) => Some(*t),
            _ => None,
        });
        if let Some(t) = got {
            let rebooted = self.last_uptime.is_some_and(|prev| t < prev);
            self.last_uptime = Some(t);
            if rebooted {
                self.reprovisions += 1;
                self.timeline
                    .push((ctx.now(), "reboot detected: reprovisioning".into()));
                self.reprovisioning = true;
                // Facts (dialect) are already known; rebuild the plan
                // and push it again.
                self.build_plan();
                self.enter(ManagerPhase::Configuring, ctx);
                self.step_plan(ctx);
                return;
            }
        }
        ctx.schedule(MONITOR_PERIOD, TOKEN_MONITOR);
    }

    fn handle_snmp(&mut self, data: &Bytes, ctx: &mut NodeCtx) {
        let Ok(Some(pdu)) = self.snmp.accept(data) else {
            return;
        };
        let was_awaiting = std::mem::replace(&mut self.awaiting, Await::None);
        if matches!(was_awaiting, Await::UptimePoll) {
            self.handle_uptime(&pdu, ctx);
            return;
        }
        match self.phase.clone() {
            ManagerPhase::Discovering => {
                if pdu.error_status != mgmt::ErrorStatus::NoError || pdu.bindings.len() < 3 {
                    self.enter(ManagerPhase::Failed("discovery failed".into()), ctx);
                    return;
                }
                self.facts_descr = match &pdu.bindings[0].1 {
                    Value::OctetString(b) => String::from_utf8_lossy(b).into_owned(),
                    _ => String::new(),
                };
                self.build_plan();
                self.enter(ManagerPhase::Configuring, ctx);
                self.step_plan(ctx);
            }
            ManagerPhase::Configuring => {
                let op = &self.plan[self.plan_idx];
                match op {
                    SnmpOp::Set(_) => {
                        if pdu.error_status != mgmt::ErrorStatus::NoError {
                            self.start_rollback(
                                format!("set rejected: {:?}", pdu.error_status),
                                ctx,
                            );
                            return;
                        }
                    }
                    SnmpOp::Verify(oid, expect) => {
                        self.verifies_done += 1;
                        let injected = self.config.fail_verify_at == Some(self.verifies_done);
                        let got = pdu.bindings.first().map(|(_, v)| v.clone());
                        let matches = got.as_ref() == Some(expect);
                        if injected || !matches {
                            self.start_rollback(format!("verification mismatch at {oid}"), ctx);
                            return;
                        }
                    }
                }
                self.plan_idx += 1;
                self.step_plan(ctx);
            }
            ManagerPhase::RollingBack => {
                // Best effort: keep going regardless of individual errors.
                self.plan_idx += 1;
                let reason = self.rollback_reason();
                self.step_rollback(ctx, reason);
            }
            _ => {}
        }
    }

    fn handle_of(&mut self, data: &Bytes, ctx: &mut NodeCtx) {
        let mut buf = BytesMut::from(&data[..]);
        let Ok(msgs) = openflow::message::decode_stream(&mut buf) else {
            return;
        };
        for (_, msg) in msgs {
            match (&self.phase, &msg) {
                (ManagerPhase::InstallingTranslator, Message::BarrierReply) => {
                    self.awaiting = Await::None;
                    self.start_connect(ctx);
                }
                (ManagerPhase::Connecting, Message::EchoReply(_)) => {
                    self.awaiting = Await::None;
                    self.enter(ManagerPhase::Done, ctx);
                    // Keep watching the device we migrated: a COTS
                    // reboot silently drops the whole VLAN config.
                    ctx.schedule(MONITOR_PERIOD, TOKEN_MONITOR);
                }
                (_, Message::Error { ty, code, .. }) => {
                    self.enter(
                        ManagerPhase::Failed(format!("OpenFlow error {ty}/{code}")),
                        ctx,
                    );
                }
                _ => {}
            }
        }
    }
}

impl Node for HarmlessManager {
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        self.start_discovery(ctx);
    }

    fn on_packet(&mut self, _port: PortId, _frame: Bytes, _ctx: &mut NodeCtx) {}

    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx) {
        if token == TOKEN_MONITOR {
            if matches!(self.phase, ManagerPhase::Done) && matches!(self.awaiting, Await::None) {
                self.poll_uptime(ctx);
            } else if !matches!(
                self.phase,
                ManagerPhase::Failed(_) | ManagerPhase::RolledBack(_)
            ) {
                // Busy (e.g. mid-reprovision): try again next period.
                ctx.schedule(MONITOR_PERIOD, TOKEN_MONITOR);
            }
            return;
        }
        // Stale timeout timers carry an old generation; ignore them.
        if token != TOKEN_TIMEOUT + self.req_gen {
            return;
        }
        if matches!(self.awaiting, Await::None) {
            return;
        }
        if self.retries >= MAX_RETRIES {
            self.enter(
                ManagerPhase::Failed("management plane unreachable (timeout)".into()),
                ctx,
            );
            return;
        }
        self.retries += 1;
        if let Some((to, data)) = self.last_sent.clone() {
            self.req_gen += 1;
            ctx.ctrl_send(to, data);
            ctx.schedule(REQUEST_TIMEOUT, TOKEN_TIMEOUT + self.req_gen);
        }
    }

    fn on_ctrl(&mut self, from: NodeId, data: Bytes, ctx: &mut NodeCtx) {
        if from == self.config.legacy {
            self.handle_snmp(&data, ctx);
        } else {
            self.handle_of(&data, ctx);
        }
    }

    fn name(&self) -> &str {
        "harmless-manager"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::HarmlessSpec;
    use controller::apps::LearningSwitch;
    use controller::ControllerNode;
    use legacy_switch::LegacySwitchNode;
    use netsim::host::Host;
    use netsim::Network;

    fn migrated_network(
        fail_verify_at: Option<usize>,
        sys_descr: Option<&str>,
    ) -> (Network, crate::HarmlessInstance, NodeId, NodeId) {
        let mut net = Network::new(99);
        let ctrl = net.add_node(ControllerNode::new(
            "ctrl",
            vec![Box::new(LearningSwitch::new())],
        ));
        let mut spec = HarmlessSpec::new(4);
        if let Some(d) = sys_descr {
            spec.legacy_sys_descr = Some(d.to_string());
        }
        let hx = spec.build(&mut net);
        let mut cfg = ManagerConfig::for_instance(&hx, ctrl);
        cfg.fail_verify_at = fail_verify_at;
        let mgr = net.add_node(HarmlessManager::new(cfg));
        (net, hx, ctrl, mgr)
    }

    #[test]
    fn full_migration_end_to_end() {
        let (mut net, hx, ctrl, mgr) = migrated_network(None, None);
        let a = hx.attach_host(&mut net, 1);
        let _b = hx.attach_host(&mut net, 3);
        net.run_until(SimTime::from_secs(2));
        {
            let m = net.node_ref::<HarmlessManager>(mgr);
            assert_eq!(
                *m.phase(),
                ManagerPhase::Done,
                "timeline: {:?}",
                m.timeline()
            );
            assert_eq!(m.dialect(), Some("qbridge"));
            assert!(m.snmp_ops() > 10);
            assert_eq!(m.flow_mods_sent(), 8); // 4 ports × (1 down + 1 up)
        }
        // The migrated switch now behaves as an OpenFlow switch: ping works
        // through legacy → SS_1 → SS_2(+controller) and back.
        net.with_node_ctx::<Host, _>(a, |h, ctx| {
            h.ping(b"migrated!", "10.0.0.3".parse().unwrap());
            h.flush(ctx);
        });
        net.run_until(SimTime::from_secs(3));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
        assert!(net.node_ref::<ControllerNode>(ctrl).packet_ins() > 0);
        // The legacy switch's config matches the plan.
        let legacy = net.node_ref::<LegacySwitchNode>(hx.legacy);
        assert_eq!(legacy.bridge().pvid(1), 101);
        assert!(
            legacy.bridge().vlans()[&104].egress.contains(&5),
            "trunk is a member"
        );
    }

    #[test]
    fn legacy_dialect_uses_more_ops() {
        let (mut net1, _, _, mgr1) = migrated_network(None, None);
        net1.run_until(SimTime::from_secs(2));
        let qbridge_ops = net1.node_ref::<HarmlessManager>(mgr1).snmp_ops();

        let (mut net2, _, _, mgr2) =
            migrated_network(None, Some("AcmeOS LegacyOS 9.1 vintage stack"));
        net2.run_until(SimTime::from_secs(2));
        let m2 = net2.node_ref::<HarmlessManager>(mgr2);
        assert_eq!(*m2.phase(), ManagerPhase::Done);
        assert_eq!(m2.dialect(), Some("legacy-cli"));
        assert!(
            m2.snmp_ops() > qbridge_ops,
            "legacy dialect {} ops vs qbridge {} ops",
            m2.snmp_ops(),
            qbridge_ops
        );
    }

    #[test]
    fn legacy_reboot_is_detected_and_reprovisioned() {
        let (mut net, hx, _, mgr) = migrated_network(None, None);
        let a = hx.attach_host(&mut net, 1);
        let _b = hx.attach_host(&mut net, 3);
        net.run_until(SimTime::from_secs(2));
        assert_eq!(
            *net.node_ref::<HarmlessManager>(mgr).phase(),
            ManagerPhase::Done
        );
        // Power-cycle the legacy switch: per the COTS model it boots
        // into factory defaults — the VLAN plan is gone and sysUpTime
        // restarts from zero.
        net.schedule_reset(SimTime::from_millis(2500), hx.legacy);
        net.run_until(SimTime::from_secs(4));
        {
            let m = net.node_ref::<HarmlessManager>(mgr);
            assert_eq!(m.reprovisions(), 1, "timeline: {:?}", m.timeline());
            assert_eq!(*m.phase(), ManagerPhase::Done);
        }
        assert_eq!(net.node_ref::<LegacySwitchNode>(hx.legacy).reboots(), 1);
        // The manager pushed the plan again: tagging config restored...
        let pvid = net.node_ref::<LegacySwitchNode>(hx.legacy).bridge().pvid(1);
        assert_eq!(pvid, 101, "PVID must be re-provisioned, not factory 1");
        // ...and the pod forwards end to end again.
        net.with_node_ctx::<Host, _>(a, |h, ctx| {
            h.ping(b"post-reboot", "10.0.0.3".parse().unwrap());
            h.flush(ctx);
        });
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
    }

    #[test]
    fn verification_failure_rolls_back() {
        let (mut net, hx, _, mgr) = migrated_network(Some(3), None);
        net.run_until(SimTime::from_secs(2));
        let m = net.node_ref::<HarmlessManager>(mgr);
        assert!(
            matches!(m.phase(), ManagerPhase::RolledBack(_)),
            "got {:?}",
            m.phase()
        );
        // Rollback restored factory state: PVIDs back to 1, plan VLANs
        // destroyed.
        let legacy = net.node_ref::<LegacySwitchNode>(hx.legacy);
        for p in 1..=4 {
            assert_eq!(
                legacy.bridge().pvid(p),
                1,
                "port {p} must be back on VLAN 1"
            );
        }
        for vid in 101..=104 {
            assert!(
                !legacy.bridge().vlans().contains_key(&vid),
                "VLAN {vid} must be gone"
            );
        }
    }

    #[test]
    fn unreachable_switch_fails_cleanly() {
        let mut net = Network::new(99);
        let ctrl = net.add_node(ControllerNode::new("ctrl", vec![]));
        let hx = HarmlessSpec::new(2).build(&mut net);
        let mut cfg = ManagerConfig::for_instance(&hx, ctrl);
        cfg.community = "wrong-community".into(); // agent will drop us
        let mgr = net.add_node(HarmlessManager::new(cfg));
        net.run_until(SimTime::from_secs(5));
        let m = net.node_ref::<HarmlessManager>(mgr);
        assert!(
            matches!(m.phase(), ManagerPhase::Failed(_)),
            "got {:?}",
            m.phase()
        );
    }

    #[test]
    fn timeline_is_ordered_and_complete() {
        let (mut net, _, _, mgr) = migrated_network(None, None);
        net.run_until(SimTime::from_secs(2));
        let m = net.node_ref::<HarmlessManager>(mgr);
        let phases: Vec<&str> = m.timeline().iter().map(|(_, p)| p.as_str()).collect();
        assert_eq!(
            phases,
            vec![
                "Discovering",
                "Configuring",
                "InstallingTranslator",
                "Connecting",
                "Done"
            ]
        );
        // Strictly increasing times.
        for w in m.timeline().windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }
}
