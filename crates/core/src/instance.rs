//! Topology construction: wire a legacy switch, the translator SS_1 and
//! the main OpenFlow switch SS_2 into a simulated network exactly as in
//! the paper's Fig. 1.
//!
//! Port conventions:
//! * legacy switch — ports `1..=n` are access ports; ports `n+1..=n+t`
//!   are trunk ports toward the server;
//! * SS_1 — ports `1..=t` are the trunk side; port `100+i` is the patch
//!   link toward SS_2's port `i`;
//! * SS_2 — port `i` corresponds 1:1 to legacy access port `i`, which is
//!   what makes the architecture "fully data plane-transparent" to the
//!   controller.

use netsim::host::Host;
use netsim::{LinkSpec, Network, NodeId, PortId, SimTime};
use openflow::message::FlowMod;
use openflow::{Action, Instruction, Match};
use softswitch::datapath::{DpConfig, PipelineMode};
use softswitch::{CostModel, SoftSwitchNode};

use legacy_switch::LegacySwitchNode;

use crate::portmap::PortMap;
use crate::translator::{self, patch_port};

/// Deployment variant — the E7 ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The paper's design: a dedicated translator switch (SS_1) in front
    /// of the main OpenFlow switch (SS_2), joined by patch ports. The
    /// controller sees clean port numbers.
    TwoSwitch,
    /// A single merged datapath doing translation and policy in one
    /// pipeline (table 0 translates VLAN→metadata, policy lives in table
    /// 1 and must emit VLAN-rewriting actions itself). Faster, but the
    /// controller program is no longer portable.
    Merged,
}

/// Default datapath id of the translator switch SS_1.
pub const SS1_DPID: u64 = 0x51;
/// Default datapath id of the main OpenFlow switch SS_2.
pub const SS2_DPID: u64 = 0x52;
/// Default datapath id of the merged single-datapath variant — distinct
/// from [`SS2_DPID`] so a two-switch and a merged instance can face the
/// same controller without colliding.
pub const MERGED_DPID: u64 = 0x5A;

/// Everything needed to build a HARMLESS deployment (one *pod* in fabric
/// terms: a legacy switch plus its server-side software switches).
#[derive(Debug, Clone)]
pub struct HarmlessSpec {
    /// Managed access ports on the legacy switch.
    pub n_access_ports: u16,
    /// Trunk links between the legacy switch and the server.
    pub n_trunks: u16,
    /// VLAN base for the port map.
    pub vlan_base: u16,
    /// Link model of host↔legacy access links.
    pub access_link: LinkSpec,
    /// Link model of the trunk interconnect(s).
    pub trunk_link: LinkSpec,
    /// CPU cores per software switch instance.
    pub cores: usize,
    /// RX ring size per software switch.
    pub rx_queue: usize,
    /// Software datapath cost model.
    pub cost_model: CostModel,
    /// Software datapath lookup machinery.
    pub pipeline_mode: PipelineMode,
    /// Two-switch (paper) or merged (ablation).
    pub variant: Variant,
    /// Override the legacy switch's sysDescr (dialect detection).
    pub legacy_sys_descr: Option<String>,
    /// Prefix for node names (`"pod3/"` → `"pod3/legacy"`, `"pod3/ss2"`).
    /// The fabric layer sets this so multi-pod traces stay legible.
    pub name_prefix: String,
    /// Datapath id of SS_1 (the fabric gives every pod distinct ids).
    pub ss1_dpid: u64,
    /// Datapath id of SS_2 / the merged datapath.
    pub ss2_dpid: u64,
    /// Fabric uplink ports added to SS_2, numbered
    /// `n_access_ports + 1 ..= n_access_ports + uplinks`. Zero for the
    /// classic standalone instance; [`crate::fabric::FabricSpec`] sets it
    /// to what its interconnect needs.
    pub uplinks: u16,
}

impl HarmlessSpec {
    /// Defaults: one 10 G trunk, gigabit access links, VLAN base 100, one
    /// core per software switch, full caching, two-switch variant.
    pub fn new(n_access_ports: u16) -> HarmlessSpec {
        HarmlessSpec {
            n_access_ports,
            n_trunks: 1,
            vlan_base: PortMap::DEFAULT_BASE,
            access_link: LinkSpec::gigabit(),
            trunk_link: LinkSpec::ten_gigabit(),
            cores: 1,
            rx_queue: 4096,
            cost_model: CostModel::default(),
            pipeline_mode: PipelineMode::full(),
            variant: Variant::TwoSwitch,
            legacy_sys_descr: None,
            name_prefix: String::new(),
            ss1_dpid: SS1_DPID,
            ss2_dpid: SS2_DPID,
            uplinks: 0,
        }
    }

    /// Builder-style trunk count.
    pub fn with_trunks(mut self, n: u16) -> Self {
        self.n_trunks = n;
        self
    }

    /// Builder-style variant.
    pub fn with_variant(mut self, v: Variant) -> Self {
        self.variant = v;
        self
    }

    /// Builder-style pipeline mode.
    pub fn with_pipeline_mode(mut self, m: PipelineMode) -> Self {
        self.pipeline_mode = m;
        self
    }

    /// Builder-style core count.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Builder-style trunk link override.
    pub fn with_trunk_link(mut self, l: LinkSpec) -> Self {
        self.trunk_link = l;
        self
    }

    /// Builder-style access link override.
    pub fn with_access_link(mut self, l: LinkSpec) -> Self {
        self.access_link = l;
        self
    }

    /// Builder-style node-name prefix (used by the fabric layer to tell
    /// pods apart in traces and panics).
    pub fn with_name_prefix(mut self, p: impl Into<String>) -> Self {
        self.name_prefix = p.into();
        self
    }

    /// Builder-style datapath-id override for SS_1 and SS_2.
    pub fn with_dpids(mut self, ss1: u64, ss2: u64) -> Self {
        self.ss1_dpid = ss1;
        self.ss2_dpid = ss2;
        self
    }

    /// Builder-style fabric uplink count on SS_2.
    pub fn with_uplinks(mut self, n: u16) -> Self {
        self.uplinks = n;
        self
    }

    /// A software switch shaped by this spec (shared by SS_1, SS_2 and
    /// the merged datapath; the fabric layer reuses it for spines).
    pub(crate) fn soft_switch_node(&self, suffix: &str, dpid: u64) -> SoftSwitchNode {
        SoftSwitchNode::new(
            format!("{}{}", self.name_prefix, suffix),
            DpConfig::software(dpid).with_mode(self.pipeline_mode),
            self.cores,
            self.rx_queue,
            self.cost_model,
        )
    }

    /// Instantiate the topology in `net`. The legacy switch starts in its
    /// factory configuration; call
    /// [`HarmlessInstance::configure_legacy_directly`] (or run the
    /// [`crate::manager::HarmlessManager`]) to set up tagging, and
    /// [`HarmlessInstance::install_translator_rules`] for SS_1.
    pub fn build(self, net: &mut Network) -> HarmlessInstance {
        let map =
            PortMap::new(self.vlan_base, self.n_access_ports).expect("spec within VLAN budget");
        let n = self.n_access_ports;
        let t = self.n_trunks;

        let mut legacy = LegacySwitchNode::new(format!("{}legacy", self.name_prefix), n + t);
        if let Some(d) = &self.legacy_sys_descr {
            legacy = legacy.with_sys_descr(d.clone());
        }
        let legacy = net.add_node(legacy);

        match self.variant {
            Variant::TwoSwitch => {
                let mut ss1 = self.soft_switch_node("ss1", self.ss1_dpid);
                for tr in 1..=t {
                    ss1.add_port(u32::from(tr), format!("trunk{tr}"), 10_000_000);
                }
                for p in 1..=n {
                    ss1.add_port(patch_port(p), format!("patch{p}"), 10_000_000);
                }
                let ss1 = net.add_node(ss1);

                let mut ss2 = self.soft_switch_node("ss2", self.ss2_dpid);
                for p in 1..=n {
                    ss2.add_port(u32::from(p), format!("vport{p}"), 1_000_000);
                }
                for u in 1..=self.uplinks {
                    ss2.add_port(u32::from(n + u), format!("fabric{u}"), 10_000_000);
                }
                let ss2 = net.add_node(ss2);

                for tr in 1..=t {
                    net.connect(legacy, PortId(n + tr), ss1, PortId(tr), self.trunk_link);
                }
                for p in 1..=n {
                    net.connect(
                        ss1,
                        PortId(patch_port(p) as u16),
                        ss2,
                        PortId(p),
                        LinkSpec::instant(),
                    );
                }
                HarmlessInstance {
                    spec: self,
                    map,
                    legacy,
                    ss1: Some(ss1),
                    ss2,
                }
            }
            Variant::Merged => {
                // Explicit overrides win; the default maps to the
                // merged variant's own id, not SS_2's.
                let dpid = if self.ss2_dpid == SS2_DPID {
                    MERGED_DPID
                } else {
                    self.ss2_dpid
                };
                let mut ssm = self.soft_switch_node("ssm", dpid);
                for tr in 1..=t {
                    ssm.add_port(u32::from(tr), format!("trunk{tr}"), 10_000_000);
                }
                for u in 1..=self.uplinks {
                    ssm.add_port(u32::from(n + u), format!("fabric{u}"), 10_000_000);
                }
                let ssm = net.add_node(ssm);
                for tr in 1..=t {
                    net.connect(legacy, PortId(n + tr), ssm, PortId(tr), self.trunk_link);
                }
                HarmlessInstance {
                    spec: self,
                    map,
                    legacy,
                    ss1: None,
                    ss2: ssm,
                }
            }
        }
    }
}

/// A built HARMLESS deployment.
pub struct HarmlessInstance {
    /// The spec it was built from.
    pub spec: HarmlessSpec,
    /// The access-port ↔ VLAN map.
    pub map: PortMap,
    /// The legacy switch node.
    pub legacy: NodeId,
    /// The translator switch (absent in the merged variant).
    pub ss1: Option<NodeId>,
    /// The main OpenFlow switch (the merged datapath in `Merged`).
    pub ss2: NodeId,
}

impl HarmlessInstance {
    /// Legacy-switch port number of trunk `t` (1-based).
    pub fn trunk_legacy_port(&self, t: u16) -> u16 {
        self.spec.n_access_ports + t
    }

    /// SS_2 (OpenFlow) port number of fabric uplink `k` (1-based).
    /// Uplinks sit directly above the access-port range, so the
    /// controller sees them as ordinary high-numbered ports.
    pub fn uplink_port(&self, k: u16) -> u32 {
        assert!(
            (1..=self.spec.uplinks).contains(&k),
            "pod has {} uplinks, asked for {k}",
            self.spec.uplinks
        );
        u32::from(self.spec.n_access_ports + k)
    }

    /// The legacy-switch trunk port that is VLAN `vlan`'s home. Each VLAN
    /// lives on exactly one trunk (`vlan % n_trunks`), matching the
    /// translator's upstream rule — two parallel trunks carrying the same
    /// VLAN would form an L2 loop through the software switches.
    pub fn home_trunk_for(&self, vlan: u16) -> u16 {
        self.spec.n_access_ports + 1 + (vlan % self.spec.n_trunks)
    }

    /// Configure the legacy switch's VLANs directly (bypassing the SNMP
    /// path — experiments that are not about migration use this).
    pub fn configure_legacy_directly(&self, net: &mut Network) {
        let assignments: Vec<(u16, u16, u16)> = self
            .map
            .iter()
            .map(|(port, vlan)| (port, vlan, self.home_trunk_for(vlan)))
            .collect();
        let legacy = net.node_mut::<LegacySwitchNode>(self.legacy);
        let bridge = legacy.bridge_mut();
        for &(port, vlan, trunk) in &assignments {
            bridge
                .make_access_port(port, vlan)
                .expect("spec-validated config");
            bridge
                .make_trunk_port(trunk, &[vlan])
                .expect("spec-validated config");
        }
    }

    /// Install the translator flow table into SS_1 (or the translation
    /// tables of the merged datapath) via direct dataplane access.
    pub fn install_translator_rules(&self, net: &mut Network) {
        match (self.spec.variant, self.ss1) {
            (Variant::TwoSwitch, Some(ss1)) => {
                let rules = translator::translator_rules(&self.map, self.spec.n_trunks);
                let dp = net.node_mut::<SoftSwitchNode>(ss1).datapath_mut();
                for fm in &rules {
                    dp.apply_flow_mod(fm, 0)
                        .expect("translator rules are valid");
                }
            }
            (Variant::Merged, _) => {
                let dp = net.node_mut::<SoftSwitchNode>(self.ss2).datapath_mut();
                for (port, vlan) in self.map.iter() {
                    for tr in 1..=self.spec.n_trunks {
                        dp.apply_flow_mod(
                            &FlowMod::add(0)
                                .priority(100)
                                .match_(Match::new().in_port(u32::from(tr)).vlan(vlan))
                                .instructions(vec![
                                    Instruction::ApplyActions(vec![Action::PopVlan]),
                                    Instruction::WriteMetadata {
                                        metadata: u64::from(port),
                                        mask: 0xffff,
                                    },
                                    Instruction::GotoTable(1),
                                ]),
                            0,
                        )
                        .expect("translation rules are valid");
                    }
                }
            }
            _ => unreachable!("two-switch always has ss1"),
        }
    }

    /// Point SS_2 at its SDN controller. Must be called before the first
    /// `run_*` so the OpenFlow HELLO goes out at start; the manager path
    /// uses the admin message instead.
    pub fn connect_controller(&self, net: &mut Network, controller: NodeId) {
        net.node_mut::<SoftSwitchNode>(self.ss2)
            .connect_controller(controller);
    }

    /// Merged-variant helper: the table-1 rule forwarding traffic that
    /// entered access port `in_access` out of access port `out_access`.
    /// This is what controller programs must look like without SS_1 —
    /// VLAN-aware and HARMLESS-specific.
    pub fn merged_wiring_rule(&self, in_access: u16, out_access: u16) -> FlowMod {
        let out_vlan = self.map.vlan_of(out_access).expect("valid access port");
        let trunk = 1 + (u32::from(out_vlan) % u32::from(self.spec.n_trunks));
        FlowMod::add(1)
            .priority(10)
            .match_(Match::new().with(openflow::OxmField::Metadata(
                u64::from(in_access),
                Some(0xffff),
            )))
            .apply(vec![
                Action::PushVlan(0x8100),
                Action::set_vlan_vid(out_vlan),
                Action::output(trunk),
            ])
    }

    /// Attach a host to legacy access port `i` (MAC `host(i)`, IP
    /// `10.0.0.i`).
    ///
    /// # Panics
    /// Panics if `i` is not an access port or `i > 250`.
    pub fn attach_host(&self, net: &mut Network, i: u16) -> NodeId {
        assert!(
            (1..=self.spec.n_access_ports).contains(&i),
            "not an access port: {i}"
        );
        assert!(i <= 250, "host IP scheme supports up to 250 hosts");
        let h = net.add_node(Host::new(
            format!("h{i}"),
            netpkt::MacAddr::host(u32::from(i)),
            std::net::Ipv4Addr::new(10, 0, 0, i as u8),
        ));
        net.connect(h, PortId(0), self.legacy, PortId(i), self.spec.access_link);
        h
    }

    /// Attach an arbitrary node (generator/sink) to access port `i` on
    /// its `port` 0.
    pub fn attach_node(&self, net: &mut Network, i: u16, node: NodeId) {
        assert!(
            (1..=self.spec.n_access_ports).contains(&i),
            "not an access port: {i}"
        );
        net.connect(
            node,
            PortId(0),
            self.legacy,
            PortId(i),
            self.spec.access_link,
        );
    }

    /// End-to-end readiness check used by examples: true once SS_2 has a
    /// controller connection configured — either via
    /// [`Self::connect_controller`] or the manager's admin message.
    pub fn ss2_has_controller(&self, net: &Network) -> bool {
        net.node_ref::<SoftSwitchNode>(self.ss2)
            .controller()
            .is_some()
    }
}

/// How long examples should let the control plane settle before traffic
/// (handshake + table installation over the default control delay).
pub const CONTROL_PLANE_SETTLE: SimTime = SimTime::from_millis(50);

#[cfg(test)]
mod tests {
    use super::*;
    use controller::apps::{LearningSwitch, StaticForwarder};
    use controller::ControllerNode;
    use netsim::traffic::{FlowSpec, Generator, Pattern, Sink};

    #[test]
    fn hosts_ping_through_full_harmless_stack() {
        let mut net = Network::new(42);
        let ctrl = net.add_node(ControllerNode::new(
            "ctrl",
            vec![Box::new(LearningSwitch::new())],
        ));
        let hx = HarmlessSpec::new(4).build(&mut net);
        hx.configure_legacy_directly(&mut net);
        hx.install_translator_rules(&mut net);
        hx.connect_controller(&mut net, ctrl);
        let a = hx.attach_host(&mut net, 1);
        let b = hx.attach_host(&mut net, 2);
        net.run_until(SimTime::from_millis(100));
        net.with_node_ctx::<Host, _>(a, |h, ctx| {
            h.ping(b"through harmless", "10.0.0.2".parse().unwrap());
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(300));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
        assert_eq!(net.node_ref::<Host>(b).echo_requests_answered(), 1);
        // The controller actually did the work (learning via packet-ins).
        let c = net.node_ref::<ControllerNode>(ctrl);
        assert!(c.packet_ins() > 0, "reactive path must have been exercised");
        assert!(c.flow_mods_sent() > 0);
    }

    #[test]
    fn isolation_without_controller_rules() {
        // With the translator installed but no policy in SS_2 (no
        // table-miss entry), access ports cannot reach each other: the
        // policy plane is authoritative.
        let mut net = Network::new(42);
        let hx = HarmlessSpec::new(4).build(&mut net);
        hx.configure_legacy_directly(&mut net);
        hx.install_translator_rules(&mut net);
        let a = hx.attach_host(&mut net, 1);
        let b = hx.attach_host(&mut net, 2);
        net.node_mut::<Host>(a)
            .ping(b"x", "10.0.0.2".parse().unwrap());
        net.run_until(SimTime::from_millis(200));
        assert_eq!(net.node_ref::<Host>(b).rx_frames(), 0);
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 0);
    }

    #[test]
    fn merged_variant_forwards_with_one_switch() {
        let mut net = Network::new(42);
        let hx = HarmlessSpec::new(4)
            .with_variant(Variant::Merged)
            .build(&mut net);
        assert!(hx.ss1.is_none());
        hx.configure_legacy_directly(&mut net);
        hx.install_translator_rules(&mut net);
        // Wire 1 -> 2 and 2 -> 1 in the merged pipeline.
        {
            let dp = net.node_mut::<SoftSwitchNode>(hx.ss2).datapath_mut();
            dp.apply_flow_mod(&hx.merged_wiring_rule(1, 2), 0).unwrap();
            dp.apply_flow_mod(&hx.merged_wiring_rule(2, 1), 0).unwrap();
        }
        let a = hx.attach_host(&mut net, 1);
        let b = hx.attach_host(&mut net, 2);
        net.node_mut::<Host>(a)
            .ping(b"merged", "10.0.0.2".parse().unwrap());
        net.run_until(SimTime::from_millis(200));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
        assert_eq!(net.node_ref::<Host>(b).echo_requests_answered(), 1);
    }

    #[test]
    fn static_wiring_carries_line_rate_traffic() {
        let mut net = Network::new(7);
        let ctrl = net.add_node(ControllerNode::new(
            "ctrl",
            vec![Box::new(StaticForwarder::bidirectional(&[(1, 2)]))],
        ));
        let hx = HarmlessSpec::new(2).build(&mut net);
        hx.configure_legacy_directly(&mut net);
        hx.install_translator_rules(&mut net);
        hx.connect_controller(&mut net, ctrl);
        let g = net.add_node(Generator::new(
            "gen",
            PortId(0),
            Pattern::Cbr { pps: 50_000.0 },
            vec![FlowSpec::simple(1, 2, 512)],
            SimTime::from_millis(100), // after control plane settles
            SimTime::from_millis(200),
        ));
        let s = net.add_node(Sink::new("sink"));
        hx.attach_node(&mut net, 1, g);
        hx.attach_node(&mut net, 2, s);
        net.run_until(SimTime::from_millis(400));
        let sink = net.node_ref::<Sink>(s);
        assert_eq!(sink.received(), 5_000, "no loss at 50 kpps");
        // Latency through legacy → SS_1 → SS_2 → SS_1 → legacy.
        assert!(
            sink.latency().p50() > 8_000,
            "p50={}ns",
            sink.latency().p50()
        );
        assert!(
            sink.latency().p50() < 50_000,
            "p50={}ns",
            sink.latency().p50()
        );
    }

    #[test]
    fn trunk_numbering() {
        let mut net = Network::new(1);
        let hx = HarmlessSpec::new(8).with_trunks(2).build(&mut net);
        assert_eq!(hx.trunk_legacy_port(1), 9);
        assert_eq!(hx.trunk_legacy_port(2), 10);
    }

    #[test]
    fn merged_and_two_switch_dpids_stay_distinct() {
        let mut net = Network::new(1);
        let two = HarmlessSpec::new(2).build(&mut net);
        let merged = HarmlessSpec::new(2)
            .with_variant(Variant::Merged)
            .build(&mut net);
        let d_two = net
            .node_ref::<SoftSwitchNode>(two.ss2)
            .datapath()
            .datapath_id();
        let d_merged = net
            .node_ref::<SoftSwitchNode>(merged.ss2)
            .datapath()
            .datapath_id();
        assert_eq!(d_two, SS2_DPID);
        assert_eq!(d_merged, MERGED_DPID);
        // An explicit override still wins.
        let custom = HarmlessSpec::new(2)
            .with_variant(Variant::Merged)
            .with_dpids(0x9991, 0x9992)
            .build(&mut net);
        assert_eq!(
            net.node_ref::<SoftSwitchNode>(custom.ss2)
                .datapath()
                .datapath_id(),
            0x9992
        );
    }

    #[test]
    fn ss2_has_controller_reflects_configuration() {
        let mut net = Network::new(1);
        let ctrl = net.add_node(ControllerNode::new("ctrl", vec![]));
        let hx = HarmlessSpec::new(2).build(&mut net);
        assert!(!hx.ss2_has_controller(&net));
        hx.connect_controller(&mut net, ctrl);
        assert!(hx.ss2_has_controller(&net));
    }

    #[test]
    #[should_panic(expected = "not an access port")]
    fn attach_host_validates_port() {
        let mut net = Network::new(1);
        let hx = HarmlessSpec::new(4).build(&mut net);
        hx.attach_host(&mut net, 5);
    }
}
