//! # harmless — Hybrid ARchitecture to Migrate Legacy Ethernet Switches to SDN
//!
//! A from-scratch reproduction of *HARMLESS: Cost-Effective Transitioning
//! to SDN* (Szalay et al., SIGCOMM 2017 Posters & Demos). HARMLESS turns a
//! plain legacy Ethernet switch into a fully reconfigurable OpenFlow
//! switch without replacing hardware:
//!
//! 1. every access port of the legacy switch is isolated in its own VLAN
//!    and hairpinned over a trunk to a server ("Tagging and
//!    Hairpinning", [`PortMap`]);
//! 2. a software-switch *translator* (SS_1) maps VLAN ids to patch ports
//!    ([`translator`]), so that
//! 3. the main OpenFlow switch (SS_2) — and therefore the SDN controller —
//!    sees an ordinary N-port switch with no VLAN gymnastics
//!    ([`instance`]);
//! 4. the [`manager`] automates the migration end to end over SNMP/NAPALM
//!    and OpenFlow, with verification and rollback.
//!
//! The [`cost`] module reproduces the CAPEX argument ("cost-effective,
//! without any substantial price tag"), and [`instance::Variant`] exposes
//! the design ablation between the paper's two-switch layout and a merged
//! single-datapath pipeline.
//!
//! Above the single retrofit, the [`fabric`] module composes N such pods
//! into one network — line or leaf–spine interconnects, per-pod hosts
//! with fabric-wide addressing, one controller over all datapaths, and
//! staged per-pod migration waves. [`fabric::FabricSpec::single`] is the
//! one-pod special case, so every topology in the workspace is built
//! through the same declarative entry point.
//!
//! ## Quickstart
//!
//! ```
//! use harmless::instance::{HarmlessSpec, Variant};
//! use netsim::{Network, SimTime};
//! use netsim::host::Host;
//!
//! let mut net = Network::new(7);
//! // An 4-port legacy switch migrated to SDN, with an L2-learning
//! // controller on top.
//! let ctrl = net.add_node(controller::ControllerNode::new(
//!     "ctrl",
//!     vec![Box::new(controller::apps::LearningSwitch::new())],
//! ));
//! let hx = HarmlessSpec::new(4).build(&mut net);
//! hx.install_translator_rules(&mut net);
//! hx.connect_controller(&mut net, ctrl);
//! let a = hx.attach_host(&mut net, 1);
//! let b = hx.attach_host(&mut net, 2);
//! net.run_until(SimTime::from_millis(200));
//! net.with_node_ctx::<Host, _>(a, |h, ctx| {
//!     h.ping(b"hello", "10.0.0.2".parse().unwrap());
//!     h.flush(ctx);
//! });
//! net.run_until(SimTime::from_millis(400));
//! assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
//! # let _ = b;
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cost;
pub mod fabric;
pub mod instance;
pub mod manager;
pub mod portmap;
pub mod translator;

pub use fabric::{Fabric, FabricError, FabricSpec, Interconnect};
pub use instance::{HarmlessInstance, HarmlessSpec, Variant};
pub use manager::{HarmlessManager, ManagerConfig, ManagerPhase};
pub use portmap::PortMap;
