//! The access-port ↔ VLAN-id mapping at the heart of "Tagging and
//! Hairpinning".
//!
//! Each managed access port `p` of the legacy switch gets a dedicated
//! VLAN `base + p` that identifies it on the trunk. The map enforces the
//! 802.1Q budget (ids 1..=4094, one per port, no collisions with
//! VLANs reserved for other uses).

/// A validated, bijective access-port → VLAN-id mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortMap {
    base: u16,
    n_ports: u16,
}

/// Errors constructing a [`PortMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortMapError {
    /// No ports requested.
    NoPorts,
    /// `base + n_ports` would exceed VLAN id 4094.
    VlanSpaceExhausted,
    /// The base must leave VLAN 1 (the default VLAN) alone.
    BaseTooLow,
}

impl core::fmt::Display for PortMapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PortMapError::NoPorts => write!(f, "need at least one access port"),
            PortMapError::VlanSpaceExhausted => {
                write!(f, "mapping exceeds the 4094 usable VLAN ids")
            }
            PortMapError::BaseTooLow => write!(f, "VLAN base must be at least 2"),
        }
    }
}

impl std::error::Error for PortMapError {}

impl PortMap {
    /// The default VLAN base used across the workspace (port 1 ↔ VLAN 101,
    /// as in the paper's figure).
    pub const DEFAULT_BASE: u16 = 100;

    /// Map ports `1..=n_ports` to VLANs `base+1..=base+n_ports`.
    pub fn new(base: u16, n_ports: u16) -> Result<PortMap, PortMapError> {
        if n_ports == 0 {
            return Err(PortMapError::NoPorts);
        }
        if base < 1 {
            return Err(PortMapError::BaseTooLow);
        }
        if u32::from(base) + u32::from(n_ports) > 4094 {
            return Err(PortMapError::VlanSpaceExhausted);
        }
        Ok(PortMap { base, n_ports })
    }

    /// The default mapping for `n_ports` ports.
    pub fn with_defaults(n_ports: u16) -> Result<PortMap, PortMapError> {
        Self::new(Self::DEFAULT_BASE, n_ports)
    }

    /// Number of managed access ports.
    pub fn n_ports(&self) -> u16 {
        self.n_ports
    }

    /// The VLAN base.
    pub fn base(&self) -> u16 {
        self.base
    }

    /// VLAN id of access port `port` (1-based).
    pub fn vlan_of(&self, port: u16) -> Option<u16> {
        (1..=self.n_ports).contains(&port).then(|| self.base + port)
    }

    /// Access port of VLAN `vid`, if it belongs to this map.
    pub fn port_of(&self, vid: u16) -> Option<u16> {
        let p = vid.checked_sub(self.base)?;
        (1..=self.n_ports).contains(&p).then_some(p)
    }

    /// Iterate `(port, vlan)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        (1..=self.n_ports).map(|p| (p, self.base + p))
    }

    /// All VLAN ids used by this map.
    pub fn vlans(&self) -> Vec<u16> {
        self.iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_a_bijection() {
        let m = PortMap::with_defaults(48).unwrap();
        for (p, v) in m.iter() {
            assert_eq!(m.vlan_of(p), Some(v));
            assert_eq!(m.port_of(v), Some(p));
        }
        assert_eq!(m.vlan_of(1), Some(101));
        assert_eq!(m.vlan_of(48), Some(148));
        assert_eq!(m.vlan_of(0), None);
        assert_eq!(m.vlan_of(49), None);
        assert_eq!(m.port_of(100), None);
        assert_eq!(m.port_of(149), None);
    }

    #[test]
    fn vlan_budget_enforced() {
        assert!(PortMap::new(100, 3994).is_ok()); // 100+3994 = 4094
        assert_eq!(
            PortMap::new(100, 3995).unwrap_err(),
            PortMapError::VlanSpaceExhausted
        );
        assert_eq!(PortMap::new(0, 4).unwrap_err(), PortMapError::BaseTooLow);
        assert_eq!(PortMap::new(100, 0).unwrap_err(), PortMapError::NoPorts);
    }

    #[test]
    fn proptest_like_sweep() {
        for base in [1u16, 2, 100, 1000, 4000] {
            for n in [1u16, 8, 48, 94] {
                if let Ok(m) = PortMap::new(base, n) {
                    let vlans = m.vlans();
                    assert_eq!(vlans.len(), usize::from(n));
                    let unique: std::collections::BTreeSet<_> = vlans.iter().collect();
                    assert_eq!(unique.len(), vlans.len(), "vlan ids must be unique");
                    assert!(vlans.iter().all(|&v| (2..=4094).contains(&v)));
                }
            }
        }
    }
}
