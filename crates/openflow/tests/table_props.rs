//! Property tests for flow-table semantics: priority ordering, the
//! non-strict subset relation, and overlap symmetry — checked against
//! brute-force oracles.

use proptest::prelude::*;

use netpkt::{builder, FlowKey, MacAddr};
use openflow::table::{FlowEntry, FlowTable, TableId};
use openflow::{Action, Instruction, Match};

/// A small universe of match shapes so collisions actually happen.
fn arb_rule_match() -> impl Strategy<Value = Match> {
    prop_oneof![
        Just(Match::any()),
        (0u16..8).prop_map(|p| Match::new().eth_type(0x0800).ip_proto(17).udp_dst(p)),
        (0u32..4).prop_map(|s| {
            Match::new().eth_type(0x0800).ipv4_src_masked(
                std::net::Ipv4Addr::from(0x0a00_0000 + (s << 8)),
                std::net::Ipv4Addr::new(255, 255, 255, 0),
            )
        }),
        Just(Match::new().eth_type(0x0806)),
        (1u32..5).prop_map(|p| Match::new().in_port(p)),
    ]
}

fn packet_key(in_port: u32, src_low: u32, dport: u16) -> FlowKey {
    let f = builder::udp_packet(
        MacAddr::host(src_low),
        MacAddr::host(99),
        std::net::Ipv4Addr::from(0x0a00_0000 + src_low),
        std::net::Ipv4Addr::new(10, 0, 0, 99),
        1000,
        dport,
        b"x",
    );
    FlowKey::extract(in_port, &f).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `lookup` must return the first (highest-priority, FIFO within
    /// priority) matching entry — cross-checked against a brute-force
    /// scan of the unordered rule list.
    #[test]
    fn lookup_matches_bruteforce_oracle(
        rules in proptest::collection::vec((arb_rule_match(), 0u16..4), 1..15),
        probes in proptest::collection::vec((1u32..5, 0u32..1024, 0u16..8), 1..20),
    ) {
        let mut table = FlowTable::new(TableId(0));
        // Shadow list in insertion order for the oracle.
        let mut oracle: Vec<(u16, Match, usize)> = Vec::new();
        for (i, (m, prio)) in rules.iter().enumerate() {
            let e = FlowEntry::new(
                *prio,
                m.clone(),
                Instruction::apply(vec![Action::output(i as u32 + 1)]),
                0,
            );
            // `add` replaces identical (match, priority); mirror that.
            let (key, mask) = m.to_key_mask();
            oracle.retain(|(p, om, _)| {
                let (ok, omask) = om.to_key_mask();
                !(*p == *prio && ok == key && omask == mask)
            });
            table.add(e).unwrap();
            oracle.push((*prio, m.clone(), i + 1));
        }
        for (in_port, src, dport) in probes {
            let key = packet_key(in_port, src, dport);
            let got = table.lookup(&key).map(|idx| table.entry(idx).priority);
            // Oracle: max priority among matching; FIFO tie-break.
            let want = oracle
                .iter()
                .filter(|(_, m, _)| m.matches(&key))
                .map(|(p, _, _)| *p)
                .max();
            prop_assert_eq!(got, want, "priority winner mismatch for {:?}", key);
        }
    }

    /// Non-strict delete removes exactly the entries whose match region
    /// is contained in the filter region.
    #[test]
    fn nonstrict_delete_is_subset_semantics(
        rules in proptest::collection::vec((arb_rule_match(), 0u16..4), 1..12),
        filter in arb_rule_match(),
    ) {
        let mut table = FlowTable::new(TableId(0));
        for (i, (m, prio)) in rules.iter().enumerate() {
            let _ = table.add(FlowEntry::new(
                *prio,
                m.clone(),
                Instruction::apply(vec![Action::output(i as u32 + 1)]),
                0,
            ));
        }
        let before = table.len();
        let (fkey, fmask) = filter.to_key_mask();
        let should_go: usize = table
            .entries()
            .iter()
            .filter(|e| e.within_filter(&fkey, &fmask))
            .count();
        let removed = table.delete(
            &filter,
            0,
            false,
            openflow::port_no::ANY,
            openflow::group_no::ANY,
        );
        prop_assert_eq!(removed.len(), should_go);
        prop_assert_eq!(table.len(), before - should_go);
        // Survivors must not be within the filter.
        for e in table.entries() {
            prop_assert!(!e.within_filter(&fkey, &fmask));
        }
    }

    /// Overlap is symmetric, and a witness packet matching both entries
    /// implies overlap (soundness direction).
    #[test]
    fn overlap_symmetric_and_sound(
        m1 in arb_rule_match(),
        m2 in arb_rule_match(),
        probes in proptest::collection::vec((1u32..5, 0u32..64, 0u16..8), 0..20),
    ) {
        let e1 = FlowEntry::new(1, m1, Instruction::apply(vec![]), 0);
        let e2 = FlowEntry::new(1, m2, Instruction::apply(vec![]), 0);
        prop_assert_eq!(e1.overlaps(&e2), e2.overlaps(&e1), "overlap must be symmetric");
        for (in_port, src, dport) in probes {
            let key = packet_key(in_port, src, dport);
            if e1.matches(&key) && e2.matches(&key) {
                prop_assert!(e1.overlaps(&e2), "witness packet but overlaps() said no");
            }
        }
    }

    /// Timeout processing never removes a permanent entry and always
    /// removes one whose hard deadline has passed.
    #[test]
    fn expiry_boundaries(
        idle in 0u16..5,
        hard in 0u16..5,
        advance_secs in 0u64..10,
    ) {
        let mut table = FlowTable::new(TableId(0));
        table
            .add(
                FlowEntry::new(1, Match::any(), Instruction::apply(vec![]), 0)
                    .with_timeouts(idle, hard),
            )
            .unwrap();
        let now = advance_secs * 1_000_000_000;
        let removed = table.expire(now);
        let hard_due = hard > 0 && advance_secs >= u64::from(hard);
        let idle_due = idle > 0 && advance_secs >= u64::from(idle);
        prop_assert_eq!(removed.len() == 1, hard_due || idle_due);
        if hard == 0 && idle == 0 {
            prop_assert_eq!(table.len(), 1, "permanent entries never expire");
        }
    }
}
