//! Flow-table semantics per OpenFlow 1.3 §5.2–5.5 and §6.4: priority
//! ordering, overlap checking, strict/non-strict modify/delete, idle and
//! hard timeouts, and per-entry counters.

use netpkt::flowkey::FieldMask;
use netpkt::FlowKey;

use crate::instruction::Instruction;
use crate::oxm::Match;
use crate::{Error, Result};

/// A table number within a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TableId(pub u8);

impl core::fmt::Display for TableId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Flow-mod flags (OF 1.3 `ofp_flow_mod_flags`).
pub mod flow_flags {
    /// Send a `FLOW_REMOVED` when this entry dies.
    pub const SEND_FLOW_REM: u16 = 1 << 0;
    /// Reject the add if it overlaps an existing entry of equal priority.
    pub const CHECK_OVERLAP: u16 = 1 << 1;
}

/// `ofp_flow_mod_command`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowModCommand {
    /// Insert (or replace an identical match+priority).
    Add,
    /// Modify instructions of all matching entries.
    Modify,
    /// Modify the entry exactly matching (match, priority).
    ModifyStrict,
    /// Delete all matching entries.
    Delete,
    /// Delete the entry exactly matching (match, priority).
    DeleteStrict,
}

impl FlowModCommand {
    /// Wire value.
    pub fn value(&self) -> u8 {
        match self {
            FlowModCommand::Add => 0,
            FlowModCommand::Modify => 1,
            FlowModCommand::ModifyStrict => 2,
            FlowModCommand::Delete => 3,
            FlowModCommand::DeleteStrict => 4,
        }
    }

    /// From wire value.
    pub fn from_value(v: u8) -> Result<FlowModCommand> {
        Ok(match v {
            0 => FlowModCommand::Add,
            1 => FlowModCommand::Modify,
            2 => FlowModCommand::ModifyStrict,
            3 => FlowModCommand::Delete,
            4 => FlowModCommand::DeleteStrict,
            _ => return Err(Error::Malformed("bad flow-mod command")),
        })
    }
}

/// Why an entry was removed (for `FLOW_REMOVED`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemovedReason {
    /// Idle timeout expired.
    IdleTimeout,
    /// Hard timeout expired.
    HardTimeout,
    /// Deleted by a flow-mod.
    Delete,
}

impl RemovedReason {
    /// Wire value.
    pub fn value(&self) -> u8 {
        match self {
            RemovedReason::IdleTimeout => 0,
            RemovedReason::HardTimeout => 1,
            RemovedReason::Delete => 2,
        }
    }
}

/// One installed flow entry.
#[derive(Debug, Clone)]
pub struct FlowEntry {
    /// Matching priority; higher wins.
    pub priority: u16,
    /// The authored match (kept for stats encoding).
    pub match_: Match,
    /// Precomputed lookup key (masked value).
    pub key: FlowKey,
    /// Precomputed lookup mask.
    pub mask: FieldMask,
    /// The instruction list executed on a hit.
    pub instructions: Vec<Instruction>,
    /// Controller-chosen opaque id.
    pub cookie: u64,
    /// Seconds of inactivity before removal (0 = never).
    pub idle_timeout: u16,
    /// Seconds of lifetime before removal (0 = never).
    pub hard_timeout: u16,
    /// `flow_flags` bits.
    pub flags: u16,
    /// Packets matched.
    pub packets: u64,
    /// Bytes matched.
    pub bytes: u64,
    /// Installation time (ns).
    pub installed_ns: u64,
    /// Last hit time (ns).
    pub last_used_ns: u64,
}

impl FlowEntry {
    /// Build an entry from a flow-mod's pieces at time `now_ns`.
    pub fn new(
        priority: u16,
        match_: Match,
        instructions: Vec<Instruction>,
        now_ns: u64,
    ) -> FlowEntry {
        let (key, mask) = match_.to_key_mask();
        FlowEntry {
            priority,
            match_,
            key,
            mask,
            instructions,
            cookie: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            flags: 0,
            packets: 0,
            bytes: 0,
            installed_ns: now_ns,
            last_used_ns: now_ns,
        }
    }

    /// Builder-style cookie.
    pub fn with_cookie(mut self, c: u64) -> Self {
        self.cookie = c;
        self
    }

    /// Builder-style timeouts (seconds).
    pub fn with_timeouts(mut self, idle: u16, hard: u16) -> Self {
        self.idle_timeout = idle;
        self.hard_timeout = hard;
        self
    }

    /// Builder-style flags.
    pub fn with_flags(mut self, f: u16) -> Self {
        self.flags = f;
        self
    }

    /// True if `pkt` satisfies this entry's match.
    pub fn matches(&self, pkt: &FlowKey) -> bool {
        pkt.masked(&self.mask) == self.key
    }

    /// True if two entries can both match some packet (used for
    /// `CHECK_OVERLAP`).
    pub fn overlaps(&self, other: &FlowEntry) -> bool {
        // Values must agree on the intersection of the masks. Keys are
        // already normalized (masked), so cross-masking compares exactly
        // the shared bits.
        self.key.masked(&other.mask) == other.key.masked(&self.mask)
    }

    /// True if this entry falls inside the filter region of a non-strict
    /// delete/modify: every packet this entry matches also matches
    /// `(fkey, fmask)`.
    pub fn within_filter(&self, fkey: &FlowKey, fmask: &FieldMask) -> bool {
        self.mask.mask_union(fmask) == self.mask && self.key.masked(fmask) == *fkey
    }

    /// True if the entry outputs to `port` (for delete filters);
    /// `port_no::ANY` matches everything.
    pub fn outputs_to(&self, port: u32) -> bool {
        if port == crate::port_no::ANY {
            return true;
        }
        self.instructions.iter().any(|i| match i {
            Instruction::WriteActions(a) | Instruction::ApplyActions(a) => a
                .iter()
                .any(|x| matches!(x, crate::Action::Output { port: p, .. } if *p == port)),
            _ => false,
        })
    }

    /// True if the entry forwards to `group`; `group_no::ANY` matches all.
    pub fn outputs_to_group(&self, group: u32) -> bool {
        if group == crate::group_no::ANY {
            return true;
        }
        self.instructions.iter().any(|i| match i {
            Instruction::WriteActions(a) | Instruction::ApplyActions(a) => a
                .iter()
                .any(|x| matches!(x, crate::Action::Group(g) if *g == group)),
            _ => false,
        })
    }
}

/// A single flow table: entries ordered by priority (descending), FIFO
/// within equal priority.
#[derive(Debug)]
pub struct FlowTable {
    id: TableId,
    entries: Vec<FlowEntry>,
    capacity: usize,
    version: u64,
    lookups: u64,
    hits: u64,
}

impl FlowTable {
    /// An unbounded table.
    pub fn new(id: TableId) -> FlowTable {
        FlowTable::with_capacity(id, usize::MAX)
    }

    /// A table that refuses adds beyond `capacity` entries (models TCAM).
    pub fn with_capacity(id: TableId, capacity: usize) -> FlowTable {
        FlowTable {
            id,
            entries: Vec::new(),
            capacity,
            version: 0,
            lookups: 0,
            hits: 0,
        }
    }

    /// This table's id.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Monotonic version, bumped on every mutation (drives dataplane cache
    /// invalidation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that matched an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// All entries, highest priority first.
    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }

    /// Install an entry per OF `ADD` semantics.
    pub fn add(&mut self, entry: FlowEntry) -> Result<()> {
        if entry.flags & flow_flags::CHECK_OVERLAP != 0 {
            for e in &self.entries {
                if e.priority == entry.priority && e.overlaps(&entry) {
                    return Err(Error::Overlap);
                }
            }
        }
        // Identical match + priority: replace in place (counters reset).
        if let Some(pos) = self.entries.iter().position(|e| {
            e.priority == entry.priority && e.key == entry.key && e.mask == entry.mask
        }) {
            self.entries[pos] = entry;
            self.version += 1;
            return Ok(());
        }
        if self.entries.len() >= self.capacity {
            return Err(Error::TableFull);
        }
        // Insert after the last entry with priority >= new (stable order).
        let pos = self
            .entries
            .iter()
            .position(|e| e.priority < entry.priority)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, entry);
        self.version += 1;
        Ok(())
    }

    /// Modify instructions of matching entries; returns how many changed.
    pub fn modify(
        &mut self,
        match_: &Match,
        priority: u16,
        strict: bool,
        instructions: &[Instruction],
    ) -> usize {
        let (fkey, fmask) = match_.to_key_mask();
        let mut changed = 0;
        for e in &mut self.entries {
            let selected = if strict {
                e.priority == priority && e.key == fkey && e.mask == fmask
            } else {
                e.within_filter(&fkey, &fmask)
            };
            if selected {
                e.instructions = instructions.to_vec();
                changed += 1;
            }
        }
        if changed > 0 {
            self.version += 1;
        }
        changed
    }

    /// Delete matching entries, honouring `out_port`/`out_group` filters.
    /// Returns the removed entries (with reason `Delete`) so the caller can
    /// emit `FLOW_REMOVED` for those that asked.
    pub fn delete(
        &mut self,
        match_: &Match,
        priority: u16,
        strict: bool,
        out_port: u32,
        out_group: u32,
    ) -> Vec<FlowEntry> {
        let (fkey, fmask) = match_.to_key_mask();
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            let selected = if strict {
                e.priority == priority && e.key == fkey && e.mask == fmask
            } else {
                e.within_filter(&fkey, &fmask)
            } && e.outputs_to(out_port)
                && e.outputs_to_group(out_group);
            if selected {
                removed.push(e.clone());
            }
            !selected
        });
        if !removed.is_empty() {
            self.version += 1;
        }
        removed
    }

    /// Highest-priority entry matching `pkt`, if any. Counters are *not*
    /// bumped here; call [`FlowTable::hit`] with the returned index.
    pub fn lookup(&mut self, pkt: &FlowKey) -> Option<usize> {
        self.lookups += 1;
        // Entries are priority-sorted, so the first match wins.
        let idx = self.entries.iter().position(|e| e.matches(pkt))?;
        self.hits += 1;
        Some(idx)
    }

    /// Like [`FlowTable::lookup`] but also counts packets scanned before
    /// the hit, for cost modelling.
    pub fn lookup_counting(&mut self, pkt: &FlowKey) -> (Option<usize>, usize) {
        self.lookups += 1;
        for (i, e) in self.entries.iter().enumerate() {
            if e.matches(pkt) {
                self.hits += 1;
                return (Some(i), i + 1);
            }
        }
        (None, self.entries.len())
    }

    /// Record a hit on entry `idx`.
    pub fn hit(&mut self, idx: usize, bytes: u64, now_ns: u64) {
        let e = &mut self.entries[idx];
        e.packets += 1;
        e.bytes += bytes;
        e.last_used_ns = now_ns;
    }

    /// Entry accessor by index.
    pub fn entry(&self, idx: usize) -> &FlowEntry {
        &self.entries[idx]
    }

    /// Remove timed-out entries; returns them with their reasons.
    pub fn expire(&mut self, now_ns: u64) -> Vec<(FlowEntry, RemovedReason)> {
        let mut out = Vec::new();
        self.entries.retain(|e| {
            if e.hard_timeout > 0
                && now_ns >= e.installed_ns + u64::from(e.hard_timeout) * 1_000_000_000
            {
                out.push((e.clone(), RemovedReason::HardTimeout));
                return false;
            }
            if e.idle_timeout > 0
                && now_ns >= e.last_used_ns + u64::from(e.idle_timeout) * 1_000_000_000
            {
                out.push((e.clone(), RemovedReason::IdleTimeout));
                return false;
            }
            true
        });
        if !out.is_empty() {
            self.version += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Action;
    use netpkt::{builder, MacAddr};
    use std::net::Ipv4Addr;

    fn udp_key(dst_port: u16) -> FlowKey {
        let f = builder::udp_packet(
            MacAddr::host(1),
            MacAddr::host(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            dst_port,
            b"x",
        );
        FlowKey::extract(1, &f).unwrap()
    }

    fn entry(priority: u16, m: Match, out: u32) -> FlowEntry {
        FlowEntry::new(
            priority,
            m,
            Instruction::apply(vec![Action::output(out)]),
            0,
        )
    }

    fn udp_match(port: u16) -> Match {
        Match::new().eth_type(0x0800).ip_proto(17).udp_dst(port)
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new(TableId(0));
        t.add(entry(10, Match::any(), 1)).unwrap();
        t.add(entry(100, udp_match(53), 2)).unwrap();
        let idx = t.lookup(&udp_key(53)).unwrap();
        assert_eq!(t.entry(idx).priority, 100);
        let idx = t.lookup(&udp_key(80)).unwrap();
        assert_eq!(t.entry(idx).priority, 10);
        assert_eq!(t.lookups(), 2);
        assert_eq!(t.hits(), 2);
    }

    #[test]
    fn equal_priority_is_fifo() {
        let mut t = FlowTable::new(TableId(0));
        t.add(entry(50, udp_match(53), 1)).unwrap();
        t.add(entry(50, Match::new().eth_type(0x0800).ip_proto(17), 2))
            .unwrap();
        // Both match; the first-installed must win.
        let idx = t.lookup(&udp_key(53)).unwrap();
        assert!(t.entry(idx).outputs_to(1));
    }

    #[test]
    fn add_replaces_identical_match_priority() {
        let mut t = FlowTable::new(TableId(0));
        t.add(entry(5, udp_match(53), 1)).unwrap();
        t.add(entry(5, udp_match(53), 9)).unwrap();
        assert_eq!(t.len(), 1);
        let idx = t.lookup(&udp_key(53)).unwrap();
        assert!(t.entry(idx).outputs_to(9));
    }

    #[test]
    fn check_overlap_rejects() {
        let mut t = FlowTable::new(TableId(0));
        t.add(entry(5, udp_match(53), 1)).unwrap();
        // Overlapping at same priority (any UDP includes dst 53).
        let e = entry(5, Match::new().eth_type(0x0800).ip_proto(17), 2)
            .with_flags(flow_flags::CHECK_OVERLAP);
        assert_eq!(t.add(e).unwrap_err(), Error::Overlap);
        // Same match at different priority is fine.
        let e = entry(6, Match::new().eth_type(0x0800).ip_proto(17), 2)
            .with_flags(flow_flags::CHECK_OVERLAP);
        t.add(e).unwrap();
        // Disjoint matches at same priority are fine.
        let e = entry(5, udp_match(54), 3).with_flags(flow_flags::CHECK_OVERLAP);
        t.add(e).unwrap();
    }

    #[test]
    fn capacity_enforced() {
        let mut t = FlowTable::with_capacity(TableId(0), 2);
        t.add(entry(1, udp_match(1), 1)).unwrap();
        t.add(entry(1, udp_match(2), 1)).unwrap();
        assert_eq!(
            t.add(entry(1, udp_match(3), 1)).unwrap_err(),
            Error::TableFull
        );
        // Replacement still allowed at capacity.
        t.add(entry(1, udp_match(2), 9)).unwrap();
    }

    #[test]
    fn nonstrict_delete_uses_subset_semantics() {
        let mut t = FlowTable::new(TableId(0));
        t.add(entry(5, udp_match(53), 1)).unwrap();
        t.add(entry(5, udp_match(80), 1)).unwrap();
        t.add(entry(5, Match::new().eth_type(0x0806), 1)).unwrap();
        // Filter: all UDP — removes both UDP entries, leaves ARP.
        let removed = t.delete(
            &Match::new().eth_type(0x0800).ip_proto(17),
            0,
            false,
            crate::port_no::ANY,
            crate::group_no::ANY,
        );
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
        // Empty filter removes everything.
        let removed = t.delete(
            &Match::any(),
            0,
            false,
            crate::port_no::ANY,
            crate::group_no::ANY,
        );
        assert_eq!(removed.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn strict_delete_needs_exact_match_and_priority() {
        let mut t = FlowTable::new(TableId(0));
        t.add(entry(5, udp_match(53), 1)).unwrap();
        let removed = t.delete(
            &udp_match(53),
            6,
            true,
            crate::port_no::ANY,
            crate::group_no::ANY,
        );
        assert!(removed.is_empty());
        let removed = t.delete(
            &udp_match(53),
            5,
            true,
            crate::port_no::ANY,
            crate::group_no::ANY,
        );
        assert_eq!(removed.len(), 1);
    }

    #[test]
    fn delete_out_port_filter() {
        let mut t = FlowTable::new(TableId(0));
        t.add(entry(5, udp_match(53), 1)).unwrap();
        t.add(entry(5, udp_match(80), 2)).unwrap();
        let removed = t.delete(&Match::any(), 0, false, 2, crate::group_no::ANY);
        assert_eq!(removed.len(), 1);
        assert!(removed[0].outputs_to(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn modify_rewrites_instructions_keeps_counters() {
        let mut t = FlowTable::new(TableId(0));
        t.add(entry(5, udp_match(53), 1)).unwrap();
        let idx = t.lookup(&udp_key(53)).unwrap();
        t.hit(idx, 100, 1);
        let n = t.modify(
            &udp_match(53),
            5,
            true,
            &Instruction::apply(vec![Action::output(7)]),
        );
        assert_eq!(n, 1);
        let idx = t.lookup(&udp_key(53)).unwrap();
        assert!(t.entry(idx).outputs_to(7));
        assert_eq!(t.entry(idx).packets, 1, "modify must not reset counters");
    }

    #[test]
    fn timeouts_expire() {
        let sec = 1_000_000_000u64;
        let mut t = FlowTable::new(TableId(0));
        t.add(entry(5, udp_match(53), 1).with_timeouts(0, 10))
            .unwrap();
        t.add(entry(5, udp_match(80), 1).with_timeouts(3, 0))
            .unwrap();
        assert!(t.expire(2 * sec).is_empty());
        // Keep the idle entry alive by hitting it at t=2s.
        let idx = t.lookup(&udp_key(80)).unwrap();
        t.hit(idx, 1, 2 * sec);
        let out = t.expire(4 * sec);
        assert!(out.is_empty(), "idle clock restarted at 2s");
        let out = t.expire(5 * sec);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, RemovedReason::IdleTimeout);
        let out = t.expire(10 * sec);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, RemovedReason::HardTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn version_bumps_on_mutation_only() {
        let mut t = FlowTable::new(TableId(0));
        let v0 = t.version();
        t.add(entry(5, udp_match(53), 1)).unwrap();
        let v1 = t.version();
        assert!(v1 > v0);
        t.lookup(&udp_key(53));
        assert_eq!(t.version(), v1, "lookups must not invalidate caches");
        t.delete(
            &Match::any(),
            0,
            false,
            crate::port_no::ANY,
            crate::group_no::ANY,
        );
        assert!(t.version() > v1);
    }

    #[test]
    fn table_miss_entry_catches_all() {
        let mut t = FlowTable::new(TableId(0));
        // Priority-0 any match = the OF 1.3 table-miss entry.
        t.add(FlowEntry::new(
            0,
            Match::any(),
            Instruction::apply(vec![Action::to_controller()]),
            0,
        ))
        .unwrap();
        assert!(t.lookup(&udp_key(1)).is_some());
        assert!(t.lookup(&FlowKey::default()).is_some());
    }
}
