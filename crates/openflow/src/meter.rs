//! Meter table (OF 1.3 §5.7): per-flow rate limiting with drop bands,
//! implemented as token buckets over simulated time.

use std::collections::BTreeMap;

use crate::{Error, Result};

/// A meter band. Only the `drop` band type is modelled; DSCP remark is out
/// of scope for an L2 migration shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeterBand {
    /// Rate in kilobits per second (or packets per second when the meter
    /// has [`Meter::pktps`] set).
    pub rate: u32,
    /// Burst size in kilobits (or packets).
    pub burst: u32,
}

/// One installed meter: a token bucket refilled at `band.rate`.
#[derive(Debug, Clone)]
pub struct Meter {
    /// Meter id.
    pub id: u32,
    /// The single drop band.
    pub band: MeterBand,
    /// Rate is packets/s rather than kb/s.
    pub pktps: bool,
    /// Tokens currently available, in millibits (or micropackets) for
    /// precision.
    tokens: u64,
    /// Last refill time, ns.
    last_ns: u64,
    /// Packets passed.
    pub passed: u64,
    /// Packets dropped by the band.
    pub dropped: u64,
}

impl Meter {
    fn capacity(&self) -> u64 {
        // Same scale factor either way: micro-packets for pktps meters,
        // millibits (1 kb = 1e6 mbit) for kbps meters.
        u64::from(self.band.burst.max(1)) * 1_000_000
    }

    fn refill(&mut self, now_ns: u64) {
        let dt = now_ns.saturating_sub(self.last_ns);
        self.last_ns = now_ns;
        // rate kb/s = rate millibits/µs; dt ns -> µs
        let add = (u128::from(dt) * u128::from(self.band.rate)) / 1_000;
        self.tokens = (self.tokens as u128 + add).min(u128::from(self.capacity())) as u64;
    }

    /// Offer a packet of `bytes` to the meter at `now_ns`. Returns `true`
    /// if it passes, `false` if the drop band fires.
    pub fn offer(&mut self, now_ns: u64, bytes: usize) -> bool {
        self.refill(now_ns);
        let cost = if self.pktps {
            1_000_000 // one micropacket-million = 1 packet
        } else {
            bytes as u64 * 8 * 1_000 // bits -> millibits
        };
        if self.tokens >= cost {
            self.tokens -= cost;
            self.passed += 1;
            true
        } else {
            self.dropped += 1;
            false
        }
    }
}

/// `ofp_meter_mod` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeterModCommand {
    /// Create.
    Add,
    /// Replace.
    Modify,
    /// Remove.
    Delete,
}

impl MeterModCommand {
    /// Wire value.
    pub fn value(&self) -> u16 {
        match self {
            MeterModCommand::Add => 0,
            MeterModCommand::Modify => 1,
            MeterModCommand::Delete => 2,
        }
    }

    /// From wire value.
    pub fn from_value(v: u16) -> Result<MeterModCommand> {
        Ok(match v {
            0 => MeterModCommand::Add,
            1 => MeterModCommand::Modify,
            2 => MeterModCommand::Delete,
            _ => return Err(Error::Malformed("bad meter-mod command")),
        })
    }
}

/// The meter table of one switch.
#[derive(Debug, Default)]
pub struct MeterTable {
    meters: BTreeMap<u32, Meter>,
}

impl MeterTable {
    /// Empty table.
    pub fn new() -> MeterTable {
        MeterTable::default()
    }

    /// Number of meters.
    pub fn len(&self) -> usize {
        self.meters.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.meters.is_empty()
    }

    /// Install a meter.
    pub fn add(&mut self, id: u32, band: MeterBand, pktps: bool, now_ns: u64) -> Result<()> {
        if self.meters.contains_key(&id) {
            return Err(Error::BadMeter("meter exists"));
        }
        let mut m = Meter {
            id,
            band,
            pktps,
            tokens: 0,
            last_ns: now_ns,
            passed: 0,
            dropped: 0,
        };
        m.tokens = m.capacity(); // start full
        self.meters.insert(id, m);
        Ok(())
    }

    /// Replace a meter's band.
    pub fn modify(&mut self, id: u32, band: MeterBand, pktps: bool) -> Result<()> {
        let m = self
            .meters
            .get_mut(&id)
            .ok_or(Error::BadMeter("no such meter"))?;
        m.band = band;
        m.pktps = pktps;
        Ok(())
    }

    /// Remove a meter; true if it existed.
    pub fn delete(&mut self, id: u32) -> bool {
        self.meters.remove(&id).is_some()
    }

    /// Offer a packet to meter `id`; unknown meters pass everything (the
    /// spec says the flow entry would not have installed, but be lenient).
    pub fn offer(&mut self, id: u32, now_ns: u64, bytes: usize) -> bool {
        match self.meters.get_mut(&id) {
            Some(m) => m.offer(now_ns, bytes),
            None => true,
        }
    }

    /// Read-only meter access for stats.
    pub fn get(&self, id: u32) -> Option<&Meter> {
        self.meters.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn meter_limits_byte_rate() {
        let mut mt = MeterTable::new();
        // 8000 kb/s = 1 MB/s, burst 80 kb = 10 KB.
        mt.add(
            1,
            MeterBand {
                rate: 8_000,
                burst: 80,
            },
            false,
            0,
        )
        .unwrap();
        // Offer 1500-byte packets every 1 ms = 1.5 MB/s: ~2/3 should pass.
        let mut passed = 0;
        for i in 0..1000 {
            if mt.offer(1, i * SEC / 1000, 1500) {
                passed += 1;
            }
        }
        let share = passed as f64 / 1000.0;
        assert!((share - 0.667).abs() < 0.05, "passed share = {share}");
    }

    #[test]
    fn meter_passes_under_rate() {
        let mut mt = MeterTable::new();
        mt.add(
            1,
            MeterBand {
                rate: 8_000,
                burst: 80,
            },
            false,
            0,
        )
        .unwrap();
        // 0.5 MB/s offered against a 1 MB/s meter: everything passes.
        for i in 0..100 {
            assert!(mt.offer(1, i * SEC / 333, 1500));
        }
    }

    #[test]
    fn pktps_meter_counts_packets() {
        let mut mt = MeterTable::new();
        mt.add(
            1,
            MeterBand {
                rate: 100,
                burst: 10,
            },
            true,
            0,
        )
        .unwrap();
        // 200 pps offered against 100 pps: about half pass.
        let mut passed = 0;
        for i in 0..400 {
            if mt.offer(1, i * SEC / 200, 60) {
                passed += 1;
            }
        }
        assert!((150..=250).contains(&passed), "passed={passed}");
    }

    #[test]
    fn unknown_meter_passes() {
        let mut mt = MeterTable::new();
        assert!(mt.offer(9, 0, 1500));
    }

    #[test]
    fn add_modify_delete() {
        let mut mt = MeterTable::new();
        mt.add(1, MeterBand { rate: 1, burst: 1 }, false, 0)
            .unwrap();
        assert!(mt
            .add(1, MeterBand { rate: 1, burst: 1 }, false, 0)
            .is_err());
        mt.modify(1, MeterBand { rate: 2, burst: 2 }, false)
            .unwrap();
        assert!(mt
            .modify(2, MeterBand { rate: 2, burst: 2 }, false)
            .is_err());
        assert!(mt.delete(1));
        assert!(!mt.delete(1));
    }
}
