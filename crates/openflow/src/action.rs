//! OpenFlow 1.3 actions (§7.2.5).

use bytes::{Buf, BufMut, BytesMut};

use crate::oxm::OxmField;
use crate::{Error, Result};

/// Default `max_len` for controller output actions.
pub const DEFAULT_MAX_LEN: u16 = 0xffe5; // OFPCML_MAX

/// Experimenter id carried by this stack's experimenter actions (the
/// stateful-NAT action below). Spells "HARM" in ASCII.
pub const HARMLESS_EXPERIMENTER: u32 = 0x4841_524d;

/// Which way the stateful NAT stage translates (see
/// [`Action::Nat`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NatDir {
    /// Outbound: source-translate to the datapath's external address,
    /// allocating per-connection state on first packet.
    Egress,
    /// Inbound: reverse-translate the destination back to the internal
    /// host; packets with no live connection state are dropped.
    Ingress,
}

/// An OpenFlow action.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward out a port (physical or reserved, see [`crate::port_no`]).
    Output {
        /// Egress port number.
        port: u32,
        /// Bytes to send to the controller when `port` is CONTROLLER.
        max_len: u16,
    },
    /// Process through a group.
    Group(u32),
    /// Set the egress queue.
    SetQueue(u32),
    /// Push a new outermost 802.1Q tag with the given TPID (0x8100/0x88a8).
    PushVlan(u16),
    /// Pop the outermost VLAN tag.
    PopVlan,
    /// Rewrite a header field.
    SetField(OxmField),
    /// Decrement the IPv4 TTL (incremental checksum update in the
    /// datapath); an expired packet is dropped and answered with ICMP
    /// time-exceeded instead of forwarded.
    DecNwTtl,
    /// Run the packet through the datapath's stateful NAT stage
    /// (experimenter action, id [`HARMLESS_EXPERIMENTER`]).
    Nat(NatDir),
}

impl Action {
    /// Shorthand for a plain output action.
    pub fn output(port: u32) -> Action {
        Action::Output {
            port,
            max_len: DEFAULT_MAX_LEN,
        }
    }

    /// Shorthand for "punt the whole packet to the controller".
    pub fn to_controller() -> Action {
        Action::Output {
            port: crate::port_no::CONTROLLER,
            max_len: DEFAULT_MAX_LEN,
        }
    }

    /// Shorthand for setting the VLAN id of the outermost tag (OF
    /// convention: the OXM value carries the PRESENT bit).
    pub fn set_vlan_vid(vid: u16) -> Action {
        Action::SetField(OxmField::VlanVid(
            netpkt::flowkey::OFPVID_PRESENT | vid,
            None,
        ))
    }

    /// Encoded length, padded to 8 bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Action::Output { .. } => 16,
            Action::Group(_) | Action::SetQueue(_) => 8,
            Action::PushVlan(_) | Action::PopVlan | Action::DecNwTtl => 8,
            Action::SetField(f) => (4 + f.encoded_len()).div_ceil(8) * 8,
            Action::Nat(_) => 16,
        }
    }

    /// Append the wire form to `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        match *self {
            Action::Output { port, max_len } => {
                out.put_u16(0); // OFPAT_OUTPUT
                out.put_u16(16);
                out.put_u32(port);
                out.put_u16(max_len);
                out.put_bytes(0, 6);
            }
            Action::Group(id) => {
                out.put_u16(22); // OFPAT_GROUP
                out.put_u16(8);
                out.put_u32(id);
            }
            Action::SetQueue(id) => {
                out.put_u16(21); // OFPAT_SET_QUEUE
                out.put_u16(8);
                out.put_u32(id);
            }
            Action::PushVlan(tpid) => {
                out.put_u16(17); // OFPAT_PUSH_VLAN
                out.put_u16(8);
                out.put_u16(tpid);
                out.put_bytes(0, 2);
            }
            Action::PopVlan => {
                out.put_u16(18); // OFPAT_POP_VLAN
                out.put_u16(8);
                out.put_bytes(0, 4);
            }
            Action::SetField(ref f) => {
                let len = self.encoded_len();
                out.put_u16(25); // OFPAT_SET_FIELD
                out.put_u16(len as u16);
                let before = out.len();
                f.encode(out);
                let written = out.len() - before;
                out.put_bytes(0, len - 4 - written);
            }
            Action::DecNwTtl => {
                out.put_u16(24); // OFPAT_DEC_NW_TTL
                out.put_u16(8);
                out.put_bytes(0, 4);
            }
            Action::Nat(dir) => {
                out.put_u16(0xffff); // OFPAT_EXPERIMENTER
                out.put_u16(16);
                out.put_u32(HARMLESS_EXPERIMENTER);
                out.put_u16(match dir {
                    NatDir::Egress => 0,
                    NatDir::Ingress => 1,
                });
                out.put_bytes(0, 6);
            }
        }
    }

    /// Decode one action from the front of `buf`.
    pub fn decode(buf: &mut &[u8]) -> Result<Action> {
        if buf.len() < 4 {
            return Err(Error::Truncated);
        }
        let ty = buf.get_u16();
        let len = usize::from(buf.get_u16());
        if len < 8 || len % 8 != 0 {
            return Err(Error::Malformed(
                "action length must be a positive multiple of 8",
            ));
        }
        let body_len = len - 4;
        if buf.len() < body_len {
            return Err(Error::Truncated);
        }
        let mut body = &buf[..body_len];
        let action = match ty {
            0 => {
                if body.len() < 12 {
                    return Err(Error::Truncated);
                }
                let port = body.get_u32();
                let max_len = body.get_u16();
                Action::Output { port, max_len }
            }
            22 => {
                if body.len() < 4 {
                    return Err(Error::Truncated);
                }
                Action::Group(body.get_u32())
            }
            21 => {
                if body.len() < 4 {
                    return Err(Error::Truncated);
                }
                Action::SetQueue(body.get_u32())
            }
            17 => {
                if body.len() < 2 {
                    return Err(Error::Truncated);
                }
                Action::PushVlan(body.get_u16())
            }
            18 => Action::PopVlan,
            24 => Action::DecNwTtl,
            25 => Action::SetField(OxmField::decode(&mut body)?),
            0xffff => {
                if body.len() < 6 {
                    return Err(Error::Truncated);
                }
                if body.get_u32() != HARMLESS_EXPERIMENTER {
                    return Err(Error::Malformed("unknown experimenter action"));
                }
                match body.get_u16() {
                    0 => Action::Nat(NatDir::Egress),
                    1 => Action::Nat(NatDir::Ingress),
                    _ => return Err(Error::Malformed("unknown NAT subtype")),
                }
            }
            _ => return Err(Error::Malformed("unknown action type")),
        };
        buf.advance(body_len);
        Ok(action)
    }

    /// Encode a list of actions.
    pub fn encode_list(actions: &[Action], out: &mut BytesMut) {
        for a in actions {
            a.encode(out);
        }
    }

    /// Total encoded length of a list.
    pub fn list_len(actions: &[Action]) -> usize {
        actions.iter().map(Action::encoded_len).sum()
    }

    /// Decode exactly `len` bytes of actions.
    pub fn decode_list(buf: &mut &[u8], len: usize) -> Result<Vec<Action>> {
        if buf.len() < len {
            return Err(Error::Truncated);
        }
        let mut body = &buf[..len];
        let mut out = Vec::new();
        while !body.is_empty() {
            out.push(Action::decode(&mut body)?);
        }
        buf.advance(len);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::MacAddr;

    fn round_trip(a: &Action) -> Action {
        let mut buf = BytesMut::new();
        a.encode(&mut buf);
        assert_eq!(buf.len(), a.encoded_len());
        assert_eq!(buf.len() % 8, 0, "actions must be 8-byte aligned");
        let mut s = &buf[..];
        let out = Action::decode(&mut s).unwrap();
        assert!(s.is_empty());
        out
    }

    #[test]
    fn all_actions_round_trip() {
        for a in [
            Action::output(7),
            Action::to_controller(),
            Action::Group(42),
            Action::SetQueue(3),
            Action::PushVlan(0x8100),
            Action::PopVlan,
            Action::set_vlan_vid(101),
            Action::SetField(OxmField::EthDst(MacAddr::host(9), None)),
            Action::SetField(OxmField::Ipv4Dst("10.0.0.9".parse().unwrap(), None)),
            Action::DecNwTtl,
            Action::Nat(NatDir::Egress),
            Action::Nat(NatDir::Ingress),
        ] {
            assert_eq!(round_trip(&a), a);
        }
    }

    #[test]
    fn foreign_experimenter_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(0xffff);
        buf.put_u16(16);
        buf.put_u32(0xdead_beef); // not our experimenter id
        buf.put_u16(0);
        buf.put_bytes(0, 6);
        let mut s = &buf[..];
        assert!(Action::decode(&mut s).is_err());
    }

    #[test]
    fn list_round_trip() {
        let list = vec![
            Action::set_vlan_vid(102),
            Action::output(1),
            Action::PopVlan,
        ];
        let mut buf = BytesMut::new();
        Action::encode_list(&list, &mut buf);
        assert_eq!(buf.len(), Action::list_len(&list));
        let mut s = &buf[..];
        let got = Action::decode_list(&mut s, buf.len()).unwrap();
        assert_eq!(got, list);
    }

    #[test]
    fn decode_rejects_bad_lengths() {
        // length not multiple of 8
        let mut s = &[0u8, 0, 0, 12, 0, 0, 0, 1, 0, 0, 0, 0][..];
        assert!(Action::decode(&mut s).is_err());
        // truncated
        let mut s = &[0u8, 0, 0, 16, 0, 0][..];
        assert_eq!(Action::decode(&mut s).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn unknown_action_type_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(0x7777);
        buf.put_u16(8);
        buf.put_u32(0);
        let mut s = &buf[..];
        assert!(Action::decode(&mut s).is_err());
    }
}
