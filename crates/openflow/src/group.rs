//! Group table (OF 1.3 §5.6.1): all / select / indirect groups.
//!
//! `select` buckets are chosen by a deterministic weighted hash of the flow
//! key, matching how hardware and OVS pin a flow to one bucket so a
//! connection never flaps between backends — this is what the HARMLESS
//! load-balancer use case leans on.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use netpkt::FlowKey;

use crate::action::Action;
use crate::{Error, Result};

/// `ofp_group_type` subset (fast-failover is out of scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupType {
    /// Execute every bucket (multicast).
    All,
    /// Execute one bucket chosen by flow hash (load balancing).
    Select,
    /// Single-bucket indirection.
    Indirect,
}

impl GroupType {
    /// Wire value.
    pub fn value(&self) -> u8 {
        match self {
            GroupType::All => 0,
            GroupType::Select => 1,
            GroupType::Indirect => 2,
        }
    }

    /// From wire value.
    pub fn from_value(v: u8) -> Result<GroupType> {
        Ok(match v {
            0 => GroupType::All,
            1 => GroupType::Select,
            2 => GroupType::Indirect,
            _ => return Err(Error::BadGroup("unsupported group type")),
        })
    }
}

/// One action bucket.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bucket {
    /// Relative weight for `select` groups (ignored otherwise).
    pub weight: u16,
    /// Actions executed when the bucket fires.
    pub actions: Vec<Action>,
}

impl Bucket {
    /// A weight-1 bucket.
    pub fn new(actions: Vec<Action>) -> Bucket {
        Bucket { weight: 1, actions }
    }

    /// Builder-style weight.
    pub fn with_weight(mut self, w: u16) -> Bucket {
        self.weight = w;
        self
    }
}

/// An installed group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Group id.
    pub id: u32,
    /// Behaviour.
    pub type_: GroupType,
    /// Buckets (non-empty except for `All`).
    pub buckets: Vec<Bucket>,
    /// Packets processed.
    pub packets: u64,
    /// Bytes processed.
    pub bytes: u64,
}

impl Group {
    /// Pick the buckets to execute for a packet with flow key `key`.
    ///
    /// * `All` — every bucket.
    /// * `Indirect` — the single bucket.
    /// * `Select` — one bucket by deterministic weighted hash.
    pub fn select_buckets<'a>(&'a self, key: &FlowKey) -> Vec<&'a Bucket> {
        match self.type_ {
            GroupType::All => self.buckets.iter().collect(),
            GroupType::Indirect => self.buckets.first().into_iter().collect(),
            GroupType::Select => {
                let total: u32 = self
                    .buckets
                    .iter()
                    .map(|b| u32::from(b.weight.max(1)))
                    .sum();
                if total == 0 {
                    return Vec::new();
                }
                let mut hasher = std::collections::hash_map::DefaultHasher::new();
                // Hash the L3/L4 5-tuple only, so a flow sticks to a bucket
                // regardless of in_port or metadata.
                (
                    key.ipv4_src,
                    key.ipv4_dst,
                    key.ip_proto,
                    key.tcp_src,
                    key.tcp_dst,
                    key.udp_src,
                    key.udp_dst,
                    key.ipv6_src,
                    key.ipv6_dst,
                )
                    .hash(&mut hasher);
                let mut point = (hasher.finish() % u64::from(total)) as u32;
                for b in &self.buckets {
                    let w = u32::from(b.weight.max(1));
                    if point < w {
                        return vec![b];
                    }
                    point -= w;
                }
                self.buckets.last().into_iter().collect()
            }
        }
    }
}

/// `ofp_group_mod_command`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupModCommand {
    /// Create a new group.
    Add,
    /// Replace the buckets of an existing group.
    Modify,
    /// Remove a group (or all with `group_no::ALL`).
    Delete,
}

impl GroupModCommand {
    /// Wire value.
    pub fn value(&self) -> u16 {
        match self {
            GroupModCommand::Add => 0,
            GroupModCommand::Modify => 1,
            GroupModCommand::Delete => 2,
        }
    }

    /// From wire value.
    pub fn from_value(v: u16) -> Result<GroupModCommand> {
        Ok(match v {
            0 => GroupModCommand::Add,
            1 => GroupModCommand::Modify,
            2 => GroupModCommand::Delete,
            _ => return Err(Error::Malformed("bad group-mod command")),
        })
    }
}

/// The group table of one switch.
#[derive(Debug, Default)]
pub struct GroupTable {
    groups: BTreeMap<u32, Group>,
}

impl GroupTable {
    /// Empty table.
    pub fn new() -> GroupTable {
        GroupTable::default()
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if no groups exist.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Look up a group.
    pub fn get(&self, id: u32) -> Option<&Group> {
        self.groups.get(&id)
    }

    /// Record traffic against a group.
    pub fn account(&mut self, id: u32, bytes: u64) {
        if let Some(g) = self.groups.get_mut(&id) {
            g.packets += 1;
            g.bytes += bytes;
        }
    }

    /// Add a group; fails if the id exists, the type needs buckets and has
    /// none, or a bucket chains to an unknown group (forward references and
    /// loops are rejected as in the spec).
    pub fn add(&mut self, id: u32, type_: GroupType, buckets: Vec<Bucket>) -> Result<()> {
        if self.groups.contains_key(&id) {
            return Err(Error::BadGroup("group exists"));
        }
        if matches!(type_, GroupType::Indirect) && buckets.len() != 1 {
            return Err(Error::BadGroup("indirect group needs exactly one bucket"));
        }
        if matches!(type_, GroupType::Select) && buckets.is_empty() {
            return Err(Error::BadGroup("select group needs buckets"));
        }
        self.check_chains(id, &buckets)?;
        self.groups.insert(
            id,
            Group {
                id,
                type_,
                buckets,
                packets: 0,
                bytes: 0,
            },
        );
        Ok(())
    }

    /// Replace buckets/type of an existing group.
    pub fn modify(&mut self, id: u32, type_: GroupType, buckets: Vec<Bucket>) -> Result<()> {
        if !self.groups.contains_key(&id) {
            return Err(Error::BadGroup("no such group"));
        }
        self.check_chains(id, &buckets)?;
        let g = self.groups.get_mut(&id).unwrap();
        g.type_ = type_;
        g.buckets = buckets;
        Ok(())
    }

    /// Delete a group (`group_no::ALL` deletes everything). Returns the
    /// deleted ids.
    pub fn delete(&mut self, id: u32) -> Vec<u32> {
        if id == crate::group_no::ALL {
            let ids: Vec<u32> = self.groups.keys().copied().collect();
            self.groups.clear();
            return ids;
        }
        if self.groups.remove(&id).is_some() {
            vec![id]
        } else {
            Vec::new()
        }
    }

    /// Reject buckets that reference `self_id` or an unknown group —
    /// this forbids both loops and forward references.
    fn check_chains(&self, self_id: u32, buckets: &[Bucket]) -> Result<()> {
        for b in buckets {
            for a in &b.actions {
                if let Action::Group(g) = a {
                    if *g == self_id {
                        return Err(Error::BadGroup("group chains to itself"));
                    }
                    if !self.groups.contains_key(g) {
                        return Err(Error::BadGroup("chained group does not exist"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::{builder, MacAddr};
    use std::net::Ipv4Addr;

    fn key_for_src(src: u32) -> FlowKey {
        let f = builder::udp_packet(
            MacAddr::host(1),
            MacAddr::host(2),
            Ipv4Addr::from(src),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            80,
            b"x",
        );
        FlowKey::extract(1, &f).unwrap()
    }

    #[test]
    fn all_group_fires_every_bucket() {
        let mut gt = GroupTable::new();
        gt.add(
            1,
            GroupType::All,
            vec![
                Bucket::new(vec![Action::output(1)]),
                Bucket::new(vec![Action::output(2)]),
            ],
        )
        .unwrap();
        let g = gt.get(1).unwrap();
        assert_eq!(g.select_buckets(&key_for_src(1)).len(), 2);
    }

    #[test]
    fn select_group_is_deterministic_and_covers_buckets() {
        let mut gt = GroupTable::new();
        gt.add(
            1,
            GroupType::Select,
            (0..4)
                .map(|i| Bucket::new(vec![Action::output(i + 1)]))
                .collect(),
        )
        .unwrap();
        let g = gt.get(1).unwrap();
        let mut seen = std::collections::HashSet::new();
        for src in 0..1000u32 {
            let k = key_for_src(0x0a00_0000 + src);
            let b1 = g.select_buckets(&k);
            let b2 = g.select_buckets(&k);
            assert_eq!(b1, b2, "same flow must pick the same bucket");
            assert_eq!(b1.len(), 1);
            seen.insert(b1[0].actions.clone());
        }
        assert_eq!(seen.len(), 4, "1000 flows must cover all 4 buckets");
    }

    #[test]
    fn select_group_respects_weights_roughly() {
        let mut gt = GroupTable::new();
        gt.add(
            1,
            GroupType::Select,
            vec![
                Bucket::new(vec![Action::output(1)]).with_weight(3),
                Bucket::new(vec![Action::output(2)]).with_weight(1),
            ],
        )
        .unwrap();
        let g = gt.get(1).unwrap();
        let mut heavy = 0;
        let n = 4000;
        for src in 0..n {
            let k = key_for_src(0x0a00_0000 + src);
            if g.select_buckets(&k)[0].actions == vec![Action::output(1)] {
                heavy += 1;
            }
        }
        let share = heavy as f64 / n as f64;
        assert!(
            (share - 0.75).abs() < 0.05,
            "weight-3 bucket share = {share}"
        );
    }

    #[test]
    fn indirect_group_needs_one_bucket() {
        let mut gt = GroupTable::new();
        assert!(gt.add(1, GroupType::Indirect, vec![]).is_err());
        assert!(gt
            .add(
                1,
                GroupType::Indirect,
                vec![Bucket::new(vec![]), Bucket::new(vec![])]
            )
            .is_err());
        gt.add(
            1,
            GroupType::Indirect,
            vec![Bucket::new(vec![Action::output(5)])],
        )
        .unwrap();
    }

    #[test]
    fn chain_validation() {
        let mut gt = GroupTable::new();
        gt.add(
            1,
            GroupType::All,
            vec![Bucket::new(vec![Action::output(1)])],
        )
        .unwrap();
        // Chaining to an existing group is fine.
        gt.add(2, GroupType::All, vec![Bucket::new(vec![Action::Group(1)])])
            .unwrap();
        // Forward reference rejected.
        assert!(gt
            .add(3, GroupType::All, vec![Bucket::new(vec![Action::Group(9)])])
            .is_err());
        // Self reference rejected.
        assert!(gt
            .add(4, GroupType::All, vec![Bucket::new(vec![Action::Group(4)])])
            .is_err());
        // Duplicate id rejected.
        assert!(gt.add(1, GroupType::All, vec![]).is_err());
    }

    #[test]
    fn delete_all_clears() {
        let mut gt = GroupTable::new();
        gt.add(1, GroupType::All, vec![]).unwrap();
        gt.add(2, GroupType::All, vec![]).unwrap();
        let ids = gt.delete(crate::group_no::ALL);
        assert_eq!(ids, vec![1, 2]);
        assert!(gt.is_empty());
    }

    #[test]
    fn accounting() {
        let mut gt = GroupTable::new();
        gt.add(1, GroupType::All, vec![]).unwrap();
        gt.account(1, 100);
        gt.account(1, 50);
        let g = gt.get(1).unwrap();
        assert_eq!(g.packets, 2);
        assert_eq!(g.bytes, 150);
    }
}
