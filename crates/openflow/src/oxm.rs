//! OXM (OpenFlow Extensible Match) TLVs and the [`Match`] structure.
//!
//! Only the `OFPXMC_OPENFLOW_BASIC` class is implemented, with the fields a
//! production L2-L4 deployment uses. Each field optionally carries a mask
//! (the `HM` bit), and [`Match`] converts losslessly to the
//! `(FlowKey, FieldMask)` pair used by every dataplane in the workspace.

use bytes::{Buf, BufMut, BytesMut};
use std::net::Ipv4Addr;

use netpkt::flowkey::{FieldMask, OFPVID_PRESENT};
use netpkt::{FlowKey, MacAddr};

use crate::{Error, Result};

/// `OFPXMC_OPENFLOW_BASIC`.
pub const OXM_CLASS_BASIC: u16 = 0x8000;

/// OXM basic-class field numbers (OF 1.3 §7.2.3.7).
#[allow(missing_docs)]
pub mod field_num {
    pub const IN_PORT: u8 = 0;
    pub const METADATA: u8 = 2;
    pub const ETH_DST: u8 = 3;
    pub const ETH_SRC: u8 = 4;
    pub const ETH_TYPE: u8 = 5;
    pub const VLAN_VID: u8 = 6;
    pub const VLAN_PCP: u8 = 7;
    pub const IP_DSCP: u8 = 8;
    pub const IP_PROTO: u8 = 10;
    pub const IPV4_SRC: u8 = 11;
    pub const IPV4_DST: u8 = 12;
    pub const TCP_SRC: u8 = 13;
    pub const TCP_DST: u8 = 14;
    pub const UDP_SRC: u8 = 15;
    pub const UDP_DST: u8 = 16;
    pub const ICMPV4_TYPE: u8 = 19;
    pub const ICMPV4_CODE: u8 = 20;
    pub const ARP_OP: u8 = 21;
    pub const ARP_SPA: u8 = 22;
    pub const ARP_TPA: u8 = 23;
    pub const IPV6_SRC: u8 = 26;
    pub const IPV6_DST: u8 = 27;
}

/// One OXM match field. Fields with an `Option` second element support
/// masks (`None` = exact match).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OxmField {
    /// Ingress port.
    InPort(u32),
    /// Pipeline metadata with optional mask.
    Metadata(u64, Option<u64>),
    /// Destination MAC with optional mask.
    EthDst(MacAddr, Option<MacAddr>),
    /// Source MAC with optional mask.
    EthSrc(MacAddr, Option<MacAddr>),
    /// EtherType (after VLAN tags).
    EthType(u16),
    /// VLAN id in OF encoding (`OFPVID_PRESENT | vid`) with optional mask.
    VlanVid(u16, Option<u16>),
    /// VLAN priority (requires a tagged match).
    VlanPcp(u8),
    /// IP DSCP.
    IpDscp(u8),
    /// IP protocol.
    IpProto(u8),
    /// IPv4 source with optional mask.
    Ipv4Src(Ipv4Addr, Option<Ipv4Addr>),
    /// IPv4 destination with optional mask.
    Ipv4Dst(Ipv4Addr, Option<Ipv4Addr>),
    /// TCP source port.
    TcpSrc(u16),
    /// TCP destination port.
    TcpDst(u16),
    /// UDP source port.
    UdpSrc(u16),
    /// UDP destination port.
    UdpDst(u16),
    /// ICMPv4 type.
    Icmpv4Type(u8),
    /// ICMPv4 code.
    Icmpv4Code(u8),
    /// ARP opcode.
    ArpOp(u16),
    /// ARP sender protocol address with optional mask.
    ArpSpa(Ipv4Addr, Option<Ipv4Addr>),
    /// ARP target protocol address with optional mask.
    ArpTpa(Ipv4Addr, Option<Ipv4Addr>),
    /// IPv6 source with optional mask.
    Ipv6Src(u128, Option<u128>),
    /// IPv6 destination with optional mask.
    Ipv6Dst(u128, Option<u128>),
}

impl OxmField {
    /// The OXM field number.
    pub fn number(&self) -> u8 {
        use field_num::*;
        match self {
            OxmField::InPort(_) => IN_PORT,
            OxmField::Metadata(..) => METADATA,
            OxmField::EthDst(..) => ETH_DST,
            OxmField::EthSrc(..) => ETH_SRC,
            OxmField::EthType(_) => ETH_TYPE,
            OxmField::VlanVid(..) => VLAN_VID,
            OxmField::VlanPcp(_) => VLAN_PCP,
            OxmField::IpDscp(_) => IP_DSCP,
            OxmField::IpProto(_) => IP_PROTO,
            OxmField::Ipv4Src(..) => IPV4_SRC,
            OxmField::Ipv4Dst(..) => IPV4_DST,
            OxmField::TcpSrc(_) => TCP_SRC,
            OxmField::TcpDst(_) => TCP_DST,
            OxmField::UdpSrc(_) => UDP_SRC,
            OxmField::UdpDst(_) => UDP_DST,
            OxmField::Icmpv4Type(_) => ICMPV4_TYPE,
            OxmField::Icmpv4Code(_) => ICMPV4_CODE,
            OxmField::ArpOp(_) => ARP_OP,
            OxmField::ArpSpa(..) => ARP_SPA,
            OxmField::ArpTpa(..) => ARP_TPA,
            OxmField::Ipv6Src(..) => IPV6_SRC,
            OxmField::Ipv6Dst(..) => IPV6_DST,
        }
    }

    fn has_mask(&self) -> bool {
        match self {
            OxmField::Metadata(_, m) => m.is_some(),
            OxmField::EthDst(_, m) | OxmField::EthSrc(_, m) => m.is_some(),
            OxmField::VlanVid(_, m) => m.is_some(),
            OxmField::Ipv4Src(_, m)
            | OxmField::Ipv4Dst(_, m)
            | OxmField::ArpSpa(_, m)
            | OxmField::ArpTpa(_, m) => m.is_some(),
            OxmField::Ipv6Src(_, m) | OxmField::Ipv6Dst(_, m) => m.is_some(),
            _ => false,
        }
    }

    fn value_len(&self) -> usize {
        match self {
            OxmField::InPort(_) => 4,
            OxmField::Metadata(..) => 8,
            OxmField::EthDst(..) | OxmField::EthSrc(..) => 6,
            OxmField::EthType(_) | OxmField::VlanVid(..) => 2,
            OxmField::VlanPcp(_) | OxmField::IpDscp(_) | OxmField::IpProto(_) => 1,
            OxmField::Ipv4Src(..) | OxmField::Ipv4Dst(..) => 4,
            OxmField::TcpSrc(_) | OxmField::TcpDst(_) => 2,
            OxmField::UdpSrc(_) | OxmField::UdpDst(_) => 2,
            OxmField::Icmpv4Type(_) | OxmField::Icmpv4Code(_) => 1,
            OxmField::ArpOp(_) => 2,
            OxmField::ArpSpa(..) | OxmField::ArpTpa(..) => 4,
            OxmField::Ipv6Src(..) | OxmField::Ipv6Dst(..) => 16,
        }
    }

    /// Encoded length including the 4-byte TLV header.
    pub fn encoded_len(&self) -> usize {
        4 + self.value_len() * if self.has_mask() { 2 } else { 1 }
    }

    /// Append the TLV to `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        out.put_u16(OXM_CLASS_BASIC);
        out.put_u8((self.number() << 1) | u8::from(self.has_mask()));
        out.put_u8((self.value_len() * if self.has_mask() { 2 } else { 1 }) as u8);
        match *self {
            OxmField::InPort(v) => out.put_u32(v),
            OxmField::Metadata(v, m) => {
                out.put_u64(v);
                if let Some(m) = m {
                    out.put_u64(m);
                }
            }
            OxmField::EthDst(v, m) | OxmField::EthSrc(v, m) => {
                out.put_slice(&v.octets());
                if let Some(m) = m {
                    out.put_slice(&m.octets());
                }
            }
            OxmField::EthType(v) => out.put_u16(v),
            OxmField::VlanVid(v, m) => {
                out.put_u16(v);
                if let Some(m) = m {
                    out.put_u16(m);
                }
            }
            OxmField::VlanPcp(v) | OxmField::IpDscp(v) | OxmField::IpProto(v) => out.put_u8(v),
            OxmField::Ipv4Src(v, m) | OxmField::Ipv4Dst(v, m) => {
                out.put_slice(&v.octets());
                if let Some(m) = m {
                    out.put_slice(&m.octets());
                }
            }
            OxmField::TcpSrc(v)
            | OxmField::TcpDst(v)
            | OxmField::UdpSrc(v)
            | OxmField::UdpDst(v)
            | OxmField::ArpOp(v) => out.put_u16(v),
            OxmField::Icmpv4Type(v) | OxmField::Icmpv4Code(v) => out.put_u8(v),
            OxmField::ArpSpa(v, m) | OxmField::ArpTpa(v, m) => {
                out.put_slice(&v.octets());
                if let Some(m) = m {
                    out.put_slice(&m.octets());
                }
            }
            OxmField::Ipv6Src(v, m) | OxmField::Ipv6Dst(v, m) => {
                out.put_u128(v);
                if let Some(m) = m {
                    out.put_u128(m);
                }
            }
        }
    }

    /// Decode one TLV from the front of `buf`.
    pub fn decode(buf: &mut &[u8]) -> Result<OxmField> {
        if buf.len() < 4 {
            return Err(Error::Truncated);
        }
        let class = buf.get_u16();
        let fh = buf.get_u8();
        let len = usize::from(buf.get_u8());
        if class != OXM_CLASS_BASIC {
            return Err(Error::Malformed("unsupported OXM class"));
        }
        if buf.len() < len {
            return Err(Error::Truncated);
        }
        let field = fh >> 1;
        let hm = fh & 1 == 1;
        let check = |want: usize| -> Result<()> {
            let expect = want * if hm { 2 } else { 1 };
            if len == expect {
                Ok(())
            } else {
                Err(Error::Malformed("bad OXM length"))
            }
        };
        use field_num::*;
        let out = match field {
            IN_PORT => {
                check(4)?;
                if hm {
                    return Err(Error::Malformed("IN_PORT cannot be masked"));
                }
                OxmField::InPort(buf.get_u32())
            }
            METADATA => {
                check(8)?;
                let v = buf.get_u64();
                let m = if hm { Some(buf.get_u64()) } else { None };
                OxmField::Metadata(v, m)
            }
            ETH_DST | ETH_SRC => {
                check(6)?;
                let mut v = [0u8; 6];
                buf.copy_to_slice(&mut v);
                let m = if hm {
                    let mut m = [0u8; 6];
                    buf.copy_to_slice(&mut m);
                    Some(MacAddr(m))
                } else {
                    None
                };
                if field == ETH_DST {
                    OxmField::EthDst(MacAddr(v), m)
                } else {
                    OxmField::EthSrc(MacAddr(v), m)
                }
            }
            ETH_TYPE => {
                check(2)?;
                OxmField::EthType(buf.get_u16())
            }
            VLAN_VID => {
                check(2)?;
                let v = buf.get_u16();
                let m = if hm { Some(buf.get_u16()) } else { None };
                OxmField::VlanVid(v, m)
            }
            VLAN_PCP => {
                check(1)?;
                OxmField::VlanPcp(buf.get_u8())
            }
            IP_DSCP => {
                check(1)?;
                OxmField::IpDscp(buf.get_u8())
            }
            IP_PROTO => {
                check(1)?;
                OxmField::IpProto(buf.get_u8())
            }
            IPV4_SRC | IPV4_DST | ARP_SPA | ARP_TPA => {
                check(4)?;
                let v = Ipv4Addr::from(buf.get_u32());
                let m = if hm {
                    Some(Ipv4Addr::from(buf.get_u32()))
                } else {
                    None
                };
                match field {
                    IPV4_SRC => OxmField::Ipv4Src(v, m),
                    IPV4_DST => OxmField::Ipv4Dst(v, m),
                    ARP_SPA => OxmField::ArpSpa(v, m),
                    _ => OxmField::ArpTpa(v, m),
                }
            }
            TCP_SRC => {
                check(2)?;
                OxmField::TcpSrc(buf.get_u16())
            }
            TCP_DST => {
                check(2)?;
                OxmField::TcpDst(buf.get_u16())
            }
            UDP_SRC => {
                check(2)?;
                OxmField::UdpSrc(buf.get_u16())
            }
            UDP_DST => {
                check(2)?;
                OxmField::UdpDst(buf.get_u16())
            }
            ICMPV4_TYPE => {
                check(1)?;
                OxmField::Icmpv4Type(buf.get_u8())
            }
            ICMPV4_CODE => {
                check(1)?;
                OxmField::Icmpv4Code(buf.get_u8())
            }
            ARP_OP => {
                check(2)?;
                OxmField::ArpOp(buf.get_u16())
            }
            IPV6_SRC | IPV6_DST => {
                check(16)?;
                let v = buf.get_u128();
                let m = if hm { Some(buf.get_u128()) } else { None };
                if field == IPV6_SRC {
                    OxmField::Ipv6Src(v, m)
                } else {
                    OxmField::Ipv6Dst(v, m)
                }
            }
            _ => return Err(Error::Malformed("unknown OXM field")),
        };
        Ok(out)
    }
}

/// An ordered set of OXM fields: the `ofp_match` of flow mods, packet-ins
/// and flow stats.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Match {
    fields: Vec<OxmField>,
}

impl Match {
    /// The empty (match-everything) match.
    pub fn any() -> Match {
        Match::default()
    }

    /// Start an empty match for builder-style construction.
    pub fn new() -> Match {
        Match::default()
    }

    /// The fields in author order.
    pub fn fields(&self) -> &[OxmField] {
        &self.fields
    }

    /// Append a field (builder style).
    pub fn with(mut self, f: OxmField) -> Match {
        self.fields.push(f);
        self
    }

    /// Match on ingress port.
    pub fn in_port(self, p: u32) -> Match {
        self.with(OxmField::InPort(p))
    }

    /// Match on EtherType.
    pub fn eth_type(self, t: u16) -> Match {
        self.with(OxmField::EthType(t))
    }

    /// Match on destination MAC.
    pub fn eth_dst(self, m: MacAddr) -> Match {
        self.with(OxmField::EthDst(m, None))
    }

    /// Match on source MAC.
    pub fn eth_src(self, m: MacAddr) -> Match {
        self.with(OxmField::EthSrc(m, None))
    }

    /// Match frames tagged with a specific VLAN id.
    pub fn vlan(self, vid: u16) -> Match {
        self.with(OxmField::VlanVid(OFPVID_PRESENT | vid, None))
    }

    /// Match untagged frames.
    pub fn untagged(self) -> Match {
        self.with(OxmField::VlanVid(0, None))
    }

    /// Match any tagged frame regardless of VID.
    pub fn any_vlan(self) -> Match {
        self.with(OxmField::VlanVid(OFPVID_PRESENT, Some(OFPVID_PRESENT)))
    }

    /// Match on IP protocol (requires [`Match::eth_type`] 0x0800/0x86dd).
    pub fn ip_proto(self, p: u8) -> Match {
        self.with(OxmField::IpProto(p))
    }

    /// Match an exact IPv4 source.
    pub fn ipv4_src(self, a: Ipv4Addr) -> Match {
        self.with(OxmField::Ipv4Src(a, None))
    }

    /// Match an IPv4 source prefix.
    pub fn ipv4_src_masked(self, a: Ipv4Addr, m: Ipv4Addr) -> Match {
        self.with(OxmField::Ipv4Src(a, Some(m)))
    }

    /// Match an exact IPv4 destination.
    pub fn ipv4_dst(self, a: Ipv4Addr) -> Match {
        self.with(OxmField::Ipv4Dst(a, None))
    }

    /// Match an IPv4 destination prefix.
    pub fn ipv4_dst_masked(self, a: Ipv4Addr, m: Ipv4Addr) -> Match {
        self.with(OxmField::Ipv4Dst(a, Some(m)))
    }

    /// Match a TCP destination port.
    pub fn tcp_dst(self, p: u16) -> Match {
        self.with(OxmField::TcpDst(p))
    }

    /// Match a UDP destination port.
    pub fn udp_dst(self, p: u16) -> Match {
        self.with(OxmField::UdpDst(p))
    }

    /// Validate OF 1.3 prerequisites (§7.2.3.8) and duplicate fields.
    pub fn validate(&self) -> Result<()> {
        let mut seen = [false; 40];
        let has = |fields: &[OxmField], pred: &dyn Fn(&OxmField) -> bool| fields.iter().any(pred);
        for f in &self.fields {
            let n = usize::from(f.number());
            if seen[n] {
                return Err(Error::BadMatch("duplicate field"));
            }
            seen[n] = true;
            match f {
                OxmField::VlanPcp(_) => {
                    let tagged = has(
                        &self.fields,
                        &|g| matches!(g, OxmField::VlanVid(v, _) if v & OFPVID_PRESENT != 0),
                    );
                    if !tagged {
                        return Err(Error::BadMatch("VLAN_PCP requires tagged VLAN_VID"));
                    }
                }
                OxmField::IpProto(_) | OxmField::IpDscp(_) => {
                    let ip = has(&self.fields, &|g| {
                        matches!(g, OxmField::EthType(0x0800) | OxmField::EthType(0x86dd))
                    });
                    if !ip {
                        return Err(Error::BadMatch("IP field requires ETH_TYPE ip"));
                    }
                }
                OxmField::Ipv4Src(..) | OxmField::Ipv4Dst(..)
                    if !has(&self.fields, &|g| matches!(g, OxmField::EthType(0x0800))) =>
                {
                    return Err(Error::BadMatch("IPv4 field requires ETH_TYPE 0x0800"));
                }
                OxmField::Ipv6Src(..) | OxmField::Ipv6Dst(..)
                    if !has(&self.fields, &|g| matches!(g, OxmField::EthType(0x86dd))) =>
                {
                    return Err(Error::BadMatch("IPv6 field requires ETH_TYPE 0x86dd"));
                }
                OxmField::TcpSrc(_) | OxmField::TcpDst(_)
                    if !has(&self.fields, &|g| matches!(g, OxmField::IpProto(6))) =>
                {
                    return Err(Error::BadMatch("TCP field requires IP_PROTO 6"));
                }
                OxmField::UdpSrc(_) | OxmField::UdpDst(_)
                    if !has(&self.fields, &|g| matches!(g, OxmField::IpProto(17))) =>
                {
                    return Err(Error::BadMatch("UDP field requires IP_PROTO 17"));
                }
                OxmField::Icmpv4Type(_) | OxmField::Icmpv4Code(_)
                    if !has(&self.fields, &|g| matches!(g, OxmField::IpProto(1))) =>
                {
                    return Err(Error::BadMatch("ICMP field requires IP_PROTO 1"));
                }
                OxmField::ArpOp(_) | OxmField::ArpSpa(..) | OxmField::ArpTpa(..)
                    if !has(&self.fields, &|g| matches!(g, OxmField::EthType(0x0806))) =>
                {
                    return Err(Error::BadMatch("ARP field requires ETH_TYPE 0x0806"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Convert to the `(value, mask)` pair used for dataplane lookup.
    pub fn to_key_mask(&self) -> (FlowKey, FieldMask) {
        let mut key = FlowKey::default();
        let mut mask = FieldMask::default();
        let full_mac = MacAddr([0xff; 6]);
        for f in &self.fields {
            match *f {
                OxmField::InPort(v) => {
                    key.in_port = v;
                    mask.in_port = u32::MAX;
                }
                OxmField::Metadata(v, m) => {
                    let m = m.unwrap_or(u64::MAX);
                    key.metadata = v & m;
                    mask.metadata = m;
                }
                OxmField::EthDst(v, m) => {
                    let m = m.unwrap_or(full_mac);
                    key.eth_dst = v.masked_with(&m);
                    mask.eth_dst = m;
                }
                OxmField::EthSrc(v, m) => {
                    let m = m.unwrap_or(full_mac);
                    key.eth_src = v.masked_with(&m);
                    mask.eth_src = m;
                }
                OxmField::EthType(v) => {
                    key.eth_type = v;
                    mask.eth_type = u16::MAX;
                }
                OxmField::VlanVid(v, m) => {
                    let m = m.unwrap_or(OFPVID_PRESENT | netpkt::VID_MASK);
                    key.vlan_vid = v & m;
                    mask.vlan_vid = m;
                }
                OxmField::VlanPcp(v) => {
                    key.vlan_pcp = v;
                    mask.vlan_pcp = u8::MAX;
                }
                OxmField::IpDscp(v) => {
                    key.ip_dscp = v;
                    mask.ip_dscp = u8::MAX;
                }
                OxmField::IpProto(v) => {
                    key.ip_proto = v;
                    mask.ip_proto = u8::MAX;
                }
                OxmField::Ipv4Src(v, m) => {
                    let m = m.map(u32::from).unwrap_or(u32::MAX);
                    key.ipv4_src = u32::from(v) & m;
                    mask.ipv4_src = m;
                }
                OxmField::Ipv4Dst(v, m) => {
                    let m = m.map(u32::from).unwrap_or(u32::MAX);
                    key.ipv4_dst = u32::from(v) & m;
                    mask.ipv4_dst = m;
                }
                OxmField::TcpSrc(v) => {
                    key.tcp_src = v;
                    mask.tcp_src = u16::MAX;
                }
                OxmField::TcpDst(v) => {
                    key.tcp_dst = v;
                    mask.tcp_dst = u16::MAX;
                }
                OxmField::UdpSrc(v) => {
                    key.udp_src = v;
                    mask.udp_src = u16::MAX;
                }
                OxmField::UdpDst(v) => {
                    key.udp_dst = v;
                    mask.udp_dst = u16::MAX;
                }
                OxmField::Icmpv4Type(v) => {
                    key.icmp_type = v;
                    mask.icmp_type = u8::MAX;
                }
                OxmField::Icmpv4Code(v) => {
                    key.icmp_code = v;
                    mask.icmp_code = u8::MAX;
                }
                OxmField::ArpOp(v) => {
                    key.arp_op = v;
                    mask.arp_op = u16::MAX;
                }
                OxmField::ArpSpa(v, m) => {
                    let m = m.map(u32::from).unwrap_or(u32::MAX);
                    key.arp_spa = u32::from(v) & m;
                    mask.arp_spa = m;
                }
                OxmField::ArpTpa(v, m) => {
                    let m = m.map(u32::from).unwrap_or(u32::MAX);
                    key.arp_tpa = u32::from(v) & m;
                    mask.arp_tpa = m;
                }
                OxmField::Ipv6Src(v, m) => {
                    let m = m.unwrap_or(u128::MAX);
                    key.ipv6_src = v & m;
                    mask.ipv6_src = m;
                }
                OxmField::Ipv6Dst(v, m) => {
                    let m = m.unwrap_or(u128::MAX);
                    key.ipv6_dst = v & m;
                    mask.ipv6_dst = m;
                }
            }
        }
        (key, mask)
    }

    /// True if `pkt` (an extracted flow key) satisfies this match.
    pub fn matches(&self, pkt: &FlowKey) -> bool {
        let (key, mask) = self.to_key_mask();
        pkt.masked(&mask) == key
    }

    /// Encoded length of the `ofp_match` including padding to 8 bytes.
    pub fn encoded_len(&self) -> usize {
        let body: usize = 4 + self.fields.iter().map(OxmField::encoded_len).sum::<usize>();
        body.div_ceil(8) * 8
    }

    /// Encode as `ofp_match` (type=1/OXM, padded to 8 bytes).
    pub fn encode(&self, out: &mut BytesMut) {
        let body: usize = 4 + self.fields.iter().map(OxmField::encoded_len).sum::<usize>();
        out.put_u16(1); // OFPMT_OXM
        out.put_u16(body as u16);
        for f in &self.fields {
            f.encode(out);
        }
        let pad = (8 - body % 8) % 8;
        out.put_bytes(0, pad);
    }

    /// Decode an `ofp_match` from the front of `buf`, consuming padding.
    pub fn decode(buf: &mut &[u8]) -> Result<Match> {
        if buf.len() < 4 {
            return Err(Error::Truncated);
        }
        let ty = buf.get_u16();
        let len = usize::from(buf.get_u16());
        if ty != 1 {
            return Err(Error::Malformed("only OXM matches supported"));
        }
        if len < 4 {
            return Err(Error::Malformed("match length below header"));
        }
        let body_len = len - 4;
        if buf.len() < body_len {
            return Err(Error::Truncated);
        }
        let mut body = &buf[..body_len];
        let mut fields = Vec::new();
        while !body.is_empty() {
            fields.push(OxmField::decode(&mut body)?);
        }
        buf.advance(body_len);
        let pad = (8 - len % 8) % 8;
        if buf.len() < pad {
            return Err(Error::Truncated);
        }
        buf.advance(pad);
        Ok(Match { fields })
    }
}

/// Mask helper for [`MacAddr`] used by `to_key_mask`.
trait MaskedMac {
    fn masked_with(&self, m: &MacAddr) -> MacAddr;
}

impl MaskedMac for MacAddr {
    fn masked_with(&self, m: &MacAddr) -> MacAddr {
        MacAddr(std::array::from_fn(|i| self.0[i] & m.0[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::builder;

    fn round_trip(m: &Match) -> Match {
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        assert_eq!(buf.len(), m.encoded_len(), "encoded_len must match reality");
        assert_eq!(buf.len() % 8, 0, "ofp_match must be 8-byte aligned");
        let mut slice = &buf[..];
        let out = Match::decode(&mut slice).unwrap();
        assert!(slice.is_empty(), "decode must consume everything");
        out
    }

    #[test]
    fn empty_match_round_trip() {
        let m = Match::any();
        assert_eq!(round_trip(&m), m);
        assert_eq!(m.encoded_len(), 8); // 4-byte header padded to 8
    }

    #[test]
    fn typical_acl_match_round_trip() {
        let m = Match::new()
            .in_port(3)
            .eth_type(0x0800)
            .ipv4_src_masked(Ipv4Addr::new(10, 1, 0, 0), Ipv4Addr::new(255, 255, 0, 0))
            .ip_proto(6)
            .tcp_dst(80);
        assert_eq!(round_trip(&m), m);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn vlan_translator_match_round_trip() {
        let m = Match::new().in_port(1).vlan(101);
        assert_eq!(round_trip(&m), m);
        let any = Match::new().any_vlan();
        assert_eq!(round_trip(&any), any);
    }

    #[test]
    fn validate_rejects_missing_prereqs() {
        assert!(Match::new().tcp_dst(80).validate().is_err());
        assert!(Match::new()
            .eth_type(0x0800)
            .tcp_dst(80)
            .validate()
            .is_err());
        assert!(Match::new()
            .eth_type(0x0800)
            .ip_proto(6)
            .tcp_dst(80)
            .validate()
            .is_ok());
        assert!(Match::new()
            .ipv4_src(Ipv4Addr::new(1, 2, 3, 4))
            .validate()
            .is_err());
        assert!(Match::new().with(OxmField::VlanPcp(3)).validate().is_err());
        assert!(Match::new()
            .vlan(5)
            .with(OxmField::VlanPcp(3))
            .validate()
            .is_ok());
        // Untagged + PCP is contradictory.
        assert!(Match::new()
            .untagged()
            .with(OxmField::VlanPcp(3))
            .validate()
            .is_err());
    }

    #[test]
    fn validate_rejects_duplicates() {
        assert!(Match::new().in_port(1).in_port(2).validate().is_err());
    }

    #[test]
    fn matches_against_extracted_key() {
        let frame = builder::udp_packet(
            MacAddr::host(1),
            MacAddr::host(2),
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(10, 9, 9, 9),
            5555,
            53,
            b"x",
        );
        let key = FlowKey::extract(7, &frame).unwrap();
        assert!(Match::new().in_port(7).matches(&key));
        assert!(Match::new().eth_type(0x0800).udp_dst(53).matches(&key));
        assert!(!Match::new().eth_type(0x0800).udp_dst(54).matches(&key));
        assert!(Match::new()
            .ipv4_src_masked(Ipv4Addr::new(10, 1, 0, 0), Ipv4Addr::new(255, 255, 0, 0))
            .matches(&key));
        assert!(!Match::new()
            .ipv4_src_masked(Ipv4Addr::new(10, 2, 0, 0), Ipv4Addr::new(255, 255, 0, 0))
            .matches(&key));
        assert!(Match::new().untagged().matches(&key));
        assert!(!Match::new().vlan(101).matches(&key));
    }

    #[test]
    fn masked_fields_round_trip() {
        let m = Match::new()
            .with(OxmField::EthDst(
                MacAddr::host(5),
                Some(MacAddr([0xff, 0xff, 0, 0, 0, 0])),
            ))
            .with(OxmField::Metadata(0xdead_beef, Some(0xffff_ffff)))
            .with(OxmField::Ipv6Dst(0x1234, Some(u128::MAX)));
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut buf = &[0u8, 2, 0, 4][..]; // type 2 is not OXM
        assert!(Match::decode(&mut buf).is_err());
        let mut buf = &[0u8, 1][..];
        assert_eq!(Match::decode(&mut buf).unwrap_err(), Error::Truncated);
        // Claimed length beyond the buffer.
        let mut buf = &[0u8, 1, 0, 20, 0, 0][..];
        assert_eq!(Match::decode(&mut buf).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn oxm_field_decode_rejects_masked_in_port() {
        let mut buf = BytesMut::new();
        buf.put_u16(OXM_CLASS_BASIC);
        buf.put_u8(1); // IN_PORT with HM bit
        buf.put_u8(8);
        buf.put_u32(1);
        buf.put_u32(0xffff_ffff);
        let mut s = &buf[..];
        assert!(OxmField::decode(&mut s).is_err());
    }

    #[test]
    fn to_key_mask_normalizes_value_under_mask() {
        // Value bits outside the mask must be cleared so lookup works.
        let m = Match::new().with(OxmField::Ipv4Src(
            Ipv4Addr::new(10, 1, 2, 3),
            Some(Ipv4Addr::new(255, 255, 0, 0)),
        ));
        let (key, mask) = m.to_key_mask();
        assert_eq!(key.ipv4_src, u32::from(Ipv4Addr::new(10, 1, 0, 0)));
        assert_eq!(mask.ipv4_src, 0xffff_0000);
    }
}
