//! # openflow — an OpenFlow 1.3 subset
//!
//! The protocol layer between the HARMLESS software switches and the SDN
//! controller. Three concerns live here:
//!
//! 1. **Wire codec** ([`message`], [`oxm`], [`action`], [`instruction`]):
//!    OpenFlow 1.3 messages encoded/decoded byte-exactly, covering the
//!    subset a production L2/L3 deployment needs — handshake, echo,
//!    `FLOW_MOD`/`GROUP_MOD`/`METER_MOD`, `PACKET_IN`/`PACKET_OUT`,
//!    `FLOW_REMOVED`, `PORT_STATUS`, barriers, errors and the common
//!    multipart statistics.
//! 2. **Match model** ([`Match`], [`OxmField`]): OXM TLVs with masks,
//!    prerequisite validation, and lossless conversion to the
//!    [`netpkt::FlowKey`]/[`netpkt::flowkey::FieldMask`] pair the
//!    dataplanes match on.
//! 3. **Table semantics** ([`table`], [`group`], [`meter`]): flow-table
//!    priority/overlap/timeout behaviour per §5 and §6.4 of the 1.3 spec,
//!    group buckets (all/select/indirect) and token-bucket meters.
//!
//! The split mirrors real switch implementations: the codec is shared by
//! controller and switch; the table semantics are the switch-side model
//! that both the software datapath (`softswitch`) and the TCAM-limited
//! COTS model (`legacy-switch`) build on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod group;
pub mod instruction;
pub mod message;
pub mod meter;
pub mod oxm;
pub mod table;

pub use action::{Action, NatDir};
pub use group::{Bucket, Group, GroupTable, GroupType};
pub use instruction::Instruction;
pub use message::{ControllerRole, Message, PacketInReason, PortDesc, Xid};
pub use meter::{Meter, MeterBand, MeterTable};
pub use oxm::{Match, OxmField};
pub use table::{FlowEntry, FlowModCommand, FlowTable, TableId};

/// OpenFlow protocol version byte for 1.3.
pub const OFP_VERSION: u8 = 0x04;

/// Port numbers, including the OF 1.3 reserved values.
pub mod port_no {
    /// Maximum physical port number.
    pub const MAX: u32 = 0xffff_ff00;
    /// Send back out the ingress port.
    pub const IN_PORT: u32 = 0xffff_fff8;
    /// Submit to the flow table (valid only in packet-out).
    pub const TABLE: u32 = 0xffff_fff9;
    /// Legacy "normal" L2 processing.
    pub const NORMAL: u32 = 0xffff_fffa;
    /// Flood within the VLAN, minus ingress.
    pub const FLOOD: u32 = 0xffff_fffb;
    /// All ports except ingress.
    pub const ALL: u32 = 0xffff_fffc;
    /// Punt to the controller.
    pub const CONTROLLER: u32 = 0xffff_fffd;
    /// The switch-local port.
    pub const LOCAL: u32 = 0xffff_fffe;
    /// Wildcard in delete/stats filters.
    pub const ANY: u32 = 0xffff_ffff;
}

/// Group numbers.
pub mod group_no {
    /// Wildcard in delete/stats filters.
    pub const ANY: u32 = 0xffff_ffff;
    /// "All groups" in delete commands.
    pub const ALL: u32 = 0xffff_fffc;
}

/// The buffer id meaning "packet not buffered".
pub const NO_BUFFER: u32 = 0xffff_ffff;

/// Errors from the codec and table layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Not enough bytes for the claimed structure.
    Truncated,
    /// A structurally invalid field (bad length, bad padding, ...).
    Malformed(&'static str),
    /// Version byte other than 1.3 where one is required.
    BadVersion(u8),
    /// Message type not implemented by this subset.
    UnsupportedType(u8),
    /// The requested table does not exist.
    BadTable(u8),
    /// Flow-mod rejected: overlap check failed.
    Overlap,
    /// Group-mod rejected (unknown group, loop, ...).
    BadGroup(&'static str),
    /// Meter-mod rejected.
    BadMeter(&'static str),
    /// Match rejected (failed prerequisite or bad value).
    BadMatch(&'static str),
    /// The table is full.
    TableFull,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Truncated => write!(f, "truncated message"),
            Error::Malformed(m) => write!(f, "malformed: {m}"),
            Error::BadVersion(v) => write!(f, "unsupported OpenFlow version 0x{v:02x}"),
            Error::UnsupportedType(t) => write!(f, "unsupported message type {t}"),
            Error::BadTable(t) => write!(f, "no such table {t}"),
            Error::Overlap => write!(f, "overlapping flow entry"),
            Error::BadGroup(m) => write!(f, "bad group: {m}"),
            Error::BadMeter(m) => write!(f, "bad meter: {m}"),
            Error::BadMatch(m) => write!(f, "bad match: {m}"),
            Error::TableFull => write!(f, "flow table full"),
        }
    }
}

impl std::error::Error for Error {}

/// Codec result alias.
pub type Result<T> = core::result::Result<T, Error>;
