//! OpenFlow 1.3 message codec.
//!
//! Every message is encoded byte-exactly per the 1.3 wire spec (header:
//! version, type, length, xid). [`Message::encode`] produces a framed
//! message; [`Message::decode`] consumes one from a buffer;
//! [`decode_stream`] drains a byte stream that may carry several messages —
//! which is how the control channel delivers them.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::action::Action;
use crate::group::{Bucket, GroupModCommand, GroupType};
use crate::instruction::Instruction;
use crate::meter::{MeterBand, MeterModCommand};
use crate::oxm::Match;
use crate::table::FlowModCommand;
use crate::{Error, Result, NO_BUFFER, OFP_VERSION};

/// Transaction id carried in every message header.
pub type Xid = u32;

/// Message type bytes (OF 1.3 `ofp_type`).
#[allow(missing_docs)]
pub mod msg_type {
    pub const HELLO: u8 = 0;
    pub const ERROR: u8 = 1;
    pub const ECHO_REQUEST: u8 = 2;
    pub const ECHO_REPLY: u8 = 3;
    pub const FEATURES_REQUEST: u8 = 5;
    pub const FEATURES_REPLY: u8 = 6;
    pub const GET_CONFIG_REQUEST: u8 = 7;
    pub const GET_CONFIG_REPLY: u8 = 8;
    pub const SET_CONFIG: u8 = 9;
    pub const PACKET_IN: u8 = 10;
    pub const FLOW_REMOVED: u8 = 11;
    pub const PORT_STATUS: u8 = 12;
    pub const PACKET_OUT: u8 = 13;
    pub const FLOW_MOD: u8 = 14;
    pub const GROUP_MOD: u8 = 15;
    pub const MULTIPART_REQUEST: u8 = 18;
    pub const MULTIPART_REPLY: u8 = 19;
    pub const BARRIER_REQUEST: u8 = 20;
    pub const BARRIER_REPLY: u8 = 21;
    pub const ROLE_REQUEST: u8 = 24;
    pub const ROLE_REPLY: u8 = 25;
    pub const METER_MOD: u8 = 29;
}

/// Why a packet was punted to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketInReason {
    /// Table-miss flow entry.
    NoMatch,
    /// An explicit output-to-controller action.
    Action,
    /// TTL exceeded.
    InvalidTtl,
}

impl PacketInReason {
    /// Wire value.
    pub fn value(&self) -> u8 {
        match self {
            PacketInReason::NoMatch => 0,
            PacketInReason::Action => 1,
            PacketInReason::InvalidTtl => 2,
        }
    }

    /// From wire value.
    pub fn from_value(v: u8) -> Result<Self> {
        Ok(match v {
            0 => PacketInReason::NoMatch,
            1 => PacketInReason::Action,
            2 => PacketInReason::InvalidTtl,
            _ => return Err(Error::Malformed("bad packet-in reason")),
        })
    }
}

/// `ofp_controller_role` (OF 1.3 §7.3.9): what a controller connection
/// is allowed to do. A `Master` receives asynchronous messages and may
/// modify state; a `Slave` is read-only standby; `Equal` is full access
/// without exclusivity; `NoChange` queries the current role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerRole {
    /// Don't change the role; report the current one.
    NoChange,
    /// Full access, no exclusivity.
    Equal,
    /// Full access; demotes the previous master to slave.
    Master,
    /// Read-only standby: no async messages, no mutations.
    Slave,
}

impl ControllerRole {
    /// Wire value.
    pub fn value(&self) -> u32 {
        match self {
            ControllerRole::NoChange => 0,
            ControllerRole::Equal => 1,
            ControllerRole::Master => 2,
            ControllerRole::Slave => 3,
        }
    }

    /// From wire value.
    pub fn from_value(v: u32) -> Result<Self> {
        Ok(match v {
            0 => ControllerRole::NoChange,
            1 => ControllerRole::Equal,
            2 => ControllerRole::Master,
            3 => ControllerRole::Slave,
            _ => return Err(Error::Malformed("bad controller role")),
        })
    }
}

/// `ofp_port`: description of one switch port (64 bytes on the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDesc {
    /// Port number.
    pub port_no: u32,
    /// MAC address of the port.
    pub hw_addr: netpkt::MacAddr,
    /// Human-readable name (≤ 15 bytes kept).
    pub name: String,
    /// `ofp_port_config` bits.
    pub config: u32,
    /// `ofp_port_state` bits.
    pub state: u32,
    /// Current speed in kb/s.
    pub curr_speed: u32,
    /// Maximum speed in kb/s.
    pub max_speed: u32,
}

impl PortDesc {
    /// Byte length on the wire.
    pub const WIRE_LEN: usize = 64;

    fn encode(&self, out: &mut BytesMut) {
        out.put_u32(self.port_no);
        out.put_bytes(0, 4);
        out.put_slice(&self.hw_addr.octets());
        out.put_bytes(0, 2);
        let mut name = [0u8; 16];
        let n = self.name.len().min(15);
        name[..n].copy_from_slice(&self.name.as_bytes()[..n]);
        out.put_slice(&name);
        out.put_u32(self.config);
        out.put_u32(self.state);
        out.put_bytes(0, 16); // curr/advertised/supported/peer features
        out.put_u32(self.curr_speed);
        out.put_u32(self.max_speed);
    }

    fn decode(buf: &mut &[u8]) -> Result<PortDesc> {
        if buf.len() < Self::WIRE_LEN {
            return Err(Error::Truncated);
        }
        let port_no = buf.get_u32();
        buf.advance(4);
        let mut mac = [0u8; 6];
        buf.copy_to_slice(&mut mac);
        buf.advance(2);
        let mut name = [0u8; 16];
        buf.copy_to_slice(&mut name);
        let end = name.iter().position(|&b| b == 0).unwrap_or(16);
        let name = String::from_utf8_lossy(&name[..end]).into_owned();
        let config = buf.get_u32();
        let state = buf.get_u32();
        buf.advance(16);
        let curr_speed = buf.get_u32();
        let max_speed = buf.get_u32();
        Ok(PortDesc {
            port_no,
            hw_addr: netpkt::MacAddr(mac),
            name,
            config,
            state,
            curr_speed,
            max_speed,
        })
    }
}

/// The `FLOW_MOD` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowMod {
    /// Opaque controller cookie.
    pub cookie: u64,
    /// Cookie mask for modify/delete filtering.
    pub cookie_mask: u64,
    /// Target table.
    pub table_id: u8,
    /// Add/modify/delete.
    pub command: FlowModCommand,
    /// Idle timeout, seconds.
    pub idle_timeout: u16,
    /// Hard timeout, seconds.
    pub hard_timeout: u16,
    /// Priority.
    pub priority: u16,
    /// Buffered packet to release, or [`NO_BUFFER`].
    pub buffer_id: u32,
    /// Delete filter: output port.
    pub out_port: u32,
    /// Delete filter: output group.
    pub out_group: u32,
    /// `flow_flags` bits.
    pub flags: u16,
    /// The match.
    pub match_: Match,
    /// The instruction list.
    pub instructions: Vec<Instruction>,
}

impl FlowMod {
    /// Start an `ADD` flow-mod for `table_id` (builder style).
    pub fn add(table_id: u8) -> FlowMod {
        FlowMod {
            cookie: 0,
            cookie_mask: 0,
            table_id,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 0,
            buffer_id: NO_BUFFER,
            out_port: crate::port_no::ANY,
            out_group: crate::group_no::ANY,
            flags: 0,
            match_: Match::any(),
            instructions: Vec::new(),
        }
    }

    /// Start a non-strict `DELETE` for `table_id`.
    pub fn delete(table_id: u8) -> FlowMod {
        FlowMod {
            command: FlowModCommand::Delete,
            ..FlowMod::add(table_id)
        }
    }

    /// Builder: priority.
    pub fn priority(mut self, p: u16) -> Self {
        self.priority = p;
        self
    }

    /// Builder: match.
    pub fn match_(mut self, m: Match) -> Self {
        self.match_ = m;
        self
    }

    /// Builder: apply-actions instruction.
    pub fn apply(mut self, actions: Vec<Action>) -> Self {
        self.instructions.push(Instruction::ApplyActions(actions));
        self
    }

    /// Builder: goto-table instruction.
    pub fn goto(mut self, table: u8) -> Self {
        self.instructions.push(Instruction::GotoTable(table));
        self
    }

    /// Builder: raw instructions.
    pub fn instructions(mut self, insns: Vec<Instruction>) -> Self {
        self.instructions = insns;
        self
    }

    /// Builder: timeouts.
    pub fn timeouts(mut self, idle: u16, hard: u16) -> Self {
        self.idle_timeout = idle;
        self.hard_timeout = hard;
        self
    }

    /// Builder: cookie.
    pub fn cookie(mut self, c: u64) -> Self {
        self.cookie = c;
        self
    }

    /// Builder: flags.
    pub fn flags(mut self, f: u16) -> Self {
        self.flags = f;
        self
    }
}

/// Multipart request bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum MultipartReq {
    /// Switch description.
    Desc,
    /// Per-flow statistics.
    Flow {
        /// Table to read, or `0xff` for all.
        table_id: u8,
        /// Output-port filter.
        out_port: u32,
        /// Output-group filter.
        out_group: u32,
        /// Cookie filter.
        cookie: u64,
        /// Cookie mask (0 = no filtering).
        cookie_mask: u64,
        /// Match filter.
        match_: Match,
    },
    /// Aggregate statistics (same filter shape as `Flow`).
    Aggregate {
        /// Table to read, or `0xff` for all.
        table_id: u8,
        /// Output-port filter.
        out_port: u32,
        /// Output-group filter.
        out_group: u32,
        /// Cookie filter.
        cookie: u64,
        /// Cookie mask.
        cookie_mask: u64,
        /// Match filter.
        match_: Match,
    },
    /// Per-table lookup/match counters.
    Table,
    /// Per-port counters.
    PortStats {
        /// Port, or `port_no::ANY` for all.
        port_no: u32,
    },
    /// Port descriptions.
    PortDesc,
}

/// One flow entry in a `Flow` multipart reply.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowStatsEntry {
    /// Table the entry lives in.
    pub table_id: u8,
    /// Seconds alive.
    pub duration_sec: u32,
    /// Priority.
    pub priority: u16,
    /// Idle timeout.
    pub idle_timeout: u16,
    /// Hard timeout.
    pub hard_timeout: u16,
    /// Flags.
    pub flags: u16,
    /// Cookie.
    pub cookie: u64,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// The match.
    pub match_: Match,
    /// The instructions.
    pub instructions: Vec<Instruction>,
}

/// One table in a `Table` multipart reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableStatsEntry {
    /// Table id.
    pub table_id: u8,
    /// Entries installed.
    pub active_count: u32,
    /// Lookups performed.
    pub lookup_count: u64,
    /// Lookups that matched.
    pub matched_count: u64,
}

/// One port in a `PortStats` multipart reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStatsEntry {
    /// Port number.
    pub port_no: u32,
    /// Frames received.
    pub rx_packets: u64,
    /// Frames sent.
    pub tx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
    /// Receive drops.
    pub rx_dropped: u64,
    /// Transmit drops.
    pub tx_dropped: u64,
}

/// Multipart reply bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum MultipartRes {
    /// Switch description strings.
    Desc {
        /// Manufacturer.
        mfr: String,
        /// Hardware description.
        hw: String,
        /// Software description.
        sw: String,
        /// Serial number.
        serial: String,
        /// Datapath description.
        dp: String,
    },
    /// Flow statistics.
    Flow(Vec<FlowStatsEntry>),
    /// Aggregate statistics.
    Aggregate {
        /// Total packets.
        packet_count: u64,
        /// Total bytes.
        byte_count: u64,
        /// Number of flows.
        flow_count: u32,
    },
    /// Table statistics.
    Table(Vec<TableStatsEntry>),
    /// Port statistics.
    PortStats(Vec<PortStatsEntry>),
    /// Port descriptions.
    PortDesc(Vec<PortDesc>),
}

/// Multipart type codes.
mod mp_type {
    pub const DESC: u16 = 0;
    pub const FLOW: u16 = 1;
    pub const AGGREGATE: u16 = 2;
    pub const TABLE: u16 = 3;
    pub const PORT_STATS: u16 = 4;
    pub const PORT_DESC: u16 = 13;
}

/// A decoded OpenFlow message (without the xid, which travels beside it).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Version negotiation; we only ever speak 1.3.
    Hello,
    /// Error notification.
    Error {
        /// `ofp_error_type`.
        ty: u16,
        /// Type-specific code.
        code: u16,
        /// At least 64 bytes of the offending message.
        data: Bytes,
    },
    /// Liveness probe.
    EchoRequest(Bytes),
    /// Liveness answer (echoes the data).
    EchoReply(Bytes),
    /// Ask for datapath features.
    FeaturesRequest,
    /// Datapath features.
    FeaturesReply {
        /// Datapath id (MAC + implementer bits).
        datapath_id: u64,
        /// Packet buffer count.
        n_buffers: u32,
        /// Number of pipeline tables.
        n_tables: u8,
        /// Capability bits.
        capabilities: u32,
    },
    /// Ask for switch config.
    GetConfigRequest,
    /// Switch config.
    GetConfigReply {
        /// Fragment handling flags.
        flags: u16,
        /// Bytes of each packet sent to the controller on miss.
        miss_send_len: u16,
    },
    /// Set switch config.
    SetConfig {
        /// Fragment handling flags.
        flags: u16,
        /// Miss send length.
        miss_send_len: u16,
    },
    /// Packet punted to the controller.
    PacketIn {
        /// Buffer id or [`NO_BUFFER`].
        buffer_id: u32,
        /// Original frame length.
        total_len: u16,
        /// Why it was punted.
        reason: PacketInReason,
        /// Table that punted it.
        table_id: u8,
        /// Cookie of the flow entry.
        cookie: u64,
        /// Match metadata (carries at least IN_PORT).
        match_: Match,
        /// The (possibly truncated) frame.
        data: Bytes,
    },
    /// A flow entry died.
    FlowRemoved {
        /// Cookie.
        cookie: u64,
        /// Priority.
        priority: u16,
        /// `RemovedReason` wire value.
        reason: u8,
        /// Table it lived in.
        table_id: u8,
        /// Lifetime seconds.
        duration_sec: u32,
        /// Idle timeout.
        idle_timeout: u16,
        /// Hard timeout.
        hard_timeout: u16,
        /// Packets matched.
        packet_count: u64,
        /// Bytes matched.
        byte_count: u64,
        /// The match.
        match_: Match,
    },
    /// A port appeared/disappeared/changed.
    PortStatus {
        /// 0 = add, 1 = delete, 2 = modify.
        reason: u8,
        /// The port.
        desc: PortDesc,
    },
    /// Controller-originated packet.
    PacketOut {
        /// Buffer to release or [`NO_BUFFER`].
        buffer_id: u32,
        /// Ingress port context (or `port_no::CONTROLLER`).
        in_port: u32,
        /// Actions to apply.
        actions: Vec<Action>,
        /// Frame data when not buffered.
        data: Bytes,
    },
    /// Flow table modification.
    FlowMod(FlowMod),
    /// Group table modification.
    GroupMod {
        /// Add/modify/delete.
        command: GroupModCommand,
        /// Group behaviour.
        type_: GroupType,
        /// Group id.
        group_id: u32,
        /// Buckets.
        buckets: Vec<Bucket>,
    },
    /// Meter table modification.
    MeterMod {
        /// Add/modify/delete.
        command: MeterModCommand,
        /// Meter id.
        meter_id: u32,
        /// Rate unit is packets/s instead of kb/s.
        pktps: bool,
        /// The drop band (absent for delete).
        band: Option<MeterBand>,
    },
    /// Statistics request.
    MultipartRequest(MultipartReq),
    /// Statistics reply.
    MultipartReply(MultipartRes),
    /// Flush barrier.
    BarrierRequest,
    /// Barrier acknowledgement.
    BarrierReply,
    /// Master/slave role negotiation (controller → switch). The
    /// generation id fences stale masters: a request whose generation
    /// is behind the switch's view is refused with an error.
    RoleRequest {
        /// Requested role.
        role: ControllerRole,
        /// Monotonic master-election generation.
        generation_id: u64,
    },
    /// Role negotiation answer (switch → controller) carrying the role
    /// now in effect.
    RoleReply {
        /// Role in effect after the request.
        role: ControllerRole,
        /// The switch's current generation.
        generation_id: u64,
    },
}

impl Message {
    /// The `ofp_type` byte of this message.
    pub fn type_byte(&self) -> u8 {
        use msg_type::*;
        match self {
            Message::Hello => HELLO,
            Message::Error { .. } => ERROR,
            Message::EchoRequest(_) => ECHO_REQUEST,
            Message::EchoReply(_) => ECHO_REPLY,
            Message::FeaturesRequest => FEATURES_REQUEST,
            Message::FeaturesReply { .. } => FEATURES_REPLY,
            Message::GetConfigRequest => GET_CONFIG_REQUEST,
            Message::GetConfigReply { .. } => GET_CONFIG_REPLY,
            Message::SetConfig { .. } => SET_CONFIG,
            Message::PacketIn { .. } => PACKET_IN,
            Message::FlowRemoved { .. } => FLOW_REMOVED,
            Message::PortStatus { .. } => PORT_STATUS,
            Message::PacketOut { .. } => PACKET_OUT,
            Message::FlowMod(_) => FLOW_MOD,
            Message::GroupMod { .. } => GROUP_MOD,
            Message::MeterMod { .. } => METER_MOD,
            Message::MultipartRequest(_) => MULTIPART_REQUEST,
            Message::MultipartReply(_) => MULTIPART_REPLY,
            Message::BarrierRequest => BARRIER_REQUEST,
            Message::BarrierReply => BARRIER_REPLY,
            Message::RoleRequest { .. } => ROLE_REQUEST,
            Message::RoleReply { .. } => ROLE_REPLY,
        }
    }

    /// Encode with full header; `xid` is the transaction id.
    pub fn encode(&self, xid: Xid) -> Bytes {
        let mut body = BytesMut::new();
        self.encode_body(&mut body);
        let mut out = BytesMut::with_capacity(8 + body.len());
        out.put_u8(OFP_VERSION);
        out.put_u8(self.type_byte());
        out.put_u16((8 + body.len()) as u16);
        out.put_u32(xid);
        out.put_slice(&body);
        out.freeze()
    }

    fn encode_body(&self, out: &mut BytesMut) {
        match self {
            Message::Hello
            | Message::FeaturesRequest
            | Message::GetConfigRequest
            | Message::BarrierRequest
            | Message::BarrierReply => {}
            Message::Error { ty, code, data } => {
                out.put_u16(*ty);
                out.put_u16(*code);
                out.put_slice(data);
            }
            Message::EchoRequest(d) | Message::EchoReply(d) => out.put_slice(d),
            Message::RoleRequest {
                role,
                generation_id,
            }
            | Message::RoleReply {
                role,
                generation_id,
            } => {
                out.put_u32(role.value());
                out.put_bytes(0, 4);
                out.put_u64(*generation_id);
            }
            Message::FeaturesReply {
                datapath_id,
                n_buffers,
                n_tables,
                capabilities,
            } => {
                out.put_u64(*datapath_id);
                out.put_u32(*n_buffers);
                out.put_u8(*n_tables);
                out.put_u8(0); // auxiliary_id
                out.put_bytes(0, 2);
                out.put_u32(*capabilities);
                out.put_u32(0); // reserved
            }
            Message::GetConfigReply {
                flags,
                miss_send_len,
            }
            | Message::SetConfig {
                flags,
                miss_send_len,
            } => {
                out.put_u16(*flags);
                out.put_u16(*miss_send_len);
            }
            Message::PacketIn {
                buffer_id,
                total_len,
                reason,
                table_id,
                cookie,
                match_,
                data,
            } => {
                out.put_u32(*buffer_id);
                out.put_u16(*total_len);
                out.put_u8(reason.value());
                out.put_u8(*table_id);
                out.put_u64(*cookie);
                match_.encode(out);
                out.put_bytes(0, 2);
                out.put_slice(data);
            }
            Message::FlowRemoved {
                cookie,
                priority,
                reason,
                table_id,
                duration_sec,
                idle_timeout,
                hard_timeout,
                packet_count,
                byte_count,
                match_,
            } => {
                out.put_u64(*cookie);
                out.put_u16(*priority);
                out.put_u8(*reason);
                out.put_u8(*table_id);
                out.put_u32(*duration_sec);
                out.put_u32(0); // duration_nsec
                out.put_u16(*idle_timeout);
                out.put_u16(*hard_timeout);
                out.put_u64(*packet_count);
                out.put_u64(*byte_count);
                match_.encode(out);
            }
            Message::PortStatus { reason, desc } => {
                out.put_u8(*reason);
                out.put_bytes(0, 7);
                desc.encode(out);
            }
            Message::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            } => {
                out.put_u32(*buffer_id);
                out.put_u32(*in_port);
                out.put_u16(Action::list_len(actions) as u16);
                out.put_bytes(0, 6);
                Action::encode_list(actions, out);
                out.put_slice(data);
            }
            Message::FlowMod(fm) => {
                out.put_u64(fm.cookie);
                out.put_u64(fm.cookie_mask);
                out.put_u8(fm.table_id);
                out.put_u8(fm.command.value());
                out.put_u16(fm.idle_timeout);
                out.put_u16(fm.hard_timeout);
                out.put_u16(fm.priority);
                out.put_u32(fm.buffer_id);
                out.put_u32(fm.out_port);
                out.put_u32(fm.out_group);
                out.put_u16(fm.flags);
                out.put_bytes(0, 2);
                fm.match_.encode(out);
                Instruction::encode_list(&fm.instructions, out);
            }
            Message::GroupMod {
                command,
                type_,
                group_id,
                buckets,
            } => {
                out.put_u16(command.value());
                out.put_u8(type_.value());
                out.put_u8(0);
                out.put_u32(*group_id);
                for b in buckets {
                    let blen = 16 + Action::list_len(&b.actions);
                    out.put_u16(blen as u16);
                    out.put_u16(b.weight);
                    out.put_u32(crate::port_no::ANY); // watch_port
                    out.put_u32(crate::group_no::ANY); // watch_group
                    out.put_bytes(0, 4);
                    Action::encode_list(&b.actions, out);
                }
            }
            Message::MeterMod {
                command,
                meter_id,
                pktps,
                band,
            } => {
                out.put_u16(command.value());
                let mut flags = if *pktps { 0x2 } else { 0x1 };
                flags |= 0x4; // burst
                out.put_u16(flags);
                out.put_u32(*meter_id);
                if let Some(b) = band {
                    out.put_u16(1); // OFPMBT_DROP
                    out.put_u16(16);
                    out.put_u32(b.rate);
                    out.put_u32(b.burst);
                    out.put_bytes(0, 4);
                }
            }
            Message::MultipartRequest(req) => {
                let (ty, body): (u16, BytesMut) = match req {
                    MultipartReq::Desc => (mp_type::DESC, BytesMut::new()),
                    MultipartReq::Flow {
                        table_id,
                        out_port,
                        out_group,
                        cookie,
                        cookie_mask,
                        match_,
                    }
                    | MultipartReq::Aggregate {
                        table_id,
                        out_port,
                        out_group,
                        cookie,
                        cookie_mask,
                        match_,
                    } => {
                        let mut b = BytesMut::new();
                        b.put_u8(*table_id);
                        b.put_bytes(0, 3);
                        b.put_u32(*out_port);
                        b.put_u32(*out_group);
                        b.put_bytes(0, 4);
                        b.put_u64(*cookie);
                        b.put_u64(*cookie_mask);
                        match_.encode(&mut b);
                        let ty = if matches!(req, MultipartReq::Flow { .. }) {
                            mp_type::FLOW
                        } else {
                            mp_type::AGGREGATE
                        };
                        (ty, b)
                    }
                    MultipartReq::Table => (mp_type::TABLE, BytesMut::new()),
                    MultipartReq::PortStats { port_no } => {
                        let mut b = BytesMut::new();
                        b.put_u32(*port_no);
                        b.put_bytes(0, 4);
                        (mp_type::PORT_STATS, b)
                    }
                    MultipartReq::PortDesc => (mp_type::PORT_DESC, BytesMut::new()),
                };
                out.put_u16(ty);
                out.put_u16(0); // flags
                out.put_bytes(0, 4);
                out.put_slice(&body);
            }
            Message::MultipartReply(res) => {
                let (ty, body): (u16, BytesMut) = match res {
                    MultipartRes::Desc {
                        mfr,
                        hw,
                        sw,
                        serial,
                        dp,
                    } => {
                        let mut b = BytesMut::new();
                        for (s, len) in [(mfr, 256), (hw, 256), (sw, 256), (serial, 32), (dp, 256)]
                        {
                            let mut field = vec![0u8; len];
                            let n = s.len().min(len - 1);
                            field[..n].copy_from_slice(&s.as_bytes()[..n]);
                            b.put_slice(&field);
                        }
                        (mp_type::DESC, b)
                    }
                    MultipartRes::Flow(entries) => {
                        let mut b = BytesMut::new();
                        for e in entries {
                            let mlen = e.match_.encoded_len();
                            let ilen = Instruction::list_len(&e.instructions);
                            b.put_u16((48 + mlen + ilen) as u16);
                            b.put_u8(e.table_id);
                            b.put_u8(0);
                            b.put_u32(e.duration_sec);
                            b.put_u32(0); // duration_nsec
                            b.put_u16(e.priority);
                            b.put_u16(e.idle_timeout);
                            b.put_u16(e.hard_timeout);
                            b.put_u16(e.flags);
                            b.put_bytes(0, 4);
                            b.put_u64(e.cookie);
                            b.put_u64(e.packet_count);
                            b.put_u64(e.byte_count);
                            e.match_.encode(&mut b);
                            Instruction::encode_list(&e.instructions, &mut b);
                        }
                        (mp_type::FLOW, b)
                    }
                    MultipartRes::Aggregate {
                        packet_count,
                        byte_count,
                        flow_count,
                    } => {
                        let mut b = BytesMut::new();
                        b.put_u64(*packet_count);
                        b.put_u64(*byte_count);
                        b.put_u32(*flow_count);
                        b.put_bytes(0, 4);
                        (mp_type::AGGREGATE, b)
                    }
                    MultipartRes::Table(entries) => {
                        let mut b = BytesMut::new();
                        for e in entries {
                            b.put_u8(e.table_id);
                            b.put_bytes(0, 3);
                            b.put_u32(e.active_count);
                            b.put_u64(e.lookup_count);
                            b.put_u64(e.matched_count);
                        }
                        (mp_type::TABLE, b)
                    }
                    MultipartRes::PortStats(entries) => {
                        let mut b = BytesMut::new();
                        for e in entries {
                            b.put_u32(e.port_no);
                            b.put_bytes(0, 4);
                            b.put_u64(e.rx_packets);
                            b.put_u64(e.tx_packets);
                            b.put_u64(e.rx_bytes);
                            b.put_u64(e.tx_bytes);
                            b.put_u64(e.rx_dropped);
                            b.put_u64(e.tx_dropped);
                            b.put_bytes(0, 48); // errors, collisions
                            b.put_u32(0); // duration_sec
                            b.put_u32(0); // duration_nsec
                        }
                        (mp_type::PORT_STATS, b)
                    }
                    MultipartRes::PortDesc(ports) => {
                        let mut b = BytesMut::new();
                        for p in ports {
                            p.encode(&mut b);
                        }
                        (mp_type::PORT_DESC, b)
                    }
                };
                out.put_u16(ty);
                out.put_u16(0);
                out.put_bytes(0, 4);
                out.put_slice(&body);
            }
        }
    }

    /// Decode a single framed message from the front of `buf`. Returns the
    /// xid, the message and how many bytes were consumed.
    pub fn decode(buf: &[u8]) -> Result<(Xid, Message, usize)> {
        if buf.len() < 8 {
            return Err(Error::Truncated);
        }
        let version = buf[0];
        let ty = buf[1];
        let len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        let xid = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
        if len < 8 {
            return Err(Error::Malformed("header length below 8"));
        }
        if buf.len() < len {
            return Err(Error::Truncated);
        }
        if version != OFP_VERSION && ty != msg_type::HELLO {
            return Err(Error::BadVersion(version));
        }
        let mut body = &buf[8..len];
        let msg = Self::decode_body(ty, &mut body)?;
        Ok((xid, msg, len))
    }

    fn decode_body(ty: u8, body: &mut &[u8]) -> Result<Message> {
        use msg_type::*;
        Ok(match ty {
            HELLO => Message::Hello,
            ERROR => {
                if body.len() < 4 {
                    return Err(Error::Truncated);
                }
                let ty = body.get_u16();
                let code = body.get_u16();
                Message::Error {
                    ty,
                    code,
                    data: Bytes::copy_from_slice(body),
                }
            }
            ECHO_REQUEST => Message::EchoRequest(Bytes::copy_from_slice(body)),
            ECHO_REPLY => Message::EchoReply(Bytes::copy_from_slice(body)),
            ROLE_REQUEST | ROLE_REPLY => {
                if body.len() < 16 {
                    return Err(Error::Truncated);
                }
                let role = ControllerRole::from_value(body.get_u32())?;
                body.advance(4);
                let generation_id = body.get_u64();
                if ty == ROLE_REQUEST {
                    Message::RoleRequest {
                        role,
                        generation_id,
                    }
                } else {
                    Message::RoleReply {
                        role,
                        generation_id,
                    }
                }
            }
            FEATURES_REQUEST => Message::FeaturesRequest,
            FEATURES_REPLY => {
                if body.len() < 24 {
                    return Err(Error::Truncated);
                }
                let datapath_id = body.get_u64();
                let n_buffers = body.get_u32();
                let n_tables = body.get_u8();
                body.advance(3);
                let capabilities = body.get_u32();
                Message::FeaturesReply {
                    datapath_id,
                    n_buffers,
                    n_tables,
                    capabilities,
                }
            }
            GET_CONFIG_REQUEST => Message::GetConfigRequest,
            GET_CONFIG_REPLY | SET_CONFIG => {
                if body.len() < 4 {
                    return Err(Error::Truncated);
                }
                let flags = body.get_u16();
                let miss_send_len = body.get_u16();
                if ty == GET_CONFIG_REPLY {
                    Message::GetConfigReply {
                        flags,
                        miss_send_len,
                    }
                } else {
                    Message::SetConfig {
                        flags,
                        miss_send_len,
                    }
                }
            }
            PACKET_IN => {
                if body.len() < 16 {
                    return Err(Error::Truncated);
                }
                let buffer_id = body.get_u32();
                let total_len = body.get_u16();
                let reason = PacketInReason::from_value(body.get_u8())?;
                let table_id = body.get_u8();
                let cookie = body.get_u64();
                let match_ = Match::decode(body)?;
                if body.len() < 2 {
                    return Err(Error::Truncated);
                }
                body.advance(2);
                Message::PacketIn {
                    buffer_id,
                    total_len,
                    reason,
                    table_id,
                    cookie,
                    match_,
                    data: Bytes::copy_from_slice(body),
                }
            }
            FLOW_REMOVED => {
                if body.len() < 40 {
                    return Err(Error::Truncated);
                }
                let cookie = body.get_u64();
                let priority = body.get_u16();
                let reason = body.get_u8();
                let table_id = body.get_u8();
                let duration_sec = body.get_u32();
                let _duration_nsec = body.get_u32();
                let idle_timeout = body.get_u16();
                let hard_timeout = body.get_u16();
                let packet_count = body.get_u64();
                let byte_count = body.get_u64();
                let match_ = Match::decode(body)?;
                Message::FlowRemoved {
                    cookie,
                    priority,
                    reason,
                    table_id,
                    duration_sec,
                    idle_timeout,
                    hard_timeout,
                    packet_count,
                    byte_count,
                    match_,
                }
            }
            PORT_STATUS => {
                if body.len() < 8 + PortDesc::WIRE_LEN {
                    return Err(Error::Truncated);
                }
                let reason = body.get_u8();
                body.advance(7);
                let desc = PortDesc::decode(body)?;
                Message::PortStatus { reason, desc }
            }
            PACKET_OUT => {
                if body.len() < 16 {
                    return Err(Error::Truncated);
                }
                let buffer_id = body.get_u32();
                let in_port = body.get_u32();
                let actions_len = usize::from(body.get_u16());
                body.advance(6);
                let actions = Action::decode_list(body, actions_len)?;
                Message::PacketOut {
                    buffer_id,
                    in_port,
                    actions,
                    data: Bytes::copy_from_slice(body),
                }
            }
            FLOW_MOD => {
                if body.len() < 40 {
                    return Err(Error::Truncated);
                }
                let cookie = body.get_u64();
                let cookie_mask = body.get_u64();
                let table_id = body.get_u8();
                let command = FlowModCommand::from_value(body.get_u8())?;
                let idle_timeout = body.get_u16();
                let hard_timeout = body.get_u16();
                let priority = body.get_u16();
                let buffer_id = body.get_u32();
                let out_port = body.get_u32();
                let out_group = body.get_u32();
                let flags = body.get_u16();
                body.advance(2);
                let match_ = Match::decode(body)?;
                let ilen = body.len();
                let instructions = Instruction::decode_list(body, ilen)?;
                Message::FlowMod(FlowMod {
                    cookie,
                    cookie_mask,
                    table_id,
                    command,
                    idle_timeout,
                    hard_timeout,
                    priority,
                    buffer_id,
                    out_port,
                    out_group,
                    flags,
                    match_,
                    instructions,
                })
            }
            GROUP_MOD => {
                if body.len() < 8 {
                    return Err(Error::Truncated);
                }
                let command = GroupModCommand::from_value(body.get_u16())?;
                let type_ = GroupType::from_value(body.get_u8())?;
                body.advance(1);
                let group_id = body.get_u32();
                let mut buckets = Vec::new();
                while !body.is_empty() {
                    if body.len() < 16 {
                        return Err(Error::Truncated);
                    }
                    let blen = usize::from(body.get_u16());
                    if blen < 16 {
                        return Err(Error::Malformed("bucket too short"));
                    }
                    let weight = body.get_u16();
                    body.advance(12); // watch_port, watch_group, pad
                    let alen = blen - 16;
                    let actions = Action::decode_list(body, alen)?;
                    buckets.push(Bucket { weight, actions });
                }
                Message::GroupMod {
                    command,
                    type_,
                    group_id,
                    buckets,
                }
            }
            METER_MOD => {
                if body.len() < 8 {
                    return Err(Error::Truncated);
                }
                let command = MeterModCommand::from_value(body.get_u16())?;
                let flags = body.get_u16();
                let meter_id = body.get_u32();
                let pktps = flags & 0x2 != 0;
                let band = if body.is_empty() {
                    None
                } else {
                    if body.len() < 16 {
                        return Err(Error::Truncated);
                    }
                    let bty = body.get_u16();
                    let blen = body.get_u16();
                    if bty != 1 || blen != 16 {
                        return Err(Error::Malformed("only 16-byte drop bands supported"));
                    }
                    let rate = body.get_u32();
                    let burst = body.get_u32();
                    body.advance(4);
                    Some(MeterBand { rate, burst })
                };
                Message::MeterMod {
                    command,
                    meter_id,
                    pktps,
                    band,
                }
            }
            MULTIPART_REQUEST => {
                if body.len() < 8 {
                    return Err(Error::Truncated);
                }
                let mpty = body.get_u16();
                let _flags = body.get_u16();
                body.advance(4);
                let req = match mpty {
                    mp_type::DESC => MultipartReq::Desc,
                    mp_type::FLOW | mp_type::AGGREGATE => {
                        if body.len() < 32 {
                            return Err(Error::Truncated);
                        }
                        let table_id = body.get_u8();
                        body.advance(3);
                        let out_port = body.get_u32();
                        let out_group = body.get_u32();
                        body.advance(4);
                        let cookie = body.get_u64();
                        let cookie_mask = body.get_u64();
                        let match_ = Match::decode(body)?;
                        if mpty == mp_type::FLOW {
                            MultipartReq::Flow {
                                table_id,
                                out_port,
                                out_group,
                                cookie,
                                cookie_mask,
                                match_,
                            }
                        } else {
                            MultipartReq::Aggregate {
                                table_id,
                                out_port,
                                out_group,
                                cookie,
                                cookie_mask,
                                match_,
                            }
                        }
                    }
                    mp_type::TABLE => MultipartReq::Table,
                    mp_type::PORT_STATS => {
                        if body.len() < 8 {
                            return Err(Error::Truncated);
                        }
                        let port_no = body.get_u32();
                        body.advance(4);
                        MultipartReq::PortStats { port_no }
                    }
                    mp_type::PORT_DESC => MultipartReq::PortDesc,
                    _ => return Err(Error::Malformed("unsupported multipart type")),
                };
                Message::MultipartRequest(req)
            }
            MULTIPART_REPLY => {
                if body.len() < 8 {
                    return Err(Error::Truncated);
                }
                let mpty = body.get_u16();
                let _flags = body.get_u16();
                body.advance(4);
                let res = match mpty {
                    mp_type::DESC => {
                        if body.len() < 1056 {
                            return Err(Error::Truncated);
                        }
                        let mut read = |len: usize| {
                            let raw = &body[..len];
                            let end = raw.iter().position(|&b| b == 0).unwrap_or(len);
                            let s = String::from_utf8_lossy(&raw[..end]).into_owned();
                            body.advance(len);
                            s
                        };
                        let mfr = read(256);
                        let hw = read(256);
                        let sw = read(256);
                        let serial = read(32);
                        let dp = read(256);
                        MultipartRes::Desc {
                            mfr,
                            hw,
                            sw,
                            serial,
                            dp,
                        }
                    }
                    mp_type::FLOW => {
                        let mut entries = Vec::new();
                        while !body.is_empty() {
                            if body.len() < 48 {
                                return Err(Error::Truncated);
                            }
                            let elen = usize::from(body.get_u16());
                            if elen < 48 {
                                return Err(Error::Malformed("flow stats entry too short"));
                            }
                            let table_id = body.get_u8();
                            body.advance(1);
                            let duration_sec = body.get_u32();
                            let _duration_nsec = body.get_u32();
                            let priority = body.get_u16();
                            let idle_timeout = body.get_u16();
                            let hard_timeout = body.get_u16();
                            let flags = body.get_u16();
                            body.advance(4);
                            let cookie = body.get_u64();
                            let packet_count = body.get_u64();
                            let byte_count = body.get_u64();
                            let before = body.len();
                            let match_ = Match::decode(body)?;
                            let consumed_match = before - body.len();
                            let ilen = elen - 48 - consumed_match;
                            let instructions = Instruction::decode_list(body, ilen)?;
                            entries.push(FlowStatsEntry {
                                table_id,
                                duration_sec,
                                priority,
                                idle_timeout,
                                hard_timeout,
                                flags,
                                cookie,
                                packet_count,
                                byte_count,
                                match_,
                                instructions,
                            });
                        }
                        MultipartRes::Flow(entries)
                    }
                    mp_type::AGGREGATE => {
                        if body.len() < 24 {
                            return Err(Error::Truncated);
                        }
                        let packet_count = body.get_u64();
                        let byte_count = body.get_u64();
                        let flow_count = body.get_u32();
                        body.advance(4);
                        MultipartRes::Aggregate {
                            packet_count,
                            byte_count,
                            flow_count,
                        }
                    }
                    mp_type::TABLE => {
                        let mut entries = Vec::new();
                        while body.len() >= 24 {
                            let table_id = body.get_u8();
                            body.advance(3);
                            let active_count = body.get_u32();
                            let lookup_count = body.get_u64();
                            let matched_count = body.get_u64();
                            entries.push(TableStatsEntry {
                                table_id,
                                active_count,
                                lookup_count,
                                matched_count,
                            });
                        }
                        MultipartRes::Table(entries)
                    }
                    mp_type::PORT_STATS => {
                        let mut entries = Vec::new();
                        while body.len() >= 112 {
                            let port_no = body.get_u32();
                            body.advance(4);
                            let rx_packets = body.get_u64();
                            let tx_packets = body.get_u64();
                            let rx_bytes = body.get_u64();
                            let tx_bytes = body.get_u64();
                            let rx_dropped = body.get_u64();
                            let tx_dropped = body.get_u64();
                            body.advance(56);
                            entries.push(PortStatsEntry {
                                port_no,
                                rx_packets,
                                tx_packets,
                                rx_bytes,
                                tx_bytes,
                                rx_dropped,
                                tx_dropped,
                            });
                        }
                        MultipartRes::PortStats(entries)
                    }
                    mp_type::PORT_DESC => {
                        let mut ports = Vec::new();
                        while body.len() >= PortDesc::WIRE_LEN {
                            ports.push(PortDesc::decode(body)?);
                        }
                        MultipartRes::PortDesc(ports)
                    }
                    _ => return Err(Error::Malformed("unsupported multipart type")),
                };
                Message::MultipartReply(res)
            }
            BARRIER_REQUEST => Message::BarrierRequest,
            BARRIER_REPLY => Message::BarrierReply,
            other => return Err(Error::UnsupportedType(other)),
        })
    }
}

/// Drain every complete message from `stream`; bytes of an incomplete
/// trailing message remain in the buffer.
pub fn decode_stream(stream: &mut BytesMut) -> Result<Vec<(Xid, Message)>> {
    let mut out = Vec::new();
    loop {
        match Message::decode(&stream[..]) {
            Ok((xid, msg, used)) => {
                stream.advance(used);
                out.push((xid, msg));
                if stream.is_empty() {
                    break;
                }
            }
            Err(Error::Truncated) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::MacAddr;
    use std::net::Ipv4Addr;

    fn round_trip(m: &Message) -> Message {
        let wire = m.encode(0x1234);
        let (xid, got, used) = Message::decode(&wire).unwrap();
        assert_eq!(xid, 0x1234);
        assert_eq!(used, wire.len());
        got
    }

    fn sample_match() -> Match {
        Match::new()
            .in_port(1)
            .eth_type(0x0800)
            .ipv4_dst(Ipv4Addr::new(10, 0, 0, 9))
    }

    #[test]
    fn control_messages_round_trip() {
        for m in [
            Message::Hello,
            Message::EchoRequest(Bytes::from_static(b"ping")),
            Message::EchoReply(Bytes::from_static(b"ping")),
            Message::FeaturesRequest,
            Message::FeaturesReply {
                datapath_id: 0x00aa_bb00_0000_0001,
                n_buffers: 256,
                n_tables: 4,
                capabilities: 0x47,
            },
            Message::GetConfigRequest,
            Message::GetConfigReply {
                flags: 0,
                miss_send_len: 128,
            },
            Message::SetConfig {
                flags: 0,
                miss_send_len: 0xffff,
            },
            Message::BarrierRequest,
            Message::BarrierReply,
            Message::Error {
                ty: 5,
                code: 1,
                data: Bytes::from_static(b"bad flow mod"),
            },
            Message::RoleRequest {
                role: ControllerRole::Master,
                generation_id: 7,
            },
            Message::RoleReply {
                role: ControllerRole::Slave,
                generation_id: u64::MAX,
            },
        ] {
            assert_eq!(round_trip(&m), m);
        }
    }

    #[test]
    fn controller_role_wire_values() {
        for (role, v) in [
            (ControllerRole::NoChange, 0u32),
            (ControllerRole::Equal, 1),
            (ControllerRole::Master, 2),
            (ControllerRole::Slave, 3),
        ] {
            assert_eq!(role.value(), v);
            assert_eq!(ControllerRole::from_value(v).unwrap(), role);
        }
        assert!(ControllerRole::from_value(4).is_err());
    }

    #[test]
    fn flow_mod_round_trip() {
        let fm = FlowMod::add(0)
            .priority(100)
            .match_(sample_match())
            .apply(vec![Action::set_vlan_vid(102), Action::output(7)])
            .timeouts(30, 300)
            .cookie(0xdeadbeef)
            .flags(crate::table::flow_flags::SEND_FLOW_REM);
        assert_eq!(
            round_trip(&Message::FlowMod(fm.clone())),
            Message::FlowMod(fm)
        );
    }

    #[test]
    fn flow_mod_goto_metadata_round_trip() {
        let fm = FlowMod::add(0)
            .match_(Match::new().vlan(101))
            .instructions(vec![
                Instruction::WriteMetadata {
                    metadata: 101,
                    mask: 0xfff,
                },
                Instruction::GotoTable(1),
            ]);
        assert_eq!(
            round_trip(&Message::FlowMod(fm.clone())),
            Message::FlowMod(fm)
        );
    }

    #[test]
    fn packet_in_round_trip() {
        let m = Message::PacketIn {
            buffer_id: NO_BUFFER,
            total_len: 60,
            reason: PacketInReason::NoMatch,
            table_id: 0,
            cookie: 7,
            match_: Match::new().in_port(3),
            data: Bytes::from_static(&[0xaa; 60]),
        };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn packet_out_round_trip() {
        let m = Message::PacketOut {
            buffer_id: NO_BUFFER,
            in_port: crate::port_no::CONTROLLER,
            actions: vec![Action::output(crate::port_no::FLOOD)],
            data: Bytes::from_static(&[0x55; 64]),
        };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn flow_removed_round_trip() {
        let m = Message::FlowRemoved {
            cookie: 9,
            priority: 10,
            reason: 0,
            table_id: 1,
            duration_sec: 42,
            idle_timeout: 30,
            hard_timeout: 0,
            packet_count: 1000,
            byte_count: 64000,
            match_: sample_match(),
        };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn port_status_round_trip() {
        let m = Message::PortStatus {
            reason: 2,
            desc: PortDesc {
                port_no: 4,
                hw_addr: MacAddr::host(4),
                name: "eth4".into(),
                config: 0,
                state: 1,
                curr_speed: 1_000_000,
                max_speed: 10_000_000,
            },
        };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn group_mod_round_trip() {
        let m = Message::GroupMod {
            command: GroupModCommand::Add,
            type_: GroupType::Select,
            group_id: 1,
            buckets: vec![
                Bucket::new(vec![Action::output(1)]).with_weight(3),
                Bucket::new(vec![Action::output(2)]),
            ],
        };
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn meter_mod_round_trip() {
        let m = Message::MeterMod {
            command: MeterModCommand::Add,
            meter_id: 5,
            pktps: false,
            band: Some(MeterBand {
                rate: 10_000,
                burst: 100,
            }),
        };
        assert_eq!(round_trip(&m), m);
        let del = Message::MeterMod {
            command: MeterModCommand::Delete,
            meter_id: 5,
            pktps: false,
            band: None,
        };
        assert_eq!(round_trip(&del), del);
    }

    #[test]
    fn multipart_round_trips() {
        let reqs = vec![
            MultipartReq::Desc,
            MultipartReq::Flow {
                table_id: 0xff,
                out_port: crate::port_no::ANY,
                out_group: crate::group_no::ANY,
                cookie: 0,
                cookie_mask: 0,
                match_: Match::any(),
            },
            MultipartReq::Aggregate {
                table_id: 0,
                out_port: crate::port_no::ANY,
                out_group: crate::group_no::ANY,
                cookie: 1,
                cookie_mask: u64::MAX,
                match_: sample_match(),
            },
            MultipartReq::Table,
            MultipartReq::PortStats {
                port_no: crate::port_no::ANY,
            },
            MultipartReq::PortDesc,
        ];
        for r in reqs {
            let m = Message::MultipartRequest(r);
            assert_eq!(round_trip(&m), m);
        }

        let resps = vec![
            MultipartRes::Desc {
                mfr: "harmless".into(),
                hw: "sim".into(),
                sw: "0.1".into(),
                serial: "42".into(),
                dp: "ss2".into(),
            },
            MultipartRes::Flow(vec![FlowStatsEntry {
                table_id: 0,
                duration_sec: 10,
                priority: 5,
                idle_timeout: 0,
                hard_timeout: 0,
                flags: 0,
                cookie: 3,
                packet_count: 100,
                byte_count: 6400,
                match_: sample_match(),
                instructions: Instruction::apply(vec![Action::output(2)]),
            }]),
            MultipartRes::Aggregate {
                packet_count: 5,
                byte_count: 300,
                flow_count: 2,
            },
            MultipartRes::Table(vec![TableStatsEntry {
                table_id: 0,
                active_count: 3,
                lookup_count: 100,
                matched_count: 90,
            }]),
            MultipartRes::PortStats(vec![PortStatsEntry {
                port_no: 1,
                rx_packets: 10,
                tx_packets: 20,
                rx_bytes: 600,
                tx_bytes: 1200,
                rx_dropped: 0,
                tx_dropped: 1,
            }]),
            MultipartRes::PortDesc(vec![PortDesc {
                port_no: 1,
                hw_addr: MacAddr::host(1),
                name: "p1".into(),
                config: 0,
                state: 0,
                curr_speed: 1_000_000,
                max_speed: 1_000_000,
            }]),
        ];
        for r in resps {
            let m = Message::MultipartReply(r);
            assert_eq!(round_trip(&m), m);
        }
    }

    #[test]
    fn stream_decoding_handles_coalescing_and_splits() {
        let m1 = Message::Hello.encode(1);
        let m2 = Message::EchoRequest(Bytes::from_static(b"x")).encode(2);
        let m3 = Message::BarrierRequest.encode(3);
        let mut stream = BytesMut::new();
        stream.extend_from_slice(&m1);
        stream.extend_from_slice(&m2);
        stream.extend_from_slice(&m3[..4]); // partial third message
        let msgs = decode_stream(&mut stream).unwrap();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0], (1, Message::Hello));
        assert_eq!(stream.len(), 4, "partial message must remain buffered");
        stream.extend_from_slice(&m3[4..]);
        let msgs = decode_stream(&mut stream).unwrap();
        assert_eq!(msgs, vec![(3, Message::BarrierRequest)]);
        assert!(stream.is_empty());
    }

    #[test]
    fn rejects_wrong_version_except_hello() {
        let mut wire = BytesMut::from(&Message::BarrierRequest.encode(1)[..]);
        wire[0] = 0x01;
        assert_eq!(Message::decode(&wire).unwrap_err(), Error::BadVersion(1));
        let mut hello = BytesMut::from(&Message::Hello.encode(1)[..]);
        hello[0] = 0x05; // a 1.4 hello is tolerated during negotiation
        assert!(Message::decode(&hello).is_ok());
    }

    #[test]
    fn rejects_garbage_header() {
        assert_eq!(Message::decode(&[1, 2, 3]).unwrap_err(), Error::Truncated);
        // length field below 8
        let bad = [OFP_VERSION, 0, 0, 4, 0, 0, 0, 0];
        assert!(matches!(
            Message::decode(&bad).unwrap_err(),
            Error::Malformed(_)
        ));
    }

    #[test]
    fn unknown_type_is_reported() {
        let mut wire = BytesMut::new();
        wire.put_u8(OFP_VERSION);
        wire.put_u8(77);
        wire.put_u16(8);
        wire.put_u32(0);
        assert_eq!(
            Message::decode(&wire).unwrap_err(),
            Error::UnsupportedType(77)
        );
    }
}
