//! OpenFlow 1.3 instructions (§7.2.4).

use bytes::{Buf, BufMut, BytesMut};

use crate::action::Action;
use crate::{Error, Result};

/// An instruction attached to a flow entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Continue matching in a later table.
    GotoTable(u8),
    /// Update the pipeline metadata register:
    /// `metadata = (metadata & !mask) | (value & mask)`.
    WriteMetadata {
        /// New metadata bits.
        metadata: u64,
        /// Which bits to write.
        mask: u64,
    },
    /// Merge actions into the action set.
    WriteActions(Vec<Action>),
    /// Execute actions immediately, in order.
    ApplyActions(Vec<Action>),
    /// Empty the action set.
    ClearActions,
    /// Send the packet through a meter first.
    Meter(u32),
}

impl Instruction {
    /// Encoded length (already 8-byte aligned).
    pub fn encoded_len(&self) -> usize {
        match self {
            Instruction::GotoTable(_) => 8,
            Instruction::WriteMetadata { .. } => 24,
            Instruction::WriteActions(a) | Instruction::ApplyActions(a) => 8 + Action::list_len(a),
            Instruction::ClearActions => 8,
            Instruction::Meter(_) => 8,
        }
    }

    /// Append the wire form to `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        match self {
            Instruction::GotoTable(t) => {
                out.put_u16(1);
                out.put_u16(8);
                out.put_u8(*t);
                out.put_bytes(0, 3);
            }
            Instruction::WriteMetadata { metadata, mask } => {
                out.put_u16(2);
                out.put_u16(24);
                out.put_bytes(0, 4);
                out.put_u64(*metadata);
                out.put_u64(*mask);
            }
            Instruction::WriteActions(actions) => {
                out.put_u16(3);
                out.put_u16(self.encoded_len() as u16);
                out.put_bytes(0, 4);
                Action::encode_list(actions, out);
            }
            Instruction::ApplyActions(actions) => {
                out.put_u16(4);
                out.put_u16(self.encoded_len() as u16);
                out.put_bytes(0, 4);
                Action::encode_list(actions, out);
            }
            Instruction::ClearActions => {
                out.put_u16(5);
                out.put_u16(8);
                out.put_bytes(0, 4);
            }
            Instruction::Meter(id) => {
                out.put_u16(6);
                out.put_u16(8);
                out.put_u32(*id);
            }
        }
    }

    /// Decode one instruction from the front of `buf`.
    pub fn decode(buf: &mut &[u8]) -> Result<Instruction> {
        if buf.len() < 4 {
            return Err(Error::Truncated);
        }
        let ty = buf.get_u16();
        let len = usize::from(buf.get_u16());
        if len < 8 {
            return Err(Error::Malformed("instruction too short"));
        }
        let body_len = len - 4;
        if buf.len() < body_len {
            return Err(Error::Truncated);
        }
        let mut body = &buf[..body_len];
        let insn = match ty {
            1 => {
                if body.len() < 4 {
                    return Err(Error::Truncated);
                }
                Instruction::GotoTable(body.get_u8())
            }
            2 => {
                if body.len() < 20 {
                    return Err(Error::Truncated);
                }
                body.advance(4);
                let metadata = body.get_u64();
                let mask = body.get_u64();
                Instruction::WriteMetadata { metadata, mask }
            }
            3 | 4 => {
                if body.len() < 4 {
                    return Err(Error::Truncated);
                }
                body.advance(4);
                let actions_len = body.len();
                let actions = Action::decode_list(&mut body, actions_len)?;
                if ty == 3 {
                    Instruction::WriteActions(actions)
                } else {
                    Instruction::ApplyActions(actions)
                }
            }
            5 => Instruction::ClearActions,
            6 => {
                if body.len() < 4 {
                    return Err(Error::Truncated);
                }
                Instruction::Meter(body.get_u32())
            }
            _ => return Err(Error::Malformed("unknown instruction type")),
        };
        buf.advance(body_len);
        Ok(insn)
    }

    /// Encode a list of instructions.
    pub fn encode_list(insns: &[Instruction], out: &mut BytesMut) {
        for i in insns {
            i.encode(out);
        }
    }

    /// Total encoded length of a list.
    pub fn list_len(insns: &[Instruction]) -> usize {
        insns.iter().map(Instruction::encoded_len).sum()
    }

    /// Decode exactly `len` bytes of instructions.
    pub fn decode_list(buf: &mut &[u8], len: usize) -> Result<Vec<Instruction>> {
        if buf.len() < len {
            return Err(Error::Truncated);
        }
        let mut body = &buf[..len];
        let mut out = Vec::new();
        while !body.is_empty() {
            out.push(Instruction::decode(&mut body)?);
        }
        buf.advance(len);
        Ok(out)
    }

    /// Convenience: a single apply-actions instruction.
    pub fn apply(actions: Vec<Action>) -> Vec<Instruction> {
        vec![Instruction::ApplyActions(actions)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(i: &Instruction) -> Instruction {
        let mut buf = BytesMut::new();
        i.encode(&mut buf);
        assert_eq!(buf.len(), i.encoded_len());
        let mut s = &buf[..];
        let out = Instruction::decode(&mut s).unwrap();
        assert!(s.is_empty());
        out
    }

    #[test]
    fn all_instructions_round_trip() {
        for i in [
            Instruction::GotoTable(3),
            Instruction::WriteMetadata {
                metadata: 0xdead,
                mask: 0xffff,
            },
            Instruction::WriteActions(vec![Action::output(1)]),
            Instruction::ApplyActions(vec![Action::PopVlan, Action::output(2)]),
            Instruction::ApplyActions(vec![]),
            Instruction::ClearActions,
            Instruction::Meter(7),
        ] {
            assert_eq!(round_trip(&i), i);
        }
    }

    #[test]
    fn list_round_trip() {
        let list = vec![
            Instruction::ApplyActions(vec![Action::set_vlan_vid(101)]),
            Instruction::GotoTable(1),
        ];
        let mut buf = BytesMut::new();
        Instruction::encode_list(&list, &mut buf);
        let mut s = &buf[..];
        assert_eq!(Instruction::decode_list(&mut s, buf.len()).unwrap(), list);
    }

    #[test]
    fn unknown_type_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(99);
        buf.put_u16(8);
        buf.put_u32(0);
        let mut s = &buf[..];
        assert!(Instruction::decode(&mut s).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let mut s = &[0u8, 2, 0, 24, 0][..];
        assert_eq!(Instruction::decode(&mut s).unwrap_err(), Error::Truncated);
    }
}
