//! The controller core: channel management and app dispatch.

use bytes::{Bytes, BytesMut};
use std::any::Any;
use std::collections::HashMap;

use netpkt::FlowKey;
use netsim::{Node, NodeCtx, NodeId, PortId};
use openflow::message::{
    decode_stream, ControllerRole, FlowMod, Message, MultipartReq, PortDesc, Xid,
};
use openflow::oxm::OxmField;
use openflow::{Action, NO_BUFFER};

/// A packet-in, pre-parsed for apps.
#[derive(Debug)]
pub struct PacketInEvent {
    /// Ingress port (from the match's IN_PORT).
    pub in_port: u32,
    /// Why it came up.
    pub reason: openflow::message::PacketInReason,
    /// The frame (possibly truncated to miss_send_len).
    pub data: Bytes,
    /// Extracted flow key of the frame.
    pub key: FlowKey,
}

impl PacketInEvent {
    /// Parse the punted frame as an ARP *request*, if that is what it
    /// is — the shared gate of every proxy-ARP app (VIP proxying, the
    /// fabric ARP proxy). Returns `None` for anything else, including
    /// malformed ARP.
    pub fn arp_request(&self) -> Option<netpkt::ArpRepr> {
        if self.key.eth_type != 0x0806 || self.key.arp_op != netpkt::ArpOp::Request.value() {
            return None;
        }
        let eth = netpkt::EthernetFrame::new_unchecked(&self.data[..]);
        let arp = netpkt::ArpPacket::new_checked(eth.payload()).ok()?;
        netpkt::ArpRepr::parse(&arp).ok()
    }
}

/// Per-switch connection state.
#[derive(Debug)]
pub struct SwitchState {
    /// Simulator node of the switch.
    pub node: NodeId,
    /// Datapath id (0 until features arrive).
    pub dpid: u64,
    /// Ports reported by PORT_DESC.
    pub ports: Vec<PortDesc>,
    /// True once features + port-desc completed.
    pub ready: bool,
    rx: BytesMut,
    /// Keepalive probes sent to this switch, awaiting their echo reply.
    echo_pending: Vec<Xid>,
    /// State-mutating frames (flow/group mods) sent but not yet covered
    /// by a BARRIER_REPLY, tagged with the covering barrier's xid. The
    /// periodic tick re-sends whatever lingers here, so rule pushes
    /// survive a lossy control channel.
    inflight: Vec<(Xid, Bytes)>,
}

impl SwitchState {
    fn new(node: NodeId) -> SwitchState {
        SwitchState {
            node,
            dpid: 0,
            ports: Vec::new(),
            ready: false,
            rx: BytesMut::new(),
            echo_pending: Vec::new(),
            inflight: Vec::new(),
        }
    }

    /// Forget everything tied to the current connection (a reconnecting
    /// switch starts from a clean slate; apps re-push state on ready).
    fn reset_session(&mut self) {
        self.ready = false;
        self.echo_pending.clear();
        self.inflight.clear();
    }
}

/// What apps use to talk to one switch: queues messages for sending when
/// the callback returns.
pub struct SwitchHandle<'a> {
    /// The switch's datapath id.
    pub dpid: u64,
    /// The switch's ports.
    pub ports: &'a [PortDesc],
    xid: &'a mut Xid,
    queue: &'a mut Vec<Bytes>,
    durable: &'a mut Vec<Bytes>,
    flow_mods_sent: &'a mut u64,
}

impl SwitchHandle<'_> {
    fn next_xid(&mut self) -> Xid {
        *self.xid += 1;
        *self.xid
    }

    /// Send a raw message.
    pub fn send(&mut self, msg: Message) {
        let x = self.next_xid();
        self.queue.push(msg.encode(x));
    }

    /// Send a state-mutating message that must survive channel loss: it is
    /// tracked until a barrier reply confirms the switch applied it, and
    /// re-sent by the controller tick otherwise.
    fn send_durable(&mut self, msg: Message) {
        let x = self.next_xid();
        let b = msg.encode(x);
        self.queue.push(b.clone());
        self.durable.push(b);
    }

    /// Send a flow-mod.
    pub fn flow_mod(&mut self, fm: FlowMod) {
        *self.flow_mods_sent += 1;
        self.send_durable(Message::FlowMod(fm));
    }

    /// Send a group-mod.
    pub fn group_mod(
        &mut self,
        command: openflow::group::GroupModCommand,
        type_: openflow::GroupType,
        group_id: u32,
        buckets: Vec<openflow::Bucket>,
    ) {
        self.send_durable(Message::GroupMod {
            command,
            type_,
            group_id,
            buckets,
        });
    }

    /// Emit a frame out of a specific port (or FLOOD).
    pub fn packet_out(&mut self, out_port: u32, data: Bytes) {
        self.send(Message::PacketOut {
            buffer_id: NO_BUFFER,
            in_port: openflow::port_no::CONTROLLER,
            actions: vec![Action::output(out_port)],
            data,
        });
    }

    /// Flood a punted frame, preserving its original ingress port so the
    /// switch excludes it. Flooding with a fake ingress (e.g. CONTROLLER)
    /// would mirror the frame back out of the port it came from; one hop
    /// upstream that re-teaches bridges the source MAC on the wrong port
    /// and black-holes the host ("MAC flapping").
    pub fn packet_out_flood(&mut self, in_port: u32, data: Bytes) {
        self.send(Message::PacketOut {
            buffer_id: NO_BUFFER,
            in_port,
            actions: vec![Action::output(openflow::port_no::FLOOD)],
            data,
        });
    }

    /// Emit a frame with arbitrary actions.
    pub fn packet_out_actions(&mut self, in_port: u32, actions: Vec<Action>, data: Bytes) {
        self.send(Message::PacketOut {
            buffer_id: NO_BUFFER,
            in_port,
            actions,
            data,
        });
    }

    /// Request flow statistics (reply arrives via `on_stats`).
    pub fn request_flow_stats(&mut self) {
        self.send(Message::MultipartRequest(MultipartReq::Flow {
            table_id: 0xff,
            out_port: openflow::port_no::ANY,
            out_group: openflow::group_no::ANY,
            cookie: 0,
            cookie_mask: 0,
            match_: openflow::Match::any(),
        }));
    }

    /// Send a barrier.
    pub fn barrier(&mut self) {
        self.send(Message::BarrierRequest);
    }
}

/// A free-standing [`SwitchHandle`] over caller-owned buffers, for app
/// unit tests that want to drive callbacks without a running network.
#[cfg(test)]
pub(crate) fn test_handle<'a>(
    dpid: u64,
    xid: &'a mut Xid,
    queue: &'a mut Vec<Bytes>,
    flow_mods_sent: &'a mut u64,
) -> SwitchHandle<'a> {
    SwitchHandle {
        dpid,
        ports: &[],
        xid,
        queue,
        // App tests assert on `queue` only; the durability tracking is a
        // node-level concern, so a throwaway (leaked, test-only) buffer
        // keeps the helper's signature stable.
        durable: Box::leak(Box::default()),
        flow_mods_sent,
    }
}

/// What an app decided about a packet-in it was offered.
///
/// Apps are dispatched in registration order; the first app to return
/// [`PacketInVerdict::Consumed`] ends the chain for that event. This is
/// how a specific app (e.g. the fabric ARP proxy) can answer a punted
/// frame *instead of* the general-purpose apps behind it — without the
/// verdict, a learning switch later in the chain would still flood the
/// frame the proxy already answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PacketInVerdict {
    /// Not (or only partially) handled: offer the event to the next app.
    #[default]
    Continue,
    /// Fully handled: apps later in the chain never see the event.
    Consumed,
}

/// A controller application.
///
/// Apps must be [`Send`] because the controller node (like every
/// [`netsim::Node`]) can be moved onto a worker thread by the sharded
/// simulator; only one thread ever touches an app at a time.
pub trait App: 'static + Send {
    /// Name for diagnostics.
    fn name(&self) -> &str;

    /// The switch finished its handshake (features + ports known).
    fn on_switch_ready(&mut self, _sw: &mut SwitchHandle) {}

    /// A packet was punted to the controller. Return
    /// [`PacketInVerdict::Consumed`] to stop the event from reaching
    /// apps later in the chain.
    fn on_packet_in(&mut self, _sw: &mut SwitchHandle, _ev: &PacketInEvent) -> PacketInVerdict {
        PacketInVerdict::Continue
    }

    /// The switch stopped answering keepalive probes and was declared
    /// down; its state will be rebuilt on the next handshake.
    fn on_switch_down(&mut self, _dpid: u64) {}

    /// A flow entry was removed.
    fn on_flow_removed(&mut self, _sw: &mut SwitchHandle, _msg: &Message) {}

    /// A multipart (statistics) reply arrived.
    fn on_stats(&mut self, _sw: &mut SwitchHandle, _msg: &Message) {}

    /// Periodic tick from the controller (1 s period), for apps that need
    /// to reissue rules or poll stats.
    fn on_tick(&mut self, _sw: &mut SwitchHandle) {}

    /// Downcast support for tests and experiment drivers.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

const TOKEN_TICK: u64 = 1;
const TICK: netsim::SimTime = netsim::SimTime::from_secs(1);
/// Keepalive probes a switch may leave unanswered (one sent per tick)
/// before the controller declares it down.
const MAX_MISSED_ECHOES: usize = 3;

/// The controller as a simulator node.
pub struct ControllerNode {
    name: String,
    apps: Vec<Box<dyn App>>,
    switches: HashMap<NodeId, SwitchState>,
    xid: Xid,
    role: ControllerRole,
    generation_id: u64,
    packet_ins: u64,
    flow_mods_sent: u64,
    errors_seen: u64,
    retransmits: u64,
    switch_deaths: u64,
    promotions: u64,
    stale_echo_replies: u64,
    slave_ignored: u64,
}

impl ControllerNode {
    /// A controller running the given apps (dispatched in order).
    pub fn new(name: impl Into<String>, apps: Vec<Box<dyn App>>) -> ControllerNode {
        ControllerNode {
            name: name.into(),
            apps,
            switches: HashMap::new(),
            xid: 0,
            role: ControllerRole::Equal,
            generation_id: 0,
            packet_ins: 0,
            flow_mods_sent: 0,
            errors_seen: 0,
            retransmits: 0,
            switch_deaths: 0,
            promotions: 0,
            stale_echo_replies: 0,
            slave_ignored: 0,
        }
    }

    /// Builder-style role override. A `Master` asserts its role (with
    /// `generation_id`) on every switch that completes a handshake; a
    /// `Slave` is a warm standby: it ignores packet-ins and self-promotes
    /// to master the moment a switch dials it — in this model a switch
    /// only dials a backup after declaring its master dead, so an
    /// incoming handshake *is* the fail-over signal.
    pub fn with_role(mut self, role: ControllerRole, generation_id: u64) -> Self {
        self.role = role;
        self.generation_id = generation_id;
        self
    }

    /// Runtime variant of [`Self::with_role`], for controllers already
    /// placed in a network.
    pub fn set_role(&mut self, role: ControllerRole, generation_id: u64) {
        self.role = role;
        self.generation_id = generation_id;
    }

    /// The controller's current role.
    pub fn role(&self) -> ControllerRole {
        self.role
    }

    /// Times a slave self-promoted to master.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Frames re-sent because no barrier reply confirmed them.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Switches declared down after unanswered keepalive probes.
    pub fn switch_deaths(&self) -> u64 {
        self.switch_deaths
    }

    /// Echo replies whose xid matched no outstanding probe.
    pub fn stale_echo_replies(&self) -> u64 {
        self.stale_echo_replies
    }

    /// Packet-ins ignored while in the slave role.
    pub fn slave_ignored(&self) -> u64 {
        self.slave_ignored
    }

    /// Connected switch node ids in deterministic (id) order. All bulk
    /// sends iterate in this order: HashMap order varies between map
    /// instances, and send order feeds the simulator's event sequence
    /// numbers, so iterating the map directly would break bit-identical
    /// replay.
    fn switch_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.switches.keys().copied().collect();
        nodes.sort_by_key(|n| n.0);
        nodes
    }

    /// Packet-ins received so far.
    pub fn packet_ins(&self) -> u64 {
        self.packet_ins
    }

    /// Flow-mods sent so far.
    pub fn flow_mods_sent(&self) -> u64 {
        self.flow_mods_sent
    }

    /// OpenFlow errors received.
    pub fn errors_seen(&self) -> u64 {
        self.errors_seen
    }

    /// Connected switch state (for assertions).
    pub fn switch(&self, node: NodeId) -> Option<&SwitchState> {
        self.switches.get(&node)
    }

    /// Number of switches that completed the handshake (features +
    /// port-desc). A fabric controller serves one datapath per pod, plus
    /// a soft spine when the interconnect has one.
    pub fn ready_switches(&self) -> usize {
        self.switches.values().filter(|s| s.ready).count()
    }

    /// Datapath ids of all ready switches, sorted (for assertions over
    /// multi-pod fabrics).
    pub fn ready_dpids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .switches
            .values()
            .filter(|s| s.ready)
            .map(|s| s.dpid)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Typed access to an app (for runtime policy updates).
    pub fn app_mut<T: App>(&mut self) -> Option<&mut T> {
        self.apps
            .iter_mut()
            .find_map(|a| a.as_any_mut().downcast_mut::<T>())
    }

    /// Run `f` against every connected, ready switch — used with
    /// [`netsim::Network::with_node_ctx`] to push policy changes mid-run.
    pub fn for_each_switch(
        &mut self,
        ctx: &mut NodeCtx,
        mut f: impl FnMut(&mut Vec<Box<dyn App>>, &mut SwitchHandle),
    ) {
        let mut sends: Vec<(NodeId, Vec<Bytes>, Vec<Bytes>)> = Vec::new();
        for node in self.switch_nodes() {
            let st = &self.switches[&node];
            if !st.ready {
                continue;
            }
            let mut queue = Vec::new();
            let mut durable = Vec::new();
            let mut handle = SwitchHandle {
                dpid: st.dpid,
                ports: &st.ports,
                xid: &mut self.xid,
                queue: &mut queue,
                durable: &mut durable,
                flow_mods_sent: &mut self.flow_mods_sent,
            };
            f(&mut self.apps, &mut handle);
            sends.push((node, queue, durable));
        }
        for (node, queue, durable) in sends {
            self.flush(node, queue, durable, ctx);
        }
    }

    /// Send a queue of frames to `node`; if any were state-mutating,
    /// append a barrier and track them until its reply confirms delivery.
    fn flush(
        &mut self,
        node: NodeId,
        mut queue: Vec<Bytes>,
        durable: Vec<Bytes>,
        ctx: &mut NodeCtx,
    ) {
        if !durable.is_empty() {
            self.xid += 1;
            let b = self.xid;
            queue.push(Message::BarrierRequest.encode(b));
            if let Some(st) = self.switches.get_mut(&node) {
                st.inflight.extend(durable.into_iter().map(|f| (b, f)));
            }
        }
        Self::send_batch(node, queue, ctx);
    }

    /// Send `frames` as one coalesced control-channel message. Fate
    /// sharing is load-bearing on lossy channels: the trailing barrier
    /// of a flush must be dropped or delivered *together with* the
    /// state it confirms — sent separately, a dropped flow mod whose
    /// barrier survived would confirm state the switch never applied.
    fn send_batch(node: NodeId, mut frames: Vec<Bytes>, ctx: &mut NodeCtx) {
        match frames.len() {
            0 => {}
            1 => ctx.ctrl_send(node, frames.pop().expect("len checked")),
            _ => {
                let mut buf = Vec::with_capacity(frames.iter().map(Bytes::len).sum());
                for f in &frames {
                    buf.extend_from_slice(f);
                }
                ctx.ctrl_send(node, Bytes::from(buf));
            }
        }
    }

    /// Offer an event to every app in chain order; an app returning
    /// [`PacketInVerdict::Consumed`] ends dispatch (non-packet-in
    /// callbacks simply return `Continue`).
    fn dispatch_to_apps(
        apps: &mut [Box<dyn App>],
        st: &SwitchState,
        xid: &mut Xid,
        flow_mods_sent: &mut u64,
        queue: &mut Vec<Bytes>,
        durable: &mut Vec<Bytes>,
        mut f: impl FnMut(&mut dyn App, &mut SwitchHandle) -> PacketInVerdict,
    ) {
        for app in apps.iter_mut() {
            let mut handle = SwitchHandle {
                dpid: st.dpid,
                ports: &st.ports,
                xid,
                queue,
                durable,
                flow_mods_sent,
            };
            if f(app.as_mut(), &mut handle) == PacketInVerdict::Consumed {
                break;
            }
        }
    }
}

impl Node for ControllerNode {
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        ctx.schedule(TICK, TOKEN_TICK);
    }

    fn on_packet(&mut self, _port: PortId, _frame: Bytes, _ctx: &mut NodeCtx) {
        // Controllers are out-of-band in this model.
    }

    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx) {
        if token != TOKEN_TICK {
            return;
        }
        self.for_each_switch(ctx, |apps, handle| {
            for app in apps.iter_mut() {
                app.on_tick(handle);
            }
        });
        // Handshake re-drive: a switch whose FEATURES_REPLY or
        // PORT_DESC reply was lost sits mid-handshake forever — HELLOs
        // crossed and echoes flow, so neither side sees a dead link and
        // nobody redials. Re-ask for the missing step each tick; both
        // replies are idempotent, so a duplicate answer is harmless.
        for node in self.switch_nodes() {
            let st = self.switches.get(&node).expect("listed node exists");
            if st.ready {
                continue;
            }
            self.xid += 1;
            let msg = if st.dpid == 0 {
                Message::FeaturesRequest.encode(self.xid)
            } else {
                Message::MultipartRequest(MultipartReq::PortDesc).encode(self.xid)
            };
            ctx.ctrl_send(node, msg);
        }
        // Re-sync: anything pushed but never barrier-acked (lost on the
        // channel, or acked by a reply that was itself lost) is re-sent
        // under a fresh barrier. Flow/group mods are idempotent, so a
        // spurious re-send converges to the same tables.
        for node in self.switch_nodes() {
            let st = self.switches.get_mut(&node).expect("listed node exists");
            if !st.ready || st.inflight.is_empty() {
                continue;
            }
            self.xid += 1;
            let b = self.xid;
            let mut frames = Vec::with_capacity(st.inflight.len());
            for e in st.inflight.iter_mut() {
                frames.push(e.1.clone());
                e.0 = b;
            }
            self.retransmits += frames.len() as u64;
            frames.push(Message::BarrierRequest.encode(b));
            Self::send_batch(node, frames, ctx);
        }
        // Keepalive: probe every ready switch; a switch that has left
        // MAX_MISSED_ECHOES probes unanswered is declared down and its
        // session state dropped — the next handshake rebuilds it.
        let mut dead = Vec::new();
        for node in self.switch_nodes() {
            let st = self.switches.get_mut(&node).expect("listed node exists");
            if !st.ready {
                continue;
            }
            if st.echo_pending.len() >= MAX_MISSED_ECHOES {
                dead.push(node);
                continue;
            }
            self.xid += 1;
            st.echo_pending.push(self.xid);
            ctx.ctrl_send(node, Message::EchoRequest(Bytes::new()).encode(self.xid));
        }
        for node in dead {
            let st = self.switches.get_mut(&node).expect("listed node exists");
            let dpid = st.dpid;
            st.reset_session();
            self.switch_deaths += 1;
            for app in self.apps.iter_mut() {
                app.on_switch_down(dpid);
            }
        }
        ctx.schedule(TICK, TOKEN_TICK);
    }

    fn on_ctrl(&mut self, from: NodeId, data: Bytes, ctx: &mut NodeCtx) {
        let st = self
            .switches
            .entry(from)
            .or_insert_with(|| SwitchState::new(from));
        st.rx.extend_from_slice(&data);
        let msgs = match decode_stream(&mut st.rx) {
            Ok(m) => m,
            Err(_) => {
                st.rx.clear();
                return;
            }
        };
        let mut queue: Vec<Bytes> = Vec::new();
        let mut durable: Vec<Bytes> = Vec::new();
        for (xid, msg) in msgs {
            match msg {
                Message::Hello => {
                    // A HELLO on an existing session is a reconnect: the
                    // switch starts from scratch, so does our view of it.
                    // Apps rebuild its state on `on_switch_ready`.
                    self.switches.get_mut(&from).unwrap().reset_session();
                    // A slave being dialed means the switches gave up on
                    // their master: promote and assert the role below.
                    if self.role == ControllerRole::Slave {
                        self.role = ControllerRole::Master;
                        self.promotions += 1;
                    }
                    self.xid += 1;
                    queue.push(Message::Hello.encode(self.xid));
                    self.xid += 1;
                    queue.push(Message::FeaturesRequest.encode(self.xid));
                }
                Message::EchoRequest(d) => {
                    // Echo replies must mirror the request xid — the
                    // switch matches them against its outstanding probes
                    // and discards replies with unknown xids as stale.
                    queue.push(Message::EchoReply(d).encode(xid));
                }
                Message::EchoReply(_) => {
                    let st = self.switches.get_mut(&from).unwrap();
                    if st.echo_pending.contains(&xid) {
                        st.echo_pending.retain(|&x| x > xid);
                    } else {
                        self.stale_echo_replies += 1;
                    }
                }
                Message::BarrierReply => {
                    // Everything covered by this barrier (or an earlier
                    // one) reached the switch; stop tracking it.
                    let st = self.switches.get_mut(&from).unwrap();
                    st.inflight.retain(|(b, _)| *b > xid);
                }
                Message::FeaturesReply { datapath_id, .. } => {
                    let st = self.switches.get_mut(&from).unwrap();
                    st.dpid = datapath_id;
                    self.xid += 1;
                    queue.push(Message::MultipartRequest(MultipartReq::PortDesc).encode(self.xid));
                }
                Message::MultipartReply(openflow::message::MultipartRes::PortDesc(ports)) => {
                    let st = self.switches.get_mut(&from).unwrap();
                    st.ports = ports;
                    st.ready = true;
                    if self.role == ControllerRole::Master {
                        self.xid += 1;
                        queue.push(
                            Message::RoleRequest {
                                role: ControllerRole::Master,
                                generation_id: self.generation_id,
                            }
                            .encode(self.xid),
                        );
                    }
                    let st = self.switches.get(&from).unwrap();
                    Self::dispatch_to_apps(
                        &mut self.apps,
                        st,
                        &mut self.xid,
                        &mut self.flow_mods_sent,
                        &mut queue,
                        &mut durable,
                        |app, h| {
                            app.on_switch_ready(h);
                            PacketInVerdict::Continue
                        },
                    );
                }
                Message::PacketIn {
                    reason,
                    match_,
                    data,
                    ..
                } => {
                    self.packet_ins += 1;
                    if self.role == ControllerRole::Slave {
                        // Slaves are warm standbys: they watch but must
                        // not program switches another master owns.
                        self.slave_ignored += 1;
                        continue;
                    }
                    let in_port = match_
                        .fields()
                        .iter()
                        .find_map(|f| match f {
                            OxmField::InPort(p) => Some(*p),
                            _ => None,
                        })
                        .unwrap_or(0);
                    let ev = PacketInEvent {
                        in_port,
                        reason,
                        key: FlowKey::extract_lossy(in_port, &data),
                        data,
                    };
                    let st = self.switches.get(&from).unwrap();
                    Self::dispatch_to_apps(
                        &mut self.apps,
                        st,
                        &mut self.xid,
                        &mut self.flow_mods_sent,
                        &mut queue,
                        &mut durable,
                        |app, h| app.on_packet_in(h, &ev),
                    );
                }
                m @ Message::FlowRemoved { .. } => {
                    let st = self.switches.get(&from).unwrap();
                    Self::dispatch_to_apps(
                        &mut self.apps,
                        st,
                        &mut self.xid,
                        &mut self.flow_mods_sent,
                        &mut queue,
                        &mut durable,
                        |app, h| {
                            app.on_flow_removed(h, &m);
                            PacketInVerdict::Continue
                        },
                    );
                }
                m @ Message::MultipartReply(_) => {
                    let st = self.switches.get(&from).unwrap();
                    Self::dispatch_to_apps(
                        &mut self.apps,
                        st,
                        &mut self.xid,
                        &mut self.flow_mods_sent,
                        &mut queue,
                        &mut durable,
                        |app, h| {
                            app.on_stats(h, &m);
                            PacketInVerdict::Continue
                        },
                    );
                }
                Message::RoleReply { .. } => {}
                Message::Error { ty, .. } => {
                    self.errors_seen += 1;
                    if ty == 11 {
                        // ROLE_REQUEST_FAILED/STALE: a newer master holds
                        // this switch. Step down.
                        self.role = ControllerRole::Slave;
                    }
                }
                _ => {}
            }
        }
        self.flush(from, queue, durable, ctx);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::message::PacketInReason;

    /// First app in the chain: returns a configured verdict.
    struct Gate {
        verdict: PacketInVerdict,
        seen: u64,
    }
    impl App for Gate {
        fn name(&self) -> &str {
            "gate"
        }
        fn on_packet_in(&mut self, _sw: &mut SwitchHandle, _ev: &PacketInEvent) -> PacketInVerdict {
            self.seen += 1;
            self.verdict
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Second app in the chain: counts what reaches it.
    struct Observer {
        seen: u64,
    }
    impl App for Observer {
        fn name(&self) -> &str {
            "observer"
        }
        fn on_packet_in(&mut self, _sw: &mut SwitchHandle, _ev: &PacketInEvent) -> PacketInVerdict {
            self.seen += 1;
            PacketInVerdict::Continue
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Feed one encoded PACKET_IN through `on_ctrl` and report how many
    /// events each app in the chain saw.
    fn run_chain(verdict: PacketInVerdict) -> (u64, u64) {
        let mut net = netsim::Network::new(1);
        let ctrl = net.add_node(ControllerNode::new(
            "ctrl",
            vec![
                Box::new(Gate { verdict, seen: 0 }),
                Box::new(Observer { seen: 0 }),
            ],
        ));
        let pi = Message::PacketIn {
            buffer_id: openflow::NO_BUFFER,
            total_len: 1,
            reason: PacketInReason::NoMatch,
            table_id: 0,
            cookie: 0,
            match_: openflow::Match::new().in_port(1),
            data: Bytes::from_static(b"x"),
        }
        .encode(1);
        net.with_node_ctx::<ControllerNode, _>(ctrl, |c, ctx| {
            c.on_ctrl(ctx.self_id(), pi, ctx);
        });
        let c = net.node_mut::<ControllerNode>(ctrl);
        let gate = c.app_mut::<Gate>().unwrap().seen;
        let observer = c.app_mut::<Observer>().unwrap().seen;
        (gate, observer)
    }

    #[test]
    fn consumed_packet_ins_stop_the_app_chain() {
        assert_eq!(run_chain(PacketInVerdict::Continue), (1, 1));
        assert_eq!(
            run_chain(PacketInVerdict::Consumed),
            (1, 0),
            "a consumed event must never reach later apps"
        );
    }

    /// Records every control message it receives.
    struct Recorder {
        frames: Vec<Bytes>,
    }
    impl Node for Recorder {
        fn on_packet(&mut self, _port: PortId, _frame: Bytes, _ctx: &mut NodeCtx) {}
        fn on_ctrl(&mut self, _from: NodeId, data: Bytes, _ctx: &mut NodeCtx) {
            self.frames.push(data);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn echo_reply_mirrors_the_request_xid() {
        // A liveness probe is only answered if the reply carries the
        // *probe's* xid — a reply under a fresh xid would never match
        // the prober's pending set and read as a dead peer.
        let mut net = netsim::Network::new(1);
        let ctrl = net.add_node(ControllerNode::new("ctrl", vec![]));
        let sw = net.add_node(Recorder { frames: Vec::new() });
        net.with_node_ctx::<ControllerNode, _>(ctrl, |c, ctx| {
            c.on_ctrl(
                sw,
                Message::EchoRequest(Bytes::from_static(b"ping")).encode(77),
                ctx,
            );
        });
        net.run_until(netsim::SimTime::from_millis(1));
        let mut rx = BytesMut::new();
        for f in &net.node_ref::<Recorder>(sw).frames {
            rx.extend_from_slice(f);
        }
        let msgs = decode_stream(&mut rx).expect("well-formed replies");
        assert!(
            msgs.iter()
                .any(|(xid, m)| *xid == 77 && *m == Message::EchoReply(Bytes::from_static(b"ping"))),
            "echo reply must mirror xid and payload, got {msgs:?}"
        );
    }

    #[test]
    fn stale_echo_replies_are_counted_not_acked() {
        // A reply whose xid matches no outstanding probe (e.g. from a
        // previous session, delayed by the channel) must not feed the
        // liveness state machine.
        let mut net = netsim::Network::new(1);
        let ctrl = net.add_node(ControllerNode::new("ctrl", vec![]));
        let sw = net.add_node(Recorder { frames: Vec::new() });
        net.with_node_ctx::<ControllerNode, _>(ctrl, |c, ctx| {
            c.on_ctrl(sw, Message::EchoReply(Bytes::new()).encode(9999), ctx);
        });
        let c = net.node_ref::<ControllerNode>(ctrl);
        assert_eq!(c.stale_echo_replies(), 1);
    }
}
