//! Per-prefix L3 routing — graduating the pod edge from L2 fabric to
//! edge router.
//!
//! [`crate::apps::ArpProxy`] keeps inter-pod traffic flowing with one
//! `eth_dst → output` rule *per host per datapath*: rule state grows as
//! O(hosts × pods), which is exactly the flow-table pressure a hybrid
//! deployment is trying to escape (HARMLESS §5 measures edge switches
//! by megaflow capacity, not host count). The fabric's addressing plan
//! (`10.<pod>.<hi>.<lo>`) makes the aggregation obvious: every remote
//! pod is one `/16`, the internet is one default route, and only the
//! *local* pod needs per-host granularity.
//!
//! This app installs that aggregated view as a three-stage pipeline on
//! each configured datapath:
//!
//! * **table 0** (shared with the L2 apps): one classifier rule at
//!   priority [`CLASSIFY_PRIORITY`] sends IPv4 to the NAT stage.
//!   ArpProxy's intra-pod `eth_dst` routes sit *above* it, so pod-local
//!   traffic stays pure L2 and never burns a TTL hop;
//! * **table 1** ([`NAT_TABLE`]): on gateway datapaths, traffic for the
//!   NAT's external address is reverse-translated
//!   ([`openflow::Action::Nat`] ingress) before routing; everything
//!   else falls through a priority-0 miss to the route stage;
//! * **table 2** ([`ROUTE_TABLE`]): longest-prefix-match over
//!   [`PrefixRoute`]s, encoded as masked `ipv4_dst` entries whose
//!   priority is `ROUTE_PRIORITY_BASE + prefix_len` — the datapath's
//!   priority order *is* the longest-match order. Each route
//!   decrements TTL (the datapath answers ICMP time-exceeded itself),
//!   rewrites the MAC pair for the next hop, optionally source-NATs
//!   (the gateway's default route), and outputs.
//!
//! Configuration is per-dpid and wholesale ([`Router::set_config`]):
//! the fabric layer computes each edge datapath's route list once from
//! the topology. Sync follows the ArpProxy watermark discipline —
//! deletes before adds, handshake rewinds the push watermark and skips
//! deletes into a fresh table.

use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use netpkt::{EtherType, MacAddr};
use openflow::message::FlowMod;
use openflow::{Action, Match, NatDir, OxmField};

use crate::node::{App, SwitchHandle};

/// Priority of the table-0 `eth_type == IPv4 → goto NAT stage`
/// classifier — above the table-miss punt (0) and the learning
/// switch's reactive rules (10 is shared: the classifier is matched
/// first only because learning rules also match `eth_dst`, which
/// pod-local frames hit at [`crate::apps::arp_proxy::ROUTE_PRIORITY`]
/// anyway), below ArpProxy's pod-local routes (20).
pub const CLASSIFY_PRIORITY: u16 = 10;
/// Priority of the table-0 guard *accept* on guarded uplinks (IPv4 to
/// this router's own MAC enters the routed pipeline).
pub const GUARD_ACCEPT_PRIORITY: u16 = 16;
/// Priority of the table-0 guard *drop* on guarded uplinks (all other
/// IPv4 from that port is a stray flood copy).
pub const GUARD_DROP_PRIORITY: u16 = 15;
/// Priority of the gateway's table-1 reverse-NAT rule.
pub const NAT_INGRESS_PRIORITY: u16 = 50;
/// Table-2 route priority is this base plus the prefix length, so a
/// /32 (72) always beats a /16 (56) beats the default route (40).
pub const ROUTE_PRIORITY_BASE: u16 = 40;
/// The NAT classification stage.
pub const NAT_TABLE: u8 = 1;
/// The longest-prefix-match routing stage.
pub const ROUTE_TABLE: u8 = 2;

/// One routing-table entry: send `prefix/len` out `out_port`, MACs
/// rewritten for the next hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixRoute {
    /// Network address (host bits ignored by the masked match).
    pub prefix: Ipv4Addr,
    /// Prefix length, 0 (default route) to 32 (host route).
    pub len: u8,
    /// Egress port on this datapath.
    pub out_port: u32,
    /// `eth_dst` rewrite: the next-hop router's MAC, or the host's own
    /// MAC for a directly-attached /32.
    pub next_hop: MacAddr,
    /// Source-NAT this route's traffic (the gateway's default route
    /// carries [`NatDir::Egress`]).
    pub nat: Option<NatDir>,
}

/// One datapath's routing personality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// The router's own MAC — `eth_src` of every routed frame.
    pub mac: MacAddr,
    /// The routing table, any order; priorities encode prefix length.
    pub routes: Vec<PrefixRoute>,
    /// When set, this datapath is a NAT gateway: traffic *to* this
    /// external address is reverse-translated before routing.
    pub nat_external: Option<Ipv4Addr>,
    /// Uplink in-ports to guard on flooding interconnects: a legacy
    /// spine floods frames for a MAC it has not learned, and a flood
    /// copy arriving at the wrong pod would be *routed back out* (the
    /// classifier matches any IPv4), looping until TTL death. Each
    /// guarded port accepts only IPv4 addressed to this router's own
    /// MAC and drops the rest.
    pub uplink_guards: Vec<u32>,
}

/// The per-prefix routing app. See the module docs.
pub struct Router {
    configs: HashMap<u64, (u64, RouterConfig)>,
    /// dpid → config version already installed there.
    pushed: HashMap<u64, u64>,
    routes_installed: u64,
    routes_retracted: u64,
}

impl Router {
    /// An empty router; give datapaths a personality with
    /// [`Router::set_config`] (the fabric layer does this when
    /// `FabricSpec` enables L3 routing).
    pub fn new() -> Router {
        Router {
            configs: HashMap::new(),
            pushed: HashMap::new(),
            routes_installed: 0,
            routes_retracted: 0,
        }
    }

    /// Install or replace `dpid`'s routing config. An already-connected
    /// datapath converges on the next tick (or an explicit
    /// [`Router::sync_switch`]): its previous routing rules are deleted
    /// first, then the new set installed — never both, never neither.
    /// Setting a config identical to the current one is a no-op, so
    /// callers can recompute-and-set wholesale without churning rules.
    pub fn set_config(&mut self, dpid: u64, config: RouterConfig) {
        let v = match self.configs.get(&dpid) {
            Some((v, c)) if *c == config => *v,
            Some((v, _)) => *v + 1,
            None => 1,
        };
        self.configs.insert(dpid, (v, config));
    }

    /// `dpid`'s current config, if any.
    pub fn config(&self, dpid: u64) -> Option<&RouterConfig> {
        self.configs.get(&dpid).map(|(_, c)| c)
    }

    /// Datapaths with a routing personality.
    pub fn configured(&self) -> usize {
        self.configs.len()
    }

    /// Flow-mod adds issued for routing state so far.
    pub fn routes_installed(&self) -> u64 {
        self.routes_installed
    }

    /// Flow-mod deletes issued for superseded routing state so far.
    pub fn routes_retracted(&self) -> u64 {
        self.routes_retracted
    }

    /// Rules the current config implies for one datapath: classifier +
    /// NAT-stage entries + one per route. What a test should count.
    pub fn rules_for(&self, dpid: u64) -> usize {
        self.config(dpid)
            .map(|c| {
                2 + usize::from(c.nat_external.is_some())
                    + 2 * c.uplink_guards.len()
                    + c.routes.len()
            })
            .unwrap_or(0)
    }

    /// Bring `sw`'s datapath up to date with its config *now*. Stale
    /// rules (an older config version) are deleted before the new set
    /// is installed; an up-to-date datapath is left untouched.
    pub fn sync_switch(&mut self, sw: &mut SwitchHandle) {
        let dpid = sw.dpid;
        let Some((version, config)) = self.configs.get(&dpid).cloned() else {
            return;
        };
        let installed = *self.pushed.get(&dpid).unwrap_or(&0);
        if installed == version {
            return;
        }
        if installed != 0 {
            self.retract(sw);
        }
        self.push(sw, &config);
        self.pushed.insert(dpid, version);
        sw.barrier();
    }

    /// Delete every rule this app owns on `sw`: the tables it has to
    /// itself wholesale, the shared table 0 by the classifier's exact
    /// match (a non-strict `eth_type` delete matches no `eth_dst`
    /// route and not the table-miss entry).
    fn retract(&mut self, sw: &mut SwitchHandle) {
        self.routes_retracted += 3;
        let ipv4 = Match::new().eth_type(EtherType::IPV4.0);
        sw.flow_mod(FlowMod::delete(0).match_(ipv4));
        sw.flow_mod(FlowMod::delete(NAT_TABLE));
        sw.flow_mod(FlowMod::delete(ROUTE_TABLE));
    }

    fn push(&mut self, sw: &mut SwitchHandle, config: &RouterConfig) {
        // Table 0: IPv4 enters the routed pipeline (unless a pod-local
        // eth_dst route above this priority short-circuits it).
        sw.flow_mod(
            FlowMod::add(0)
                .priority(CLASSIFY_PRIORITY)
                .match_(Match::new().eth_type(EtherType::IPV4.0))
                .goto(NAT_TABLE),
        );
        // Guarded uplinks (flooding interconnects): accept only IPv4
        // addressed to this router, drop stray flood copies that would
        // otherwise be reflected back into the fabric.
        for &port in &config.uplink_guards {
            self.routes_installed += 2;
            sw.flow_mod(
                FlowMod::add(0)
                    .priority(GUARD_ACCEPT_PRIORITY)
                    .match_(
                        Match::new()
                            .in_port(port)
                            .eth_dst(config.mac)
                            .eth_type(EtherType::IPV4.0),
                    )
                    .goto(NAT_TABLE),
            );
            sw.flow_mod(
                FlowMod::add(0)
                    .priority(GUARD_DROP_PRIORITY)
                    .match_(Match::new().in_port(port).eth_type(EtherType::IPV4.0))
                    .apply(vec![]), // match with no actions = drop
            );
        }
        // Table 1: reverse-NAT traffic addressed to the external IP on
        // gateways; everything falls through to the route stage.
        if let Some(ext) = config.nat_external {
            sw.flow_mod(
                FlowMod::add(NAT_TABLE)
                    .priority(NAT_INGRESS_PRIORITY)
                    .match_(Match::new().eth_type(EtherType::IPV4.0).ipv4_dst(ext))
                    .apply(vec![Action::Nat(NatDir::Ingress)])
                    .goto(ROUTE_TABLE),
            );
        }
        sw.flow_mod(FlowMod::add(NAT_TABLE).priority(0).goto(ROUTE_TABLE));
        self.routes_installed += 2 + u64::from(config.nat_external.is_some());
        // Table 2: the routing table. No table-miss entry: a routed
        // packet no prefix covers is dropped, as a router should.
        for r in &config.routes {
            let mask = prefix_mask(r.len);
            let m = if r.len == 0 {
                Match::new().eth_type(EtherType::IPV4.0)
            } else {
                Match::new()
                    .eth_type(EtherType::IPV4.0)
                    .ipv4_dst_masked(mask_addr(r.prefix, mask), Ipv4Addr::from(mask))
            };
            let mut actions = vec![Action::DecNwTtl];
            if let Some(dir) = r.nat {
                actions.push(Action::Nat(dir));
            }
            actions.push(Action::SetField(OxmField::EthSrc(config.mac, None)));
            actions.push(Action::SetField(OxmField::EthDst(r.next_hop, None)));
            actions.push(Action::output(r.out_port));
            self.routes_installed += 1;
            sw.flow_mod(
                FlowMod::add(ROUTE_TABLE)
                    .priority(ROUTE_PRIORITY_BASE + u16::from(r.len))
                    .match_(m)
                    .apply(actions),
            );
        }
    }
}

/// The 32-bit netmask for a prefix length (0 → `0.0.0.0`).
fn prefix_mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len.min(32)))
    }
}

fn mask_addr(a: Ipv4Addr, mask: u32) -> Ipv4Addr {
    Ipv4Addr::from(u32::from(a) & mask)
}

impl Default for Router {
    fn default() -> Self {
        Self::new()
    }
}

impl App for Router {
    fn name(&self) -> &str {
        "router"
    }

    fn on_switch_ready(&mut self, sw: &mut SwitchHandle) {
        // Handshake means empty tables: rewind the watermark so the
        // whole config is (re)installed, with no deletes into a table
        // that lost everything anyway.
        self.pushed.insert(sw.dpid, 0);
        self.sync_switch(sw);
    }

    fn on_tick(&mut self, sw: &mut SwitchHandle) {
        // Configs set (or replaced) after a datapath's handshake catch
        // up here.
        self.sync_switch(sw);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::test_handle;
    use openflow::message::Message;
    use openflow::{FlowModCommand, Instruction};

    fn decode(queue: &[bytes::Bytes]) -> Vec<FlowMod> {
        queue
            .iter()
            .filter_map(|b| match Message::decode(b).expect("well-formed").1 {
                Message::FlowMod(fm) => Some(fm),
                _ => None,
            })
            .collect()
    }

    fn pod_config() -> RouterConfig {
        RouterConfig {
            mac: MacAddr::host(0x4e00_0001),
            routes: vec![
                PrefixRoute {
                    prefix: Ipv4Addr::new(10, 2, 0, 0),
                    len: 16,
                    out_port: 9,
                    next_hop: MacAddr::host(0x4e00_0002),
                    nat: None,
                },
                PrefixRoute {
                    prefix: Ipv4Addr::new(10, 1, 0, 1),
                    len: 32,
                    out_port: 1,
                    next_hop: MacAddr::host(1),
                    nat: None,
                },
                PrefixRoute {
                    prefix: Ipv4Addr::new(0, 0, 0, 0),
                    len: 0,
                    out_port: 9,
                    next_hop: MacAddr::host(0x4e00_0002),
                    nat: Some(NatDir::Egress),
                },
            ],
            nat_external: None,
            uplink_guards: Vec::new(),
        }
    }

    #[test]
    fn pushes_classifier_miss_and_length_ranked_routes() {
        let mut r = Router::new();
        r.set_config(0x52, pod_config());
        let (mut xid, mut fms) = (0, 0);
        let mut q = Vec::new();
        r.sync_switch(&mut test_handle(0x52, &mut xid, &mut q, &mut fms));
        let mods = decode(&q);
        // Classifier + NAT miss + 3 routes, all adds.
        assert_eq!(mods.len(), 5);
        assert!(mods.iter().all(|m| m.command == FlowModCommand::Add));
        assert_eq!(r.rules_for(0x52), 5);
        assert_eq!(mods[0].table_id, 0);
        assert_eq!(mods[0].priority, CLASSIFY_PRIORITY);
        assert_eq!(
            mods[0].instructions,
            vec![Instruction::GotoTable(NAT_TABLE)]
        );
        assert_eq!(mods[1].table_id, NAT_TABLE);
        assert_eq!(
            mods[1].instructions,
            vec![Instruction::GotoTable(ROUTE_TABLE)]
        );
        // Route priorities rank by prefix length: /16 < /32, default lowest.
        let prios: Vec<u16> = mods[2..].iter().map(|m| m.priority).collect();
        assert_eq!(
            prios,
            vec![
                ROUTE_PRIORITY_BASE + 16,
                ROUTE_PRIORITY_BASE + 32,
                ROUTE_PRIORITY_BASE
            ]
        );
        assert!(mods[2..].iter().all(|m| m.table_id == ROUTE_TABLE));
        // The default route NATs on the way out.
        let Instruction::ApplyActions(acts) = &mods[4].instructions[0] else {
            panic!("default route must apply actions");
        };
        assert_eq!(acts[0], Action::DecNwTtl);
        assert_eq!(acts[1], Action::Nat(NatDir::Egress));
        assert!(matches!(acts.last(), Some(Action::Output { port: 9, .. })));
        // Re-sync is a no-op: the watermark caught up.
        q.clear();
        r.sync_switch(&mut test_handle(0x52, &mut xid, &mut q, &mut fms));
        assert!(q.is_empty());
    }

    #[test]
    fn gateway_installs_reverse_nat_before_the_miss() {
        let mut r = Router::new();
        let mut c = pod_config();
        c.nat_external = Some(Ipv4Addr::new(198, 18, 0, 254));
        r.set_config(0x52, c);
        let (mut xid, mut fms) = (0, 0);
        let mut q = Vec::new();
        r.sync_switch(&mut test_handle(0x52, &mut xid, &mut q, &mut fms));
        let mods = decode(&q);
        assert_eq!(mods.len(), 6);
        assert_eq!(mods[1].table_id, NAT_TABLE);
        assert_eq!(mods[1].priority, NAT_INGRESS_PRIORITY);
        assert_eq!(
            mods[1].instructions,
            vec![
                Instruction::ApplyActions(vec![Action::Nat(NatDir::Ingress)]),
                Instruction::GotoTable(ROUTE_TABLE),
            ]
        );
    }

    #[test]
    fn reconfigure_deletes_before_reinstalling() {
        let mut r = Router::new();
        r.set_config(0x52, pod_config());
        let (mut xid, mut fms) = (0, 0);
        let mut q = Vec::new();
        r.sync_switch(&mut test_handle(0x52, &mut xid, &mut q, &mut fms));
        // New personality: one route fewer.
        let mut c = pod_config();
        c.routes.truncate(2);
        r.set_config(0x52, c);
        q.clear();
        r.sync_switch(&mut test_handle(0x52, &mut xid, &mut q, &mut fms));
        let mods = decode(&q);
        // Three deletes (shared table by classifier match, own tables
        // wholesale) strictly before any add.
        assert_eq!(mods.len(), 3 + 4);
        assert!(mods[..3]
            .iter()
            .all(|m| m.command == FlowModCommand::Delete));
        assert_eq!(mods[0].match_, Match::new().eth_type(EtherType::IPV4.0));
        assert_eq!(mods[1].table_id, NAT_TABLE);
        assert_eq!(mods[2].table_id, ROUTE_TABLE);
        assert!(mods[3..].iter().all(|m| m.command == FlowModCommand::Add));
        assert_eq!(r.routes_retracted(), 3);
    }

    #[test]
    fn guarded_uplinks_accept_own_mac_and_drop_strays() {
        let mut r = Router::new();
        let mut c = pod_config();
        c.uplink_guards = vec![9];
        r.set_config(0x52, c.clone());
        let (mut xid, mut fms) = (0, 0);
        let mut q = Vec::new();
        r.sync_switch(&mut test_handle(0x52, &mut xid, &mut q, &mut fms));
        let mods = decode(&q);
        assert_eq!(mods.len(), 7);
        assert_eq!(r.rules_for(0x52), 7);
        // Accept (to the router's own MAC) outranks the drop.
        assert_eq!(mods[1].priority, GUARD_ACCEPT_PRIORITY);
        assert_eq!(
            mods[1].match_,
            Match::new()
                .in_port(9)
                .eth_dst(c.mac)
                .eth_type(EtherType::IPV4.0)
        );
        assert_eq!(
            mods[1].instructions,
            vec![Instruction::GotoTable(NAT_TABLE)]
        );
        assert_eq!(mods[2].priority, GUARD_DROP_PRIORITY);
        assert_eq!(
            mods[2].instructions,
            vec![Instruction::ApplyActions(vec![])],
            "stray flood copies are dropped, not reflected"
        );
        // Re-setting the identical config does not churn the rules.
        r.set_config(0x52, c);
        q.clear();
        r.sync_switch(&mut test_handle(0x52, &mut xid, &mut q, &mut fms));
        assert!(q.is_empty(), "identical config must be a no-op");
    }

    #[test]
    fn rehandshake_reinstalls_without_deletes() {
        let mut r = Router::new();
        r.set_config(0x52, pod_config());
        let (mut xid, mut fms) = (0, 0);
        let mut q = Vec::new();
        r.sync_switch(&mut test_handle(0x52, &mut xid, &mut q, &mut fms));
        q.clear();
        r.on_switch_ready(&mut test_handle(0x52, &mut xid, &mut q, &mut fms));
        let mods = decode(&q);
        assert_eq!(mods.len(), 5);
        assert!(
            mods.iter().all(|m| m.command == FlowModCommand::Add),
            "no deletes into a fresh table"
        );
        // An unconfigured datapath gets nothing.
        let mut q2 = Vec::new();
        r.on_switch_ready(&mut test_handle(0x99, &mut xid, &mut q2, &mut fms));
        assert!(q2.is_empty());
        assert_eq!(r.rules_for(0x99), 0);
    }
}
