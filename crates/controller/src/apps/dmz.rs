//! Use case (b) from the demo: "implement and fine-tune VM-level access
//! policies in a multi-tenant cloud" — a DMZ with default-deny IP policy
//! and explicitly permitted address pairs (the `DMZ` row of Fig. 1).
//!
//! Table 0 is the policy table: permitted pairs continue to the learning
//! stage in table 1, ARP is allowed (hosts must resolve each other), and
//! all remaining IP traffic drops.

use std::any::Any;
use std::collections::HashSet;
use std::net::Ipv4Addr;

use openflow::message::FlowMod;
use openflow::Match;

use crate::node::{App, SwitchHandle};

/// The DMZ policy app.
pub struct Dmz {
    /// Bidirectionally permitted `(a, b)` pairs.
    allowed: HashSet<(Ipv4Addr, Ipv4Addr)>,
    /// True once the base rules are installed (used to apply runtime
    /// changes incrementally).
    installed: bool,
}

impl Dmz {
    /// Build a policy from allowed (bidirectional) pairs.
    pub fn new(pairs: &[(Ipv4Addr, Ipv4Addr)]) -> Dmz {
        let mut allowed = HashSet::new();
        for &(a, b) in pairs {
            allowed.insert((a, b));
            allowed.insert((b, a));
        }
        Dmz {
            allowed,
            installed: false,
        }
    }

    /// The number of directed permitted pairs.
    pub fn permitted_pairs(&self) -> usize {
        self.allowed.len()
    }

    fn pair_rule(a: Ipv4Addr, b: Ipv4Addr) -> FlowMod {
        FlowMod::add(0)
            .priority(100)
            .match_(Match::new().eth_type(0x0800).ipv4_src(a).ipv4_dst(b))
            .goto(1)
    }

    /// Permit a new pair at runtime (installs immediately through `sw`).
    pub fn permit(&mut self, sw: &mut SwitchHandle, a: Ipv4Addr, b: Ipv4Addr) {
        for (x, y) in [(a, b), (b, a)] {
            if self.allowed.insert((x, y)) && self.installed {
                sw.flow_mod(Self::pair_rule(x, y));
            }
        }
        sw.barrier();
    }

    /// Revoke a pair at runtime.
    pub fn revoke(&mut self, sw: &mut SwitchHandle, a: Ipv4Addr, b: Ipv4Addr) {
        for (x, y) in [(a, b), (b, a)] {
            if self.allowed.remove(&(x, y)) && self.installed {
                let mut fm = FlowMod::delete(0);
                fm.match_ = Match::new().eth_type(0x0800).ipv4_src(x).ipv4_dst(y);
                sw.flow_mod(fm);
            }
        }
        sw.barrier();
    }
}

impl App for Dmz {
    fn name(&self) -> &str {
        "dmz"
    }

    fn on_switch_ready(&mut self, sw: &mut SwitchHandle) {
        for &(a, b) in &self.allowed {
            sw.flow_mod(Self::pair_rule(a, b));
        }
        // ARP is a prerequisite for any IP exchange; police at L3 only.
        sw.flow_mod(
            FlowMod::add(0)
                .priority(50)
                .match_(Match::new().eth_type(0x0806))
                .goto(1),
        );
        // Default deny for IP: drop by matching with no actions.
        sw.flow_mod(
            FlowMod::add(0)
                .priority(10)
                .match_(Match::new().eth_type(0x0800))
                .apply(vec![]),
        );
        // Anything else (LLDP etc.): drop quietly at priority 0 by having
        // no table-miss entry in table 0... but we *do* need nothing here:
        // absent miss entry means drop per OF 1.3.
        sw.barrier();
        self.installed = true;
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Render the policy as the flow-table rows shown in Fig. 1 (for the demo
/// binary's output).
pub fn render_policy(dmz: &Dmz) -> Vec<String> {
    let mut rows: Vec<String> = dmz
        .allowed
        .iter()
        .map(|(a, b)| format!("prio=100 ip src={a} dst={b} -> goto L2"))
        .collect();
    rows.sort();
    rows.push("prio=50  arp -> goto L2".into());
    rows.push("prio=10  ip  -> drop (default deny)".into());
    rows
}
