//! Reactive L2 learning switch — the canonical OpenFlow app, and the
//! forwarding stage the policy apps chain to.

use std::any::Any;
use std::collections::HashMap;

use netpkt::MacAddr;
use openflow::message::FlowMod;
use openflow::{Action, Match};

use crate::node::{App, PacketInEvent, PacketInVerdict, SwitchHandle};

/// Reactive MAC learning over one pipeline table.
pub struct LearningSwitch {
    /// The table this app owns.
    table: u8,
    /// Idle timeout for installed entries.
    idle_timeout: u16,
    /// `(dpid, mac) → port`.
    macs: HashMap<(u64, MacAddr), u32>,
    rules_installed: u64,
}

impl LearningSwitch {
    /// Learning on table 0 with a 60 s idle timeout.
    pub fn new() -> LearningSwitch {
        LearningSwitch {
            table: 0,
            idle_timeout: 60,
            macs: HashMap::new(),
            rules_installed: 0,
        }
    }

    /// Run in a different table (used behind ACL tables).
    pub fn in_table(mut self, table: u8) -> Self {
        self.table = table;
        self
    }

    /// Number of MACs learned.
    pub fn macs_learned(&self) -> usize {
        self.macs.len()
    }

    /// Rules installed so far.
    pub fn rules_installed(&self) -> u64 {
        self.rules_installed
    }

    /// Learned port for a MAC on a switch.
    pub fn lookup(&self, dpid: u64, mac: MacAddr) -> Option<u32> {
        self.macs.get(&(dpid, mac)).copied()
    }
}

impl Default for LearningSwitch {
    fn default() -> Self {
        Self::new()
    }
}

impl App for LearningSwitch {
    fn name(&self) -> &str {
        "l2-learning"
    }

    fn on_switch_ready(&mut self, sw: &mut SwitchHandle) {
        // A handshake means the datapath's tables are empty — either a
        // first connect or a reboot. Forget what this dpid had learned:
        // the cache no longer mirrors any installed rule, and a stale
        // port mapping would short-circuit packet_out toward a port the
        // topology may no longer serve. Re-learning costs one flood per
        // destination, exactly like a cold start.
        self.macs.retain(|&(d, _), _| d != sw.dpid);
        // Table-miss: punt to the controller.
        sw.flow_mod(
            FlowMod::add(self.table)
                .priority(0)
                .apply(vec![Action::to_controller()]),
        );
        sw.barrier();
    }

    fn on_packet_in(&mut self, sw: &mut SwitchHandle, ev: &PacketInEvent) -> PacketInVerdict {
        let dpid = sw.dpid;
        let src = ev.key.eth_src;
        let dst = ev.key.eth_dst;
        if src.is_unicast() {
            self.macs.insert((dpid, src), ev.in_port);
        }
        match self.macs.get(&(dpid, dst)) {
            Some(&out) if dst.is_unicast() => {
                // Proactive pair of rules so the reverse path is ready too.
                self.rules_installed += 1;
                sw.flow_mod(
                    FlowMod::add(self.table)
                        .priority(10)
                        .match_(Match::new().eth_dst(dst))
                        .apply(vec![Action::output(out)])
                        .timeouts(self.idle_timeout, 0),
                );
                self.rules_installed += 1;
                sw.flow_mod(
                    FlowMod::add(self.table)
                        .priority(10)
                        .match_(Match::new().eth_dst(src))
                        .apply(vec![Action::output(ev.in_port)])
                        .timeouts(self.idle_timeout, 0),
                );
                sw.packet_out(out, ev.data.clone());
            }
            _ => {
                // Unknown or multicast: flood, excluding the ingress port.
                sw.packet_out_flood(ev.in_port, ev.data.clone());
            }
        }
        // Learning is a terminal forwarding stage, but policy apps may
        // still want to observe the event — leave the chain open.
        PacketInVerdict::Continue
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
