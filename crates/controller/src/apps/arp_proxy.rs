//! Per-pod ARP proxy with proactive host routes — flood containment for
//! hybrid-SDN fabrics.
//!
//! In a multi-pod fabric every round of fresh traffic starts with ARP:
//! each host broadcasts a who-has, the pod's edge datapath punts it,
//! and a reactive learning controller floods it fabric-wide — every
//! datapath punts the same broadcast again, and the round-1 control
//! load grows as O(hosts²). This is the classic packet-in bottleneck of
//! keeping legacy L2 flooding alive during an SDN migration (HARMLESS
//! §5; the hybrid-SDN surveys make the same point).
//!
//! The fix is that the controller already *knows* every host: the
//! fabric layer registers each attached host's `(IP, MAC)` identity and
//! its location — which port of which datapath leads to it
//! ([`HostRoute`]). With that table this app:
//!
//! * **answers ARP requests at the pod edge**: a punted who-has for a
//!   known host is answered with a forged unicast reply out of the
//!   ingress port and **consumed** ([`PacketInVerdict::Consumed`]), so
//!   no app behind it floods the broadcast — the request never leaves
//!   the pod, turning round-1 broadcast cost into O(hosts) packet-ins
//!   (one per requesting host);
//! * **installs proactive routes**: when a datapath completes its
//!   handshake (and on every tick, for hosts registered later), a
//!   `eth_dst → output` rule per known host is installed, so the
//!   unicast traffic that follows the ARP exchange never punts at all —
//!   without these, suppressing the ARP flood would just move the
//!   flooding to the first data frame, since nothing would have
//!   learned remote MACs;
//! * **installs reflection guards** where the fabric asks for them
//!   (legacy-spine interconnects): a flood copy arriving *from* the
//!   fabric at a pod that does not host the destination would match the
//!   uplink route and reflect back out of its ingress port; the guard
//!   drops it instead;
//! * **retracts stale routes**: when a host is re-registered (a pod
//!   move) or removed ([`ArpProxy::remove_host`]), the rules installed
//!   for the superseded entry are deleted from every datapath they
//!   reached — proactive routes that outlive the host they point at
//!   silently blackhole its traffic at the old location.
//!
//! Chain this app *before* a [`crate::apps::LearningSwitch`]: the proxy
//! consumes what it can answer, the learning switch handles any MAC the
//! host table does not know (and is free to flood it, as before).
//!
//! The app is fabric-agnostic: it only sees `(dpid, port)` pairs. The
//! `harmless` crate's `Fabric::host_route` computes them from the
//! topology, and `FabricSpec`'s `arp_proxy` flag wires the whole thing
//! up.

use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use netpkt::{builder, MacAddr};
use openflow::message::FlowMod;
use openflow::{Action, Match};

use crate::node::{App, PacketInEvent, PacketInVerdict, SwitchHandle};

/// Priority of the proactive `eth_dst → output` host routes — above the
/// learning switch's reactive rules (10), below the guards.
pub const ROUTE_PRIORITY: u16 = 20;
/// Priority of the reflection-guard drop rules.
pub const GUARD_PRIORITY: u16 = 30;

/// One host's fabric-wide identity and location: how to answer ARP for
/// it, and which port of each datapath leads to it.
#[derive(Debug, Clone)]
pub struct HostRoute {
    /// The host's IPv4 address (the ARP table key).
    pub ip: Ipv4Addr,
    /// The host's MAC address (the ARP answer, and the route match).
    pub mac: MacAddr,
    /// `(dpid, out_port)`: the proactive route installed on each
    /// datapath that carries traffic toward this host.
    pub ports: Vec<(u64, u32)>,
    /// `(dpid, in_port)`: drop frames for this host that arrive on
    /// `in_port` of `dpid` (reflection guards for flooding
    /// interconnects; empty for spine datapaths the controller owns).
    pub guards: Vec<(u64, u32)>,
}

/// The ARP-proxy / proactive-routing app. See the module docs.
pub struct ArpProxy {
    hosts: Vec<HostRoute>,
    by_ip: HashMap<Ipv4Addr, usize>,
    /// dpid → number of `hosts` entries already installed there.
    pushed: HashMap<u64, usize>,
    /// Superseded/removed entries whose rules must be deleted from the
    /// datapaths they were pushed to.
    retired: Vec<HostRoute>,
    /// dpid → number of `retired` entries already retracted there.
    retracted: HashMap<u64, usize>,
    answered: u64,
    unknown_targets: u64,
    routes_installed: u64,
    routes_retracted: u64,
}

impl ArpProxy {
    /// An empty proxy; populate it with [`ArpProxy::add_host`] (the
    /// fabric layer does this when `FabricSpec::arp_proxy` is set).
    pub fn new() -> ArpProxy {
        ArpProxy {
            hosts: Vec::new(),
            by_ip: HashMap::new(),
            pushed: HashMap::new(),
            retired: Vec::new(),
            retracted: HashMap::new(),
            answered: 0,
            unknown_targets: 0,
            routes_installed: 0,
            routes_retracted: 0,
        }
    }

    /// Register a host. Routes reach already-connected datapaths on the
    /// next controller tick (1 s) or switch handshake, whichever comes
    /// first — register hosts before the simulation starts to have the
    /// routes in place from the first handshake.
    ///
    /// Re-registering an IP replaces its table entry. The replacement is
    /// appended past every datapath's push watermark, so its routes are
    /// (re)installed everywhere, and the superseded entry's rules are
    /// *retracted* (a delete flow-mod per datapath they reached) in the
    /// same sync — deletes go out before installs, so a host that moved
    /// pods ends up with exactly its new route, never a stale one
    /// blackholing traffic at the old location.
    pub fn add_host(&mut self, route: HostRoute) {
        self.retire(route.ip);
        self.by_ip.insert(route.ip, self.hosts.len());
        self.hosts.push(route);
    }

    /// Drop a host from the table: its ARP entries stop being answered
    /// and every rule installed for it is retracted on the next sync
    /// (tick, handshake, or an explicit [`ArpProxy::sync_switch`]).
    /// Returns true if the IP was known.
    pub fn remove_host(&mut self, ip: Ipv4Addr) -> bool {
        let known = self.retire(ip);
        self.by_ip.remove(&ip);
        known
    }

    /// Tombstone `ip`'s current entry (indices and per-dpid push
    /// watermarks stay valid) and queue its installed rules for
    /// retraction.
    fn retire(&mut self, ip: Ipv4Addr) -> bool {
        let Some(&i) = self.by_ip.get(&ip) else {
            return false;
        };
        let old = self.hosts[i].clone();
        self.hosts[i].ports.clear();
        self.hosts[i].guards.clear();
        if !old.ports.is_empty() || !old.guards.is_empty() {
            self.retired.push(old);
        }
        true
    }

    /// Number of registered hosts (live IPs, not superseded entries).
    pub fn hosts_known(&self) -> usize {
        self.by_ip.len()
    }

    /// ARP requests answered (and consumed) at the pod edge.
    pub fn answered(&self) -> u64 {
        self.answered
    }

    /// ARP requests for targets outside the host table (left to the
    /// rest of the app chain).
    pub fn unknown_targets(&self) -> u64 {
        self.unknown_targets
    }

    /// Proactive route + guard rules installed so far.
    pub fn routes_installed(&self) -> u64 {
        self.routes_installed
    }

    /// Delete flow-mods issued for retired routes so far.
    pub fn routes_retracted(&self) -> u64 {
        self.routes_retracted
    }

    /// The registered MAC for an IP, if any.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.by_ip.get(&ip).map(|&i| self.hosts[i].mac)
    }

    /// Bring `sw`'s datapath up to date with the host table *now*:
    /// retract rules of retired entries, then install pending routes.
    /// The same sync runs on every handshake and controller tick; call
    /// this via [`crate::ControllerNode::for_each_switch`] when a host
    /// move must converge without waiting for the next tick.
    pub fn sync_switch(&mut self, sw: &mut SwitchHandle) {
        let retracted = self.retract_routes(sw);
        let pushed = self.push_routes(sw);
        if retracted || pushed {
            sw.barrier();
        }
    }

    /// Issue delete flow-mods on `sw` for every retired entry not yet
    /// retracted there. One non-strict `eth_dst` delete per entry sweeps
    /// its route, its guards and any stale reactive rules for that MAC,
    /// while matching nothing the table-miss entry covers. Must run
    /// *before* [`ArpProxy::push_routes`] in a sync so a same-MAC move
    /// deletes the old rule, then installs the new one.
    fn retract_routes(&mut self, sw: &mut SwitchHandle) -> bool {
        let dpid = sw.dpid;
        let from = *self.retracted.get(&dpid).unwrap_or(&0);
        let mut any = false;
        for h in &self.retired[from.min(self.retired.len())..] {
            let touches = h
                .ports
                .iter()
                .chain(h.guards.iter())
                .any(|&(d, _)| d == dpid);
            if !touches {
                continue;
            }
            any = true;
            self.routes_retracted += 1;
            sw.flow_mod(FlowMod::delete(0).match_(Match::new().eth_dst(h.mac)));
        }
        self.retracted.insert(dpid, self.retired.len());
        any
    }

    /// Install rules for every host not yet pushed to `sw`'s datapath.
    /// Returns true if anything was sent.
    fn push_routes(&mut self, sw: &mut SwitchHandle) -> bool {
        let dpid = sw.dpid;
        let from = *self.pushed.get(&dpid).unwrap_or(&0);
        if from >= self.hosts.len() {
            return false;
        }
        for h in &self.hosts[from..] {
            for &(d, in_port) in &h.guards {
                if d != dpid {
                    continue;
                }
                self.routes_installed += 1;
                sw.flow_mod(
                    FlowMod::add(0)
                        .priority(GUARD_PRIORITY)
                        .match_(Match::new().in_port(in_port).eth_dst(h.mac))
                        .apply(vec![]), // match with no actions = drop
                );
            }
            for &(d, out) in &h.ports {
                if d != dpid {
                    continue;
                }
                self.routes_installed += 1;
                sw.flow_mod(
                    FlowMod::add(0)
                        .priority(ROUTE_PRIORITY)
                        .match_(Match::new().eth_dst(h.mac))
                        .apply(vec![Action::output(out)]),
                );
            }
        }
        self.pushed.insert(dpid, self.hosts.len());
        true
    }
}

impl Default for ArpProxy {
    fn default() -> Self {
        Self::new()
    }
}

impl App for ArpProxy {
    fn name(&self) -> &str {
        "arp-proxy"
    }

    fn on_switch_ready(&mut self, sw: &mut SwitchHandle) {
        // A handshake means empty tables — a first connect, or a device
        // that rebooted and lost everything. Rewind both watermarks:
        // every live route gets (re)installed, and deletes queued for
        // rules that no longer exist are skipped (deleting into a fresh
        // table would be a harmless no-op, but it is dead traffic).
        self.pushed.insert(sw.dpid, 0);
        self.retracted.insert(sw.dpid, self.retired.len());
        // Table-miss punt, so ARP broadcasts (which no dst-MAC route
        // matches) reach the proxy. Idempotent with the learning
        // switch's identical entry.
        sw.flow_mod(
            FlowMod::add(0)
                .priority(0)
                .apply(vec![Action::to_controller()]),
        );
        self.sync_switch(sw);
    }

    fn on_tick(&mut self, sw: &mut SwitchHandle) {
        // Hosts registered (or retired) after a datapath's handshake
        // catch up here.
        self.sync_switch(sw);
    }

    fn on_packet_in(&mut self, sw: &mut SwitchHandle, ev: &PacketInEvent) -> PacketInVerdict {
        let Some(repr) = ev.arp_request() else {
            return PacketInVerdict::Continue;
        };
        let Some(mac) = self.lookup(repr.target_ip) else {
            self.unknown_targets += 1;
            return PacketInVerdict::Continue;
        };
        // Answer from the host table with the target's real MAC, out of
        // the port the request came in on — the broadcast itself goes no
        // further than this datapath.
        self.answered += 1;
        sw.packet_out(ev.in_port, builder::arp_reply(&repr, mac));
        PacketInVerdict::Consumed
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::test_handle;
    use openflow::message::Message;
    use openflow::FlowModCommand;

    fn route(ip: [u8; 4], mac: u32) -> HostRoute {
        HostRoute {
            ip: Ipv4Addr::from(ip),
            mac: MacAddr::host(mac),
            ports: vec![(0x52, 1)],
            guards: Vec::new(),
        }
    }

    /// Decode a queue of encoded messages into `(command, match)` pairs
    /// for the flow-mods, in order.
    fn flow_mods(queue: &[bytes::Bytes]) -> Vec<(FlowModCommand, Match)> {
        queue
            .iter()
            .filter_map(|b| match Message::decode(b).expect("well-formed").1 {
                Message::FlowMod(fm) => Some((fm.command, fm.match_)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn add_host_replaces_existing_ips() {
        let mut p = ArpProxy::new();
        p.add_host(route([10, 0, 0, 1], 1));
        p.add_host(route([10, 0, 0, 2], 2));
        assert_eq!(p.hosts_known(), 2);
        assert_eq!(p.lookup(Ipv4Addr::new(10, 0, 0, 1)), Some(MacAddr::host(1)));
        // Re-registering the same IP with a new MAC replaces the entry.
        p.add_host(route([10, 0, 0, 1], 7));
        assert_eq!(p.hosts_known(), 2);
        assert_eq!(p.lookup(Ipv4Addr::new(10, 0, 0, 1)), Some(MacAddr::host(7)));
        assert_eq!(p.lookup(Ipv4Addr::new(10, 0, 0, 9)), None);
    }

    #[test]
    fn move_deletes_stale_rules_before_installing_new_ones() {
        let mut p = ArpProxy::new();
        let mac = MacAddr::host(1);
        p.add_host(HostRoute {
            ip: Ipv4Addr::new(10, 0, 0, 1),
            mac,
            ports: vec![(0x52, 1), (0x53, 9)],
            guards: vec![(0x53, 9)],
        });
        let (mut xid, mut fms) = (0, 0);
        let mut q52 = Vec::new();
        p.sync_switch(&mut test_handle(0x52, &mut xid, &mut q52, &mut fms));
        assert_eq!(flow_mods(&q52).len(), 1);
        assert_eq!(p.routes_retracted(), 0);

        // The host moves: same identity, new location.
        p.add_host(HostRoute {
            ip: Ipv4Addr::new(10, 0, 0, 1),
            mac,
            ports: vec![(0x53, 2), (0x52, 7)],
            guards: Vec::new(),
        });
        q52.clear();
        p.sync_switch(&mut test_handle(0x52, &mut xid, &mut q52, &mut fms));
        let mods = flow_mods(&q52);
        // Delete of the old rule first, then the add of the new route —
        // the reverse order would delete the fresh rule.
        assert_eq!(mods[0].0, FlowModCommand::Delete);
        assert_eq!(mods[0].1, Match::new().eth_dst(mac));
        assert_eq!(mods[1].0, FlowModCommand::Add);
        assert_eq!(mods.len(), 2);
        // 0x53 held a route *and* a guard, swept by the one delete.
        let mut q53 = Vec::new();
        p.sync_switch(&mut test_handle(0x53, &mut xid, &mut q53, &mut fms));
        let mods = flow_mods(&q53);
        assert_eq!(mods[0].0, FlowModCommand::Delete);
        assert_eq!(mods.len(), 2);
        assert_eq!(p.routes_retracted(), 2);
        // Syncing again is a no-op: both watermarks caught up.
        q52.clear();
        p.sync_switch(&mut test_handle(0x52, &mut xid, &mut q52, &mut fms));
        assert!(q52.is_empty());
    }

    #[test]
    fn remove_host_retracts_and_stops_answering() {
        let mut p = ArpProxy::new();
        p.add_host(route([10, 0, 0, 1], 1));
        let (mut xid, mut fms) = (0, 0);
        let mut q = Vec::new();
        p.sync_switch(&mut test_handle(0x52, &mut xid, &mut q, &mut fms));
        assert!(p.remove_host(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(!p.remove_host(Ipv4Addr::new(10, 0, 0, 1)), "already gone");
        assert_eq!(p.lookup(Ipv4Addr::new(10, 0, 0, 1)), None);
        assert_eq!(p.hosts_known(), 0);
        q.clear();
        p.sync_switch(&mut test_handle(0x52, &mut xid, &mut q, &mut fms));
        let mods = flow_mods(&q);
        assert_eq!(mods.len(), 1);
        assert_eq!(mods[0].0, FlowModCommand::Delete);
    }

    #[test]
    fn rehandshake_reinstalls_routes_and_skips_stale_deletes() {
        let mut p = ArpProxy::new();
        p.add_host(route([10, 0, 0, 1], 1));
        p.add_host(route([10, 0, 0, 2], 2));
        let (mut xid, mut fms) = (0, 0);
        let mut q = Vec::new();
        p.sync_switch(&mut test_handle(0x52, &mut xid, &mut q, &mut fms));
        p.remove_host(Ipv4Addr::new(10, 0, 0, 2));
        // The datapath reboots before the tick that would retract: its
        // tables are empty, so the handshake must re-install host 1 and
        // not bother deleting rules that no longer exist.
        q.clear();
        p.on_switch_ready(&mut test_handle(0x52, &mut xid, &mut q, &mut fms));
        let mods = flow_mods(&q);
        assert!(
            mods.iter().all(|(c, _)| *c == FlowModCommand::Add),
            "no deletes into a fresh table: {mods:?}"
        );
        // Table-miss + host 1's route; host 2's tombstone installs nothing.
        assert_eq!(mods.len(), 2);
    }
}
