//! Per-pod ARP proxy with proactive host routes — flood containment for
//! hybrid-SDN fabrics.
//!
//! In a multi-pod fabric every round of fresh traffic starts with ARP:
//! each host broadcasts a who-has, the pod's edge datapath punts it,
//! and a reactive learning controller floods it fabric-wide — every
//! datapath punts the same broadcast again, and the round-1 control
//! load grows as O(hosts²). This is the classic packet-in bottleneck of
//! keeping legacy L2 flooding alive during an SDN migration (HARMLESS
//! §5; the hybrid-SDN surveys make the same point).
//!
//! The fix is that the controller already *knows* every host: the
//! fabric layer registers each attached host's `(IP, MAC)` identity and
//! its location — which port of which datapath leads to it
//! ([`HostRoute`]). With that table this app:
//!
//! * **answers ARP requests at the pod edge**: a punted who-has for a
//!   known host is answered with a forged unicast reply out of the
//!   ingress port and **consumed** ([`PacketInVerdict::Consumed`]), so
//!   no app behind it floods the broadcast — the request never leaves
//!   the pod, turning round-1 broadcast cost into O(hosts) packet-ins
//!   (one per requesting host);
//! * **installs proactive routes**: when a datapath completes its
//!   handshake (and on every tick, for hosts registered later), a
//!   `eth_dst → output` rule per known host is installed, so the
//!   unicast traffic that follows the ARP exchange never punts at all —
//!   without these, suppressing the ARP flood would just move the
//!   flooding to the first data frame, since nothing would have
//!   learned remote MACs;
//! * **installs reflection guards** where the fabric asks for them
//!   (legacy-spine interconnects): a flood copy arriving *from* the
//!   fabric at a pod that does not host the destination would match the
//!   uplink route and reflect back out of its ingress port; the guard
//!   drops it instead.
//!
//! Chain this app *before* a [`crate::apps::LearningSwitch`]: the proxy
//! consumes what it can answer, the learning switch handles any MAC the
//! host table does not know (and is free to flood it, as before).
//!
//! The app is fabric-agnostic: it only sees `(dpid, port)` pairs. The
//! `harmless` crate's `Fabric::host_route` computes them from the
//! topology, and `FabricSpec`'s `arp_proxy` flag wires the whole thing
//! up.

use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use netpkt::{builder, MacAddr};
use openflow::message::FlowMod;
use openflow::{Action, Match};

use crate::node::{App, PacketInEvent, PacketInVerdict, SwitchHandle};

/// Priority of the proactive `eth_dst → output` host routes — above the
/// learning switch's reactive rules (10), below the guards.
pub const ROUTE_PRIORITY: u16 = 20;
/// Priority of the reflection-guard drop rules.
pub const GUARD_PRIORITY: u16 = 30;

/// One host's fabric-wide identity and location: how to answer ARP for
/// it, and which port of each datapath leads to it.
#[derive(Debug, Clone)]
pub struct HostRoute {
    /// The host's IPv4 address (the ARP table key).
    pub ip: Ipv4Addr,
    /// The host's MAC address (the ARP answer, and the route match).
    pub mac: MacAddr,
    /// `(dpid, out_port)`: the proactive route installed on each
    /// datapath that carries traffic toward this host.
    pub ports: Vec<(u64, u32)>,
    /// `(dpid, in_port)`: drop frames for this host that arrive on
    /// `in_port` of `dpid` (reflection guards for flooding
    /// interconnects; empty for spine datapaths the controller owns).
    pub guards: Vec<(u64, u32)>,
}

/// The ARP-proxy / proactive-routing app. See the module docs.
pub struct ArpProxy {
    hosts: Vec<HostRoute>,
    by_ip: HashMap<Ipv4Addr, usize>,
    /// dpid → number of `hosts` entries already installed there.
    pushed: HashMap<u64, usize>,
    answered: u64,
    unknown_targets: u64,
    routes_installed: u64,
}

impl ArpProxy {
    /// An empty proxy; populate it with [`ArpProxy::add_host`] (the
    /// fabric layer does this when `FabricSpec::arp_proxy` is set).
    pub fn new() -> ArpProxy {
        ArpProxy {
            hosts: Vec::new(),
            by_ip: HashMap::new(),
            pushed: HashMap::new(),
            answered: 0,
            unknown_targets: 0,
            routes_installed: 0,
        }
    }

    /// Register a host. Routes reach already-connected datapaths on the
    /// next controller tick (1 s) or switch handshake, whichever comes
    /// first — register hosts before the simulation starts to have the
    /// routes in place from the first handshake.
    ///
    /// Re-registering an IP replaces its table entry. The replacement is
    /// appended past every datapath's push watermark, so its routes are
    /// (re)installed everywhere — a same-MAC move overwrites the old
    /// `eth_dst` rule in place (identical match + priority). Rules of a
    /// *retired* MAC are not retracted.
    pub fn add_host(&mut self, route: HostRoute) {
        if let Some(&i) = self.by_ip.get(&route.ip) {
            // Tombstone the old entry (kept so indices and per-dpid
            // watermarks stay valid) and append the replacement where
            // push_routes will see it again.
            self.hosts[i].ports.clear();
            self.hosts[i].guards.clear();
        }
        self.by_ip.insert(route.ip, self.hosts.len());
        self.hosts.push(route);
    }

    /// Number of registered hosts (live IPs, not superseded entries).
    pub fn hosts_known(&self) -> usize {
        self.by_ip.len()
    }

    /// ARP requests answered (and consumed) at the pod edge.
    pub fn answered(&self) -> u64 {
        self.answered
    }

    /// ARP requests for targets outside the host table (left to the
    /// rest of the app chain).
    pub fn unknown_targets(&self) -> u64 {
        self.unknown_targets
    }

    /// Proactive route + guard rules installed so far.
    pub fn routes_installed(&self) -> u64 {
        self.routes_installed
    }

    /// The registered MAC for an IP, if any.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.by_ip.get(&ip).map(|&i| self.hosts[i].mac)
    }

    /// Install rules for every host not yet pushed to `sw`'s datapath.
    fn push_routes(&mut self, sw: &mut SwitchHandle) {
        let dpid = sw.dpid;
        let from = *self.pushed.get(&dpid).unwrap_or(&0);
        if from >= self.hosts.len() {
            return;
        }
        for h in &self.hosts[from..] {
            for &(d, in_port) in &h.guards {
                if d != dpid {
                    continue;
                }
                self.routes_installed += 1;
                sw.flow_mod(
                    FlowMod::add(0)
                        .priority(GUARD_PRIORITY)
                        .match_(Match::new().in_port(in_port).eth_dst(h.mac))
                        .apply(vec![]), // match with no actions = drop
                );
            }
            for &(d, out) in &h.ports {
                if d != dpid {
                    continue;
                }
                self.routes_installed += 1;
                sw.flow_mod(
                    FlowMod::add(0)
                        .priority(ROUTE_PRIORITY)
                        .match_(Match::new().eth_dst(h.mac))
                        .apply(vec![Action::output(out)]),
                );
            }
        }
        self.pushed.insert(dpid, self.hosts.len());
        sw.barrier();
    }
}

impl Default for ArpProxy {
    fn default() -> Self {
        Self::new()
    }
}

impl App for ArpProxy {
    fn name(&self) -> &str {
        "arp-proxy"
    }

    fn on_switch_ready(&mut self, sw: &mut SwitchHandle) {
        // Table-miss punt, so ARP broadcasts (which no dst-MAC route
        // matches) reach the proxy. Idempotent with the learning
        // switch's identical entry.
        sw.flow_mod(
            FlowMod::add(0)
                .priority(0)
                .apply(vec![Action::to_controller()]),
        );
        self.push_routes(sw);
    }

    fn on_tick(&mut self, sw: &mut SwitchHandle) {
        // Hosts registered after a datapath's handshake catch up here.
        self.push_routes(sw);
    }

    fn on_packet_in(&mut self, sw: &mut SwitchHandle, ev: &PacketInEvent) -> PacketInVerdict {
        let Some(repr) = ev.arp_request() else {
            return PacketInVerdict::Continue;
        };
        let Some(mac) = self.lookup(repr.target_ip) else {
            self.unknown_targets += 1;
            return PacketInVerdict::Continue;
        };
        // Answer from the host table with the target's real MAC, out of
        // the port the request came in on — the broadcast itself goes no
        // further than this datapath.
        self.answered += 1;
        sw.packet_out(ev.in_port, builder::arp_reply(&repr, mac));
        PacketInVerdict::Consumed
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(ip: [u8; 4], mac: u32) -> HostRoute {
        HostRoute {
            ip: Ipv4Addr::from(ip),
            mac: MacAddr::host(mac),
            ports: vec![(0x52, 1)],
            guards: Vec::new(),
        }
    }

    #[test]
    fn add_host_replaces_existing_ips() {
        let mut p = ArpProxy::new();
        p.add_host(route([10, 0, 0, 1], 1));
        p.add_host(route([10, 0, 0, 2], 2));
        assert_eq!(p.hosts_known(), 2);
        assert_eq!(p.lookup(Ipv4Addr::new(10, 0, 0, 1)), Some(MacAddr::host(1)));
        // Re-registering the same IP with a new MAC replaces the entry.
        p.add_host(route([10, 0, 0, 1], 7));
        assert_eq!(p.hosts_known(), 2);
        assert_eq!(p.lookup(Ipv4Addr::new(10, 0, 0, 1)), Some(MacAddr::host(7)));
        assert_eq!(p.lookup(Ipv4Addr::new(10, 0, 0, 9)), None);
    }
}
