//! Bundled controller applications.

pub mod arp_proxy;
pub mod dmz;
pub mod lb;
pub mod learning;
pub mod parental;
pub mod router;
pub mod static_fwd;

pub use arp_proxy::{ArpProxy, HostRoute};
pub use dmz::Dmz;
pub use lb::LoadBalancer;
pub use learning::LearningSwitch;
pub use parental::ParentalControl;
pub use router::{PrefixRoute, Router, RouterConfig};
pub use static_fwd::StaticForwarder;
