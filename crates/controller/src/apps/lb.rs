//! Use case (a) from the demo: a Load Balancer that "equally distributes
//! ingress web traffic between multiple backends based on matching of the
//! source IP address".
//!
//! Clients address a virtual IP (VIP). The app answers ARP for the VIP
//! (proxy-ARP via packet-out), and partitions the client source-address
//! space into `N` buckets by masking the low bits of the source address —
//! exactly the "matching of the source IP address" phrasing in the paper.
//! Each bucket's rule rewrites the destination MAC/IP to one backend and
//! forwards to its port; return traffic is rewritten back to the VIP.

use std::any::Any;
use std::net::Ipv4Addr;

use netpkt::{builder, MacAddr};
use openflow::message::FlowMod;
use openflow::oxm::OxmField;
use openflow::{Action, Match};

use crate::node::{App, PacketInEvent, PacketInVerdict, SwitchHandle};

/// One backend server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backend {
    /// Switch port the backend hangs off.
    pub port: u32,
    /// Backend MAC (for destination rewrite).
    pub mac: MacAddr,
    /// Backend IP (for destination rewrite).
    pub ip: Ipv4Addr,
}

/// The load-balancer app.
pub struct LoadBalancer {
    /// The virtual service address.
    pub vip: Ipv4Addr,
    /// MAC answered in proxy-ARP for the VIP.
    pub vip_mac: MacAddr,
    /// L4 port of the balanced service.
    pub service_port: u16,
    /// IP protocol of the service: 6 (TCP, default) or 17 (UDP).
    pub service_proto: u8,
    /// Backends (bucket count = backend count, must be a power of two for
    /// clean masking).
    pub backends: Vec<Backend>,
    arps_answered: u64,
}

impl LoadBalancer {
    /// Build the app. `backends.len()` must be a power of two (2, 4, 8...)
    /// so source-space partitioning is exact.
    pub fn new(vip: Ipv4Addr, service_port: u16, backends: Vec<Backend>) -> LoadBalancer {
        assert!(
            backends.len().is_power_of_two(),
            "backend count must be a power of two"
        );
        LoadBalancer {
            vip,
            vip_mac: MacAddr::host(0xbbbb),
            service_port,
            service_proto: 6,
            backends,
            arps_answered: 0,
        }
    }

    /// Balance a UDP service instead of TCP.
    pub fn udp(mut self) -> Self {
        self.service_proto = 17;
        self
    }

    /// The MAC the VIP answers ARP with.
    pub fn with_vip_mac(mut self, mac: MacAddr) -> Self {
        self.vip_mac = mac;
        self
    }

    /// Proxy-ARP replies sent.
    pub fn arps_answered(&self) -> u64 {
        self.arps_answered
    }

    fn service_match(&self) -> Match {
        let m = Match::new().eth_type(0x0800);
        if self.service_proto == 6 {
            m.ip_proto(6).tcp_dst(self.service_port)
        } else {
            m.ip_proto(17).udp_dst(self.service_port)
        }
    }

    fn return_match(&self, b: &Backend) -> Match {
        let m = Match::new().in_port(b.port).eth_type(0x0800).ipv4_src(b.ip);
        if self.service_proto == 6 {
            m.ip_proto(6).with(OxmField::TcpSrc(self.service_port))
        } else {
            m.ip_proto(17).with(OxmField::UdpSrc(self.service_port))
        }
    }
}

impl App for LoadBalancer {
    fn name(&self) -> &str {
        "load-balancer"
    }

    fn on_switch_ready(&mut self, sw: &mut SwitchHandle) {
        let n = self.backends.len() as u32;
        let low_mask = n - 1; // e.g. 4 backends -> mask 0x3 of the src IP
        for (i, b) in self.backends.iter().enumerate() {
            // Forward direction: src-IP bucket i, dst VIP -> backend i.
            let fwd = self
                .service_match()
                .with(OxmField::Ipv4Src(
                    Ipv4Addr::from(i as u32),
                    Some(Ipv4Addr::from(low_mask)),
                ))
                .ipv4_dst(self.vip);
            sw.flow_mod(FlowMod::add(0).priority(100).match_(fwd).apply(vec![
                Action::SetField(OxmField::EthDst(b.mac, None)),
                Action::SetField(OxmField::Ipv4Dst(b.ip, None)),
                Action::output(b.port),
            ]));
            // Return direction: backend i's service traffic gets re-sourced
            // as the VIP before the learning stage forwards it.
            sw.flow_mod(
                FlowMod::add(0)
                    .priority(100)
                    .match_(self.return_match(b))
                    .instructions(vec![
                        openflow::Instruction::ApplyActions(vec![
                            Action::SetField(OxmField::EthSrc(self.vip_mac, None)),
                            Action::SetField(OxmField::Ipv4Src(self.vip, None)),
                        ]),
                        openflow::Instruction::GotoTable(1),
                    ]),
            );
        }
        // Everything else goes to the learning stage in table 1.
        sw.flow_mod(FlowMod::add(0).priority(1).goto(1));
        sw.barrier();
    }

    fn on_packet_in(&mut self, sw: &mut SwitchHandle, ev: &PacketInEvent) -> PacketInVerdict {
        // Proxy-ARP for the VIP.
        let Some(repr) = ev.arp_request() else {
            return PacketInVerdict::Continue;
        };
        if repr.target_ip != self.vip {
            return PacketInVerdict::Continue;
        }
        self.arps_answered += 1;
        let reply = builder::arp_reply(&repr, self.vip_mac);
        sw.packet_out(ev.in_port, reply);
        // Answered, but kept visible downstream: the learning stage uses
        // the same punt to learn the requester's port, exactly as before
        // the verdict chain existed.
        PacketInVerdict::Continue
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
