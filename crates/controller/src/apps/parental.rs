//! Use case (c) from the demo: Parental Control — "selectively deny access
//! to specific users to certain web pages on-the-fly".
//!
//! Users are identified by source IP, web pages by server IP (the demo's
//! granularity). Blocks are high-priority drop rules in table 0 over a
//! goto-learning default, so they apply instantly and can be added or
//! removed mid-run without touching the forwarding state.

use std::any::Any;
use std::collections::HashSet;
use std::net::Ipv4Addr;

use openflow::message::FlowMod;
use openflow::Match;

use crate::node::{App, SwitchHandle};

/// The parental-control app.
pub struct ParentalControl {
    /// Active `(user, blocked destination)` rules.
    blocked: HashSet<(Ipv4Addr, Ipv4Addr)>,
    installed: bool,
    blocks_installed: u64,
    unblocks_installed: u64,
}

impl ParentalControl {
    /// Start with an initial blocklist.
    pub fn new(blocklist: &[(Ipv4Addr, Ipv4Addr)]) -> ParentalControl {
        ParentalControl {
            blocked: blocklist.iter().copied().collect(),
            installed: false,
            blocks_installed: 0,
            unblocks_installed: 0,
        }
    }

    /// Current blocklist size.
    pub fn blocked_count(&self) -> usize {
        self.blocked.len()
    }

    /// Blocks pushed to switches so far.
    pub fn blocks_installed(&self) -> u64 {
        self.blocks_installed
    }

    /// Unblocks pushed to switches so far.
    pub fn unblocks_installed(&self) -> u64 {
        self.unblocks_installed
    }

    fn block_rule(user: Ipv4Addr, dst: Ipv4Addr) -> FlowMod {
        FlowMod::add(0)
            .priority(200)
            .match_(Match::new().eth_type(0x0800).ipv4_src(user).ipv4_dst(dst))
            .apply(vec![]) // match, no output = drop
    }

    /// Deny `user` access to `dst`, effective immediately.
    pub fn block(&mut self, sw: &mut SwitchHandle, user: Ipv4Addr, dst: Ipv4Addr) {
        if self.blocked.insert((user, dst)) && self.installed {
            self.blocks_installed += 1;
            sw.flow_mod(Self::block_rule(user, dst));
            sw.barrier();
        }
    }

    /// Re-allow `user` access to `dst`.
    pub fn unblock(&mut self, sw: &mut SwitchHandle, user: Ipv4Addr, dst: Ipv4Addr) {
        if self.blocked.remove(&(user, dst)) && self.installed {
            self.unblocks_installed += 1;
            let mut fm = FlowMod::delete(0);
            fm.priority = 200;
            fm.match_ = Match::new().eth_type(0x0800).ipv4_src(user).ipv4_dst(dst);
            fm.command = openflow::table::FlowModCommand::DeleteStrict;
            sw.flow_mod(fm);
            sw.barrier();
        }
    }
}

impl App for ParentalControl {
    fn name(&self) -> &str {
        "parental-control"
    }

    fn on_switch_ready(&mut self, sw: &mut SwitchHandle) {
        for &(user, dst) in &self.blocked {
            self.blocks_installed += 1;
            sw.flow_mod(Self::block_rule(user, dst));
        }
        // Everything not blocked flows to the learning stage.
        sw.flow_mod(FlowMod::add(0).priority(1).goto(1));
        sw.barrier();
        self.installed = true;
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
