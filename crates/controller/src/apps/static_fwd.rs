//! Proactive static forwarding: a fixed port-to-port wiring installed at
//! handshake time. The throughput/latency experiments use this so the
//! controller never sits in the steady-state path.

use std::any::Any;

use openflow::message::FlowMod;
use openflow::{Action, Match};

use crate::node::{App, SwitchHandle};

/// Installs `in_port → out_port` rules once the switch is ready.
pub struct StaticForwarder {
    /// The wiring: `(in_port, out_port)` pairs.
    pub wiring: Vec<(u32, u32)>,
    installed_on: u64,
}

impl StaticForwarder {
    /// Forward each pair both ways.
    pub fn bidirectional(pairs: &[(u32, u32)]) -> StaticForwarder {
        let mut wiring = Vec::new();
        for &(a, b) in pairs {
            wiring.push((a, b));
            wiring.push((b, a));
        }
        StaticForwarder {
            wiring,
            installed_on: 0,
        }
    }

    /// Forward exactly the listed directed pairs.
    pub fn directed(wiring: Vec<(u32, u32)>) -> StaticForwarder {
        StaticForwarder {
            wiring,
            installed_on: 0,
        }
    }

    /// How many switches received the wiring.
    pub fn installed_on(&self) -> u64 {
        self.installed_on
    }
}

impl App for StaticForwarder {
    fn name(&self) -> &str {
        "static-forwarder"
    }

    fn on_switch_ready(&mut self, sw: &mut SwitchHandle) {
        self.installed_on += 1;
        for &(inp, out) in &self.wiring {
            sw.flow_mod(
                FlowMod::add(0)
                    .priority(10)
                    .match_(Match::new().in_port(inp))
                    .apply(vec![Action::output(out)]),
            );
        }
        sw.barrier();
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ControllerNode;
    use netsim::host::Host;
    use netsim::{LinkSpec, Network, PortId, SimTime};
    use softswitch::{CostModel, DpConfig, SoftSwitchNode};
    use std::net::Ipv4Addr;

    /// Full loop: controller wires a softswitch, two hosts ping through.
    #[test]
    fn static_wiring_end_to_end() {
        let mut net = Network::new(3);
        let ctrl = net.add_node(ControllerNode::new(
            "ctrl",
            vec![Box::new(StaticForwarder::bidirectional(&[(1, 2)]))],
        ));
        let mut sw =
            SoftSwitchNode::new("ss", DpConfig::software(1), 1, 4096, CostModel::default());
        sw.add_port(1, "p1", 1_000_000);
        sw.add_port(2, "p2", 1_000_000);
        sw.connect_controller(ctrl);
        let s = net.add_node(sw);
        let a = net.add_node(Host::new(
            "a",
            netpkt::MacAddr::host(1),
            Ipv4Addr::new(10, 0, 0, 1),
        ));
        let b = net.add_node(Host::new(
            "b",
            netpkt::MacAddr::host(2),
            Ipv4Addr::new(10, 0, 0, 2),
        ));
        net.connect(a, PortId(0), s, PortId(1), LinkSpec::gigabit());
        net.connect(b, PortId(0), s, PortId(2), LinkSpec::gigabit());
        // Let the handshake + installation settle, then ping.
        net.run_until(SimTime::from_millis(100));
        net.with_node_ctx::<Host, _>(a, |h, ctx| {
            h.ping(b"x", Ipv4Addr::new(10, 0, 0, 2));
            h.flush(ctx);
        });
        net.run_until(SimTime::from_millis(200));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
        let c = net.node_ref::<ControllerNode>(ctrl);
        assert!(c.flow_mods_sent() >= 2);
        assert_eq!(c.errors_seen(), 0);
    }
}
