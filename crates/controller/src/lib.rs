//! # controller — the SDN controller and its applications
//!
//! A compact OpenFlow 1.3 controller in the Ryu mould: the
//! [`ControllerNode`] owns the channels (handshake, echo, port discovery)
//! and dispatches events to [`App`]s through a [`SwitchHandle`] that
//! queues messages back to the switch.
//!
//! The bundled apps are the three use cases the HARMLESS demo showcases
//! (Fig. 1), plus the plumbing they share:
//!
//! * [`apps::LearningSwitch`] — classic reactive L2 learning; also used as
//!   the forwarding stage behind the policy apps;
//! * [`apps::LoadBalancer`] — use case (a): distributes ingress web
//!   traffic across backends keyed on source IP, with proxy-ARP for the
//!   VIP;
//! * [`apps::Dmz`] — use case (b): VM-level pairwise access policy in a
//!   multi-tenant segment, default-deny;
//! * [`apps::ParentalControl`] — use case (c): per-user destination
//!   blocklists, updatable on the fly;
//! * [`apps::StaticForwarder`] — proactive port-to-port wiring used by
//!   the throughput/latency experiments to keep the controller out of the
//!   steady-state path.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod apps;
pub mod node;

pub use node::{App, ControllerNode, PacketInEvent, PacketInVerdict, SwitchHandle};
