//! Simulated time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// Also used for durations; the arithmetic saturates rather than wraps so
/// "never" can be represented as [`SimTime::MAX`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as "no deadline".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Nanosecond count.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Microseconds, truncating.
    pub const fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds, truncating.
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The serialization time of `bytes` at `rate_bps` bits/second.
    pub fn tx_time(bytes: usize, rate_bps: u64) -> SimTime {
        if rate_bps == 0 {
            return SimTime::ZERO;
        }
        let ns = (bytes as u128 * 8 * 1_000_000_000) / rate_bps as u128;
        SimTime(ns as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
    }

    #[test]
    fn tx_time_gigabit() {
        // 1500 bytes at 1 Gbps = 12 microseconds.
        assert_eq!(
            SimTime::tx_time(1500, 1_000_000_000),
            SimTime::from_micros(12)
        );
        // 64 bytes at 10 Gbps = 51.2 ns.
        assert_eq!(
            SimTime::tx_time(64, 10_000_000_000),
            SimTime::from_nanos(51)
        );
    }

    #[test]
    fn tx_time_zero_rate_is_instant() {
        assert_eq!(SimTime::tx_time(1500, 0), SimTime::ZERO);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimTime::from_secs(1)),
            SimTime::ZERO
        );
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000s");
    }
}
