//! Measurement primitives: counters and a log-linear histogram.

/// A named monotonic counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// Number of linear sub-buckets per power-of-two bucket. 32 gives ~3%
/// relative error, plenty for latency percentiles.
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)

/// An HDR-style log-linear histogram of `u64` samples (typically
/// nanoseconds).
///
/// Values are bucketed with bounded relative error (~1/`SUB_BUCKETS`), so
/// percentiles stay accurate from nanoseconds to hours without configuring
/// a range up front.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            // 64 powers of two × SUB_BUCKETS linear sub-buckets.
            buckets: vec![0; 64 * SUB_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((value >> shift) - SUB_BUCKETS as u64) as usize;
        ((msb - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Representative (lower-bound) value of bucket `i`.
    fn bucket_low(i: usize) -> u64 {
        let tier = i / SUB_BUCKETS;
        let sub = (i % SUB_BUCKETS) as u64;
        if tier == 0 {
            return sub;
        }
        let shift = (tier - 1) as u32;
        (SUB_BUCKETS as u64 + sub) << shift
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` identical samples in one step. Used by the flow-level
    /// engine to credit a whole window of modeled arrivals without
    /// looping per frame; a no-op when `n` is zero.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::index(value)] += n;
        self.count += n;
        self.sum += u128::from(value) * u128::from(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at percentile `p` in `[0, 100]`. Returns the lower bound of the
    /// bucket containing the rank, clamped to the observed min/max.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_low(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Shorthand for the median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Shorthand for the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Shorthand for the 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// Control-channel impairment counters for one channel (an ordered
/// `(from, to)` node pair) or an aggregate of channels.
///
/// `sent`/`dropped`/`duplicated`/`reordered` are filled by the
/// simulator's control fault model (see `netsim::fault::CtrlProfile`):
/// a message counts as `sent` when a lossy profile observed it,
/// `dropped` when the profile or a control partition discarded it,
/// `duplicated`/`reordered` when the corresponding impairment was
/// applied. `retransmitted` is owned by the protocol layer above —
/// agents and controllers count their recovery resends here when a
/// rollup is assembled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtrlStats {
    /// Messages observed by an active lossy profile.
    pub sent: u64,
    /// Messages discarded (probabilistic drop or control partition).
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages given extra jitter past later sends.
    pub reordered: u64,
    /// Protocol-level recovery resends (filled by the layer above).
    pub retransmitted: u64,
}

impl CtrlStats {
    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &CtrlStats) {
        self.sent += other.sent;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.retransmitted += other.retransmitted;
    }
}

/// An aggregated view over a group of measurement points — e.g. all the
/// sinks of one fabric pod, rolled up into a per-pod row.
///
/// Rollups compose: merge per-sink rollups into a per-pod rollup, then
/// per-pod rollups into a fabric total.
#[derive(Debug, Clone, Default)]
pub struct Rollup {
    /// Frames observed.
    pub frames: u64,
    /// Bytes observed.
    pub bytes: u64,
    /// Merged latency samples (nanoseconds).
    pub latency: Histogram,
    /// Flows promoted from packet-level to flow-level simulation.
    pub flows_promoted: u64,
    /// Flows demoted back to packet-level simulation.
    pub flows_demoted: u64,
    /// Conservative-window rate/volume updates applied to modeled flows.
    pub window_updates: u64,
    /// Bytes advanced analytically while flows were cache-resident.
    pub bytes_modeled: u64,
    /// Bytes carried by per-frame Deliver events (packet-level).
    pub bytes_simulated: u64,
    /// Control-channel impairment counters (drops, dups, reorders,
    /// protocol retransmits) for the channels this rollup covers.
    pub ctrl: CtrlStats,
}

impl Rollup {
    /// An empty rollup.
    pub fn new() -> Rollup {
        Rollup::default()
    }

    /// Fold one measurement point into the rollup.
    pub fn absorb(&mut self, frames: u64, bytes: u64, latency: &Histogram) {
        self.frames += frames;
        self.bytes += bytes;
        self.latency.merge(latency);
    }

    /// Fold another rollup into this one.
    pub fn merge(&mut self, other: &Rollup) {
        self.frames += other.frames;
        self.bytes += other.bytes;
        self.latency.merge(&other.latency);
        self.flows_promoted += other.flows_promoted;
        self.flows_demoted += other.flows_demoted;
        self.window_updates += other.window_updates;
        self.bytes_modeled += other.bytes_modeled;
        self.bytes_simulated += other.bytes_simulated;
        self.ctrl.merge(&other.ctrl);
    }
}

/// One service interruption observed by an [`SloMeter`]: the half-open
/// interval (nanoseconds) during which a flow received nothing for
/// longer than the outage threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// When service was last seen before the gap (ns).
    pub start_ns: u64,
    /// When service resumed — or the measurement window closed (ns).
    pub end_ns: u64,
}

impl Outage {
    /// Length of the interruption in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Per-flow service-level meter: turns a stream of arrival timestamps
/// into downtime, outage intervals and time-to-reconverge.
///
/// Feed it every arrival with [`SloMeter::observe`] and close the
/// window with [`SloMeter::finish`]. Any inter-arrival gap longer than
/// the threshold counts as an outage from the last arrival before the
/// gap to the arrival that ended it; a flow still dark at `finish`
/// accrues a trailing outage to the end of the window. Fully
/// deterministic — it only folds over simulated timestamps.
#[derive(Debug, Clone)]
pub struct SloMeter {
    threshold_ns: u64,
    first_rx_ns: Option<u64>,
    last_rx_ns: Option<u64>,
    outages: Vec<Outage>,
    finished: bool,
}

impl SloMeter {
    /// A meter that calls any service gap longer than `threshold_ns` an
    /// outage.
    pub fn new(threshold_ns: u64) -> SloMeter {
        SloMeter {
            threshold_ns,
            first_rx_ns: None,
            last_rx_ns: None,
            outages: Vec::new(),
            finished: false,
        }
    }

    /// The configured outage threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Record one arrival at `now_ns` (must be fed in nondecreasing
    /// time order).
    pub fn observe(&mut self, now_ns: u64) {
        if let Some(last) = self.last_rx_ns {
            if now_ns.saturating_sub(last) > self.threshold_ns {
                self.outages.push(Outage {
                    start_ns: last,
                    end_ns: now_ns,
                });
            }
        }
        if self.first_rx_ns.is_none() {
            self.first_rx_ns = Some(now_ns);
        }
        self.last_rx_ns = Some(now_ns);
    }

    /// Close the measurement window at `end_ns`: a flow that went dark
    /// before the end accrues one trailing outage. Idempotent per
    /// window; further arrivals are not expected afterwards.
    pub fn finish(&mut self, end_ns: u64) {
        if self.finished {
            return;
        }
        self.finished = true;
        if let Some(last) = self.last_rx_ns {
            if end_ns.saturating_sub(last) > self.threshold_ns {
                self.outages.push(Outage {
                    start_ns: last,
                    end_ns,
                });
            }
        }
    }

    /// The recorded outage intervals, in time order.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Total downtime in nanoseconds (sum of all outages).
    pub fn downtime_ns(&self) -> u64 {
        self.outages.iter().map(Outage::duration_ns).sum()
    }

    /// The longest single outage in nanoseconds (0 if none).
    pub fn worst_outage_ns(&self) -> u64 {
        self.outages
            .iter()
            .map(Outage::duration_ns)
            .max()
            .unwrap_or(0)
    }

    /// When the flow last recovered: the end of the final outage, i.e.
    /// the time-to-reconverge measured from time zero. `None` if the
    /// flow never suffered an outage.
    pub fn reconverged_at_ns(&self) -> Option<u64> {
        self.outages.last().map(|o| o.end_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollup_composes() {
        let mut h = Histogram::new();
        h.record(100);
        let mut pod = Rollup::new();
        pod.absorb(2, 128, &h);
        pod.absorb(1, 64, &h);
        assert_eq!(pod.frames, 3);
        assert_eq!(pod.bytes, 192);
        assert_eq!(pod.latency.count(), 2);
        let mut total = Rollup::new();
        total.merge(&pod);
        total.merge(&pod);
        assert_eq!(total.frames, 6);
        assert_eq!(total.latency.count(), 4);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
        assert_eq!(h.percentile(100.0), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1_000); // 1µs .. 10ms in ns
        }
        let p50 = h.p50();
        let p99 = h.p99();
        // log-linear bucketing: within ~4% of the true value
        assert!(
            (p50 as f64 - 5_000_000.0).abs() / 5_000_000.0 < 0.04,
            "p50={p50}"
        );
        assert!(
            (p99 as f64 - 9_900_000.0).abs() / 9_900_000.0 < 0.04,
            "p99={p99}"
        );
        assert!((h.mean() - 5_000_500.0 * 1.0).abs() / 5_000_500.0 < 0.001);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn single_sample() {
        let mut h = Histogram::new();
        h.record(777);
        assert_eq!(h.p50(), h.percentile(100.0));
        assert!(h.p50() <= 777 && h.p50() >= 752, "p50={}", h.p50());
        assert_eq!(h.max(), 777);
        assert_eq!(h.min(), 777);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn slo_meter_detects_gaps_and_reconvergence() {
        let mut m = SloMeter::new(1_000); // 1 µs threshold
        for t in [0u64, 500, 1_000, 5_000, 5_500, 6_000] {
            m.observe(t);
        }
        m.finish(10_000);
        // One mid-stream outage (1_000 → 5_000) and one trailing outage
        // (6_000 → 10_000).
        assert_eq!(m.outages().len(), 2);
        assert_eq!(m.downtime_ns(), 4_000 + 4_000);
        assert_eq!(m.worst_outage_ns(), 4_000);
        assert_eq!(m.reconverged_at_ns(), Some(10_000));
    }

    #[test]
    fn slo_meter_clean_flow_has_no_outages() {
        let mut m = SloMeter::new(2_000);
        for t in (0..10).map(|i| i * 1_000) {
            m.observe(t);
        }
        m.finish(10_000);
        assert!(m.outages().is_empty());
        assert_eq!(m.downtime_ns(), 0);
        assert_eq!(m.reconverged_at_ns(), None);
    }

    #[test]
    fn slo_meter_finish_is_idempotent() {
        let mut m = SloMeter::new(100);
        m.observe(0);
        m.finish(1_000);
        m.finish(2_000);
        assert_eq!(m.outages().len(), 1);
        assert_eq!(m.downtime_ns(), 1_000);
    }

    #[test]
    fn bucket_index_monotonic() {
        let mut last = 0usize;
        for v in (0..10_000_000u64).step_by(997) {
            let i = Histogram::index(v);
            assert!(i >= last, "index must be monotonic in value");
            last = i;
        }
    }
}
