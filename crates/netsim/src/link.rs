//! Point-to-point duplex links with rate, propagation delay and a bounded
//! tail-drop egress queue per direction.

use bytes::Bytes;
use std::collections::VecDeque;

use crate::time::SimTime;

/// Per-frame wire overhead of real Ethernet in bytes: preamble (7) +
/// SFD (1) + FCS (4) + inter-frame gap (12). Included in serialization
/// time so that RFC 2544-style numbers line up with hardware testers.
pub const ETHERNET_WIRE_OVERHEAD: u32 = 24;

/// Static parameters of one link (applied to both directions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Line rate in bits per second. `0` means infinitely fast.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub delay: SimTime,
    /// Egress queue capacity in bytes per direction; frames that would
    /// overflow it are tail-dropped.
    pub queue_bytes: usize,
    /// Extra bytes charged per frame on the wire (preamble/FCS/IFG).
    pub overhead_bytes: u32,
}

impl LinkSpec {
    /// 1 Gbit/s, 1 µs delay, 512 KiB queue — a typical copper access link.
    pub fn gigabit() -> LinkSpec {
        LinkSpec {
            rate_bps: 1_000_000_000,
            delay: SimTime::from_micros(1),
            queue_bytes: 512 * 1024,
            overhead_bytes: ETHERNET_WIRE_OVERHEAD,
        }
    }

    /// 10 Gbit/s, 1 µs delay, 2 MiB queue — server/trunk link.
    pub fn ten_gigabit() -> LinkSpec {
        LinkSpec {
            rate_bps: 10_000_000_000,
            delay: SimTime::from_micros(1),
            queue_bytes: 2 * 1024 * 1024,
            overhead_bytes: ETHERNET_WIRE_OVERHEAD,
        }
    }

    /// 40 Gbit/s trunk.
    pub fn forty_gigabit() -> LinkSpec {
        LinkSpec {
            rate_bps: 40_000_000_000,
            queue_bytes: 8 * 1024 * 1024,
            delay: SimTime::from_micros(1),
            overhead_bytes: ETHERNET_WIRE_OVERHEAD,
        }
    }

    /// An idealized instantaneous link (used for patch ports and tests).
    pub fn instant() -> LinkSpec {
        LinkSpec {
            rate_bps: 0,
            delay: SimTime::ZERO,
            queue_bytes: usize::MAX,
            overhead_bytes: 0,
        }
    }

    /// Builder-style rate override.
    pub fn with_rate_bps(mut self, rate: u64) -> Self {
        self.rate_bps = rate;
        self
    }

    /// Builder-style delay override.
    pub fn with_delay(mut self, delay: SimTime) -> Self {
        self.delay = delay;
        self
    }

    /// Builder-style queue override.
    pub fn with_queue_bytes(mut self, q: usize) -> Self {
        self.queue_bytes = q;
        self
    }

    /// Serialization time of one frame of `len` bytes on this link.
    pub fn ser_time(&self, len: usize) -> SimTime {
        SimTime::tx_time(len + self.overhead_bytes as usize, self.rate_bps)
    }
}

/// Counters kept per link direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames accepted onto the wire.
    pub tx_frames: u64,
    /// Payload bytes accepted (excluding wire overhead).
    pub tx_bytes: u64,
    /// Frames tail-dropped at the egress queue.
    pub dropped_frames: u64,
    /// Frames lost to a downed or disconnected link: queued or in flight
    /// when it went down, or transmitted into it while it was down.
    pub blackholed_frames: u64,
    /// High-water mark of queue occupancy in bytes.
    pub max_queue_bytes: usize,
}

/// One direction of a link: an egress queue feeding a serializer.
#[derive(Debug)]
pub(crate) struct LinkDir {
    pub spec: LinkSpec,
    /// Frames waiting for the serializer.
    pub queue: VecDeque<Bytes>,
    /// Bytes currently queued.
    pub queued_bytes: usize,
    /// Time the serializer becomes free.
    pub busy_until: SimTime,
    /// Whether a TxDone event is outstanding.
    pub tx_in_flight: bool,
    /// Administratively/faulted down: frames offered to (or queued on)
    /// the direction are blackholed instead of delivered.
    pub down: bool,
    /// The link was torn out (host detach): it stays as a tombstone so
    /// late events referencing it resolve safely, and its port slot may
    /// be reused by a later re-attach.
    pub dead: bool,
    pub stats: LinkStats,
}

impl LinkDir {
    pub fn new(spec: LinkSpec) -> LinkDir {
        LinkDir {
            spec,
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy_until: SimTime::ZERO,
            tx_in_flight: false,
            down: false,
            dead: false,
            stats: LinkStats::default(),
        }
    }

    /// Take the direction down: everything queued is blackholed and
    /// further enqueues blackhole until [`LinkDir::bring_up`].
    pub fn take_down(&mut self) {
        self.down = true;
        self.stats.blackholed_frames += self.queue.len() as u64;
        self.queue.clear();
        self.queued_bytes = 0;
    }

    /// Bring the direction back up. The serializer state is untouched:
    /// `busy_until` in the past simply means it is idle.
    pub fn bring_up(&mut self) {
        self.down = false;
    }

    /// Try to enqueue a frame; returns false on tail drop.
    pub fn enqueue(&mut self, frame: Bytes) -> bool {
        let len = frame.len();
        if self.down {
            self.stats.blackholed_frames += 1;
            return false;
        }
        if self.queued_bytes + len > self.spec.queue_bytes {
            self.stats.dropped_frames += 1;
            return false;
        }
        self.queued_bytes += len;
        self.queue.push_back(frame);
        self.stats.max_queue_bytes = self.stats.max_queue_bytes.max(self.queued_bytes);
        true
    }

    /// Pop the next frame for serialization, if any.
    pub fn dequeue(&mut self) -> Option<Bytes> {
        let f = self.queue.pop_front()?;
        self.queued_bytes -= f.len();
        self.stats.tx_frames += 1;
        self.stats.tx_bytes += f.len() as u64;
        Some(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ser_time_includes_overhead() {
        let spec = LinkSpec::gigabit();
        // 60-byte frame + 24 bytes overhead = 84 bytes = 672 ns at 1 Gbps.
        assert_eq!(spec.ser_time(60), SimTime::from_nanos(672));
    }

    #[test]
    fn tail_drop_when_full() {
        let spec = LinkSpec::gigabit().with_queue_bytes(100);
        let mut dir = LinkDir::new(spec);
        assert!(dir.enqueue(Bytes::from(vec![0u8; 60])));
        assert!(!dir.enqueue(Bytes::from(vec![0u8; 60])));
        assert_eq!(dir.stats.dropped_frames, 1);
        assert_eq!(dir.queued_bytes, 60);
    }

    #[test]
    fn dequeue_updates_counters() {
        let mut dir = LinkDir::new(LinkSpec::gigabit());
        dir.enqueue(Bytes::from(vec![0u8; 100]));
        let f = dir.dequeue().unwrap();
        assert_eq!(f.len(), 100);
        assert_eq!(dir.stats.tx_frames, 1);
        assert_eq!(dir.stats.tx_bytes, 100);
        assert_eq!(dir.queued_bytes, 0);
        assert!(dir.dequeue().is_none());
    }

    #[test]
    fn instant_link_serializes_in_zero_time() {
        assert_eq!(LinkSpec::instant().ser_time(9000), SimTime::ZERO);
    }
}
