//! Scheduled fault injection: link flaps, node reboots.
//!
//! A [`FaultPlan`] is a declarative schedule of faults built before (or
//! between) `run_*` calls and armed with
//! [`crate::Network::apply_faults`]. Each entry becomes an ordinary
//! event in the owning shard's queue, so faults ride the same
//! conservative window machinery as frames and timers: the schedule is
//! **bit-identical for any thread count**.
//!
//! Semantics:
//!
//! * **Link down** — both directions of the duplex link go down at the
//!   same instant. Frames queued on either direction are blackholed,
//!   frames transmitted into a downed direction are blackholed, and
//!   frames already in flight are blackholed *on arrival* (delivery
//!   checks the receiving port's link state). A frame transmitted
//!   before the fault whose arrival postdates the matching link-up
//!   survives — the flap was shorter than its remaining flight time.
//! * **Link up** — both directions come back; queued traffic resumes.
//! * **Reset** — the node's [`crate::Node::on_reset`] hook fires: the
//!   device drops whatever a real power cycle would lose.
//!
//! Blackholed frames are counted (per direction in
//! [`crate::LinkStats::blackholed_frames`], in-flight losses at the
//! shard) and totalled by [`crate::Network::blackholed_frames`].

use crate::net::NodeId;
use crate::node::PortId;
use crate::time::SimTime;

/// One fault. Link faults name either end of the link — `(node, port)`
/// identifies the duplex pair, and both directions are affected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Take the link attached to `(node, port)` down (both directions).
    LinkDown {
        /// Either endpoint of the link.
        node: NodeId,
        /// The endpoint's port.
        port: PortId,
    },
    /// Bring the link attached to `(node, port)` back up.
    LinkUp {
        /// Either endpoint of the link.
        node: NodeId,
        /// The endpoint's port.
        port: PortId,
    },
    /// Power-cycle `node`: its [`crate::Node::on_reset`] hook fires.
    Reset {
        /// The node to reboot.
        node: NodeId,
    },
}

/// A deterministic schedule of [`Fault`]s.
///
/// Build with the chained constructors, then arm it with
/// [`crate::Network::apply_faults`]. Entries at the same instant fire
/// in insertion order; the whole schedule is independent of the thread
/// count.
///
/// ```
/// use netsim::{FaultPlan, NodeId, PortId, SimTime};
/// let plan = FaultPlan::new()
///     .link_flap(
///         SimTime::from_millis(10),
///         SimTime::from_millis(5),
///         NodeId(3),
///         PortId(1),
///     )
///     .reset(SimTime::from_millis(30), NodeId(7));
/// assert_eq!(plan.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(SimTime, Fault)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule a raw [`Fault`] at `at`.
    pub fn push(mut self, at: SimTime, fault: Fault) -> Self {
        self.entries.push((at, fault));
        self
    }

    /// Take the link at `(node, port)` down at `at`.
    pub fn link_down(self, at: SimTime, node: NodeId, port: PortId) -> Self {
        self.push(at, Fault::LinkDown { node, port })
    }

    /// Bring the link at `(node, port)` up at `at`.
    pub fn link_up(self, at: SimTime, node: NodeId, port: PortId) -> Self {
        self.push(at, Fault::LinkUp { node, port })
    }

    /// Flap the link at `(node, port)`: down at `at`, up again
    /// `duration` later.
    pub fn link_flap(self, at: SimTime, duration: SimTime, node: NodeId, port: PortId) -> Self {
        self.link_down(at, node, port)
            .link_up(at + duration, node, port)
    }

    /// Power-cycle `node` at `at`.
    pub fn reset(self, at: SimTime, node: NodeId) -> Self {
        self.push(at, Fault::Reset { node })
    }

    /// The scheduled entries in time order (ties keep insertion order).
    pub fn entries(&self) -> Vec<(SimTime, Fault)> {
        let mut v = self.entries.clone();
        v.sort_by_key(|(at, _)| *at); // stable: same-instant entries keep order
        v
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_sort_by_time_keeping_insertion_order_on_ties() {
        let t = SimTime::from_millis(1);
        let plan = FaultPlan::new()
            .reset(SimTime::from_millis(2), NodeId(1))
            .link_down(t, NodeId(0), PortId(0))
            .link_up(t, NodeId(0), PortId(0));
        let e = plan.entries();
        assert_eq!(e.len(), 3);
        assert!(matches!(e[0].1, Fault::LinkDown { .. }));
        assert!(matches!(e[1].1, Fault::LinkUp { .. }));
        assert!(matches!(e[2].1, Fault::Reset { .. }));
    }

    #[test]
    fn flap_expands_to_down_then_up() {
        let plan = FaultPlan::new().link_flap(
            SimTime::from_millis(3),
            SimTime::from_millis(2),
            NodeId(4),
            PortId(2),
        );
        let e = plan.entries();
        assert_eq!(e[0].0, SimTime::from_millis(3));
        assert_eq!(e[1].0, SimTime::from_millis(5));
    }
}
