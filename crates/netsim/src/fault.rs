//! Scheduled fault injection: link flaps, node reboots, control-plane
//! partitions and lossy control channels.
//!
//! A [`FaultPlan`] is a declarative schedule of faults built before (or
//! between) `run_*` calls and armed with
//! [`crate::Network::apply_faults`]. Each entry becomes an ordinary
//! event in the owning shard's queue, so faults ride the same
//! conservative window machinery as frames and timers: the schedule is
//! **bit-identical for any thread count**.
//!
//! Semantics:
//!
//! * **Link down** — both directions of the duplex link go down at the
//!   same instant. Frames queued on either direction are blackholed,
//!   frames transmitted into a downed direction are blackholed, and
//!   frames already in flight are blackholed *on arrival* (delivery
//!   checks the receiving port's link state). A frame transmitted
//!   before the fault whose arrival postdates the matching link-up
//!   survives — the flap was shorter than its remaining flight time.
//! * **Link up** — both directions come back; queued traffic resumes.
//! * **Reset** — the node's [`crate::Node::on_reset`] hook fires: the
//!   device drops whatever a real power cycle would lose.
//! * **Ctrl down / up** — the named node is partitioned from the
//!   out-of-band control plane: control messages from or to it are
//!   discarded at send time (and on delivery, for messages already in
//!   flight when the partition begins). The partition state is
//!   replicated into **every** shard's queue at the same instant, so a
//!   sender's shard can decide locally and the schedule stays
//!   bit-identical for any thread count.
//!
//! Beyond scheduled faults, a stochastic [`CtrlProfile`] (armed with
//! [`crate::Network::set_ctrl_profile`]) impairs every control message
//! with probabilistic drop, duplication, bounded reorder jitter and
//! fixed extra delay. Decisions are drawn from the **sending shard's**
//! RNG stream at send time — the only point where the message order is
//! already deterministic — and extra latency is always added on top of
//! the base control delay, so the conservative lookahead still holds
//! and lossy runs remain bit-identical for any thread count.
//!
//! Blackholed frames are counted (per direction in
//! [`crate::LinkStats::blackholed_frames`], in-flight losses at the
//! shard) and totalled by [`crate::Network::blackholed_frames`];
//! control-message impairments are counted per channel in
//! [`crate::stats::CtrlStats`] and totalled by
//! [`crate::Network::ctrl_stats`].

use crate::net::NodeId;
use crate::node::PortId;
use crate::time::SimTime;

/// One fault. Link faults name either end of the link — `(node, port)`
/// identifies the duplex pair, and both directions are affected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Take the link attached to `(node, port)` down (both directions).
    LinkDown {
        /// Either endpoint of the link.
        node: NodeId,
        /// The endpoint's port.
        port: PortId,
    },
    /// Bring the link attached to `(node, port)` back up.
    LinkUp {
        /// Either endpoint of the link.
        node: NodeId,
        /// The endpoint's port.
        port: PortId,
    },
    /// Power-cycle `node`: its [`crate::Node::on_reset`] hook fires.
    Reset {
        /// The node to reboot.
        node: NodeId,
    },
    /// Partition `node` from the out-of-band control plane: control
    /// messages from or to it are discarded until a matching
    /// [`Fault::CtrlUp`].
    CtrlDown {
        /// The node to partition.
        node: NodeId,
    },
    /// Heal the control-plane partition of `node`.
    CtrlUp {
        /// The node to reconnect.
        node: NodeId,
    },
}

/// A stochastic impairment profile for the out-of-band control channel,
/// armed network-wide with [`crate::Network::set_ctrl_profile`].
///
/// Each control message is (in this order) dropped with probability
/// `drop`; duplicated with probability `dup` (the copy arrives at the
/// same instant, ordered after the original); and jittered with
/// probability `reorder` by a uniform extra delay in
/// `(0, reorder_bound]`, which lets it overtake or fall behind
/// neighbouring sends — a *bounded* reorder. `extra_delay` is added to
/// every message unconditionally. All randomness comes from the sending
/// shard's RNG stream, so an armed profile is bit-identical for any
/// thread count; a no-op profile (the default) draws nothing and leaves
/// historical RNG streams untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtrlProfile {
    /// Probability each message is discarded.
    pub drop: f64,
    /// Probability each message is delivered twice.
    pub dup: f64,
    /// Probability each message receives reorder jitter.
    pub reorder: f64,
    /// Upper bound of the reorder jitter (uniform in `(0, bound]`).
    pub reorder_bound: SimTime,
    /// Fixed extra delay added to every message.
    pub extra_delay: SimTime,
}

impl Default for CtrlProfile {
    fn default() -> Self {
        CtrlProfile {
            drop: 0.0,
            dup: 0.0,
            reorder: 0.0,
            reorder_bound: SimTime::ZERO,
            extra_delay: SimTime::ZERO,
        }
    }
}

impl CtrlProfile {
    /// The transparent profile: no impairment, no RNG draws.
    pub fn lossless() -> CtrlProfile {
        CtrlProfile::default()
    }

    /// A profile that drops each message with probability `drop`.
    pub fn lossy(drop: f64) -> CtrlProfile {
        CtrlProfile {
            drop,
            ..CtrlProfile::default()
        }
    }

    /// Set the duplication probability.
    pub fn with_dup(mut self, dup: f64) -> Self {
        self.dup = dup;
        self
    }

    /// Set the reorder probability and jitter bound.
    pub fn with_reorder(mut self, reorder: f64, bound: SimTime) -> Self {
        self.reorder = reorder;
        self.reorder_bound = bound;
        self
    }

    /// Set the fixed extra delay added to every message.
    pub fn with_extra_delay(mut self, extra: SimTime) -> Self {
        self.extra_delay = extra;
        self
    }

    /// True when the profile impairs nothing (the fast path: no RNG
    /// draws, no per-message accounting).
    pub fn is_noop(&self) -> bool {
        self.drop == 0.0
            && self.dup == 0.0
            && self.reorder == 0.0
            && self.extra_delay == SimTime::ZERO
    }
}

/// A deterministic schedule of [`Fault`]s.
///
/// Build with the chained constructors, then arm it with
/// [`crate::Network::apply_faults`]. Entries at the same instant fire
/// in insertion order; the whole schedule is independent of the thread
/// count.
///
/// ```
/// use netsim::{FaultPlan, NodeId, PortId, SimTime};
/// let plan = FaultPlan::new()
///     .link_flap(
///         SimTime::from_millis(10),
///         SimTime::from_millis(5),
///         NodeId(3),
///         PortId(1),
///     )
///     .reset(SimTime::from_millis(30), NodeId(7));
/// assert_eq!(plan.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(SimTime, Fault)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule a raw [`Fault`] at `at`.
    pub fn push(mut self, at: SimTime, fault: Fault) -> Self {
        self.entries.push((at, fault));
        self
    }

    /// Take the link at `(node, port)` down at `at`.
    pub fn link_down(self, at: SimTime, node: NodeId, port: PortId) -> Self {
        self.push(at, Fault::LinkDown { node, port })
    }

    /// Bring the link at `(node, port)` up at `at`.
    pub fn link_up(self, at: SimTime, node: NodeId, port: PortId) -> Self {
        self.push(at, Fault::LinkUp { node, port })
    }

    /// Flap the link at `(node, port)`: down at `at`, up again
    /// `duration` later.
    pub fn link_flap(self, at: SimTime, duration: SimTime, node: NodeId, port: PortId) -> Self {
        self.link_down(at, node, port)
            .link_up(at + duration, node, port)
    }

    /// Power-cycle `node` at `at`.
    pub fn reset(self, at: SimTime, node: NodeId) -> Self {
        self.push(at, Fault::Reset { node })
    }

    /// Partition `node` from the control plane at `at`.
    pub fn ctrl_down(self, at: SimTime, node: NodeId) -> Self {
        self.push(at, Fault::CtrlDown { node })
    }

    /// Heal the control-plane partition of `node` at `at`.
    pub fn ctrl_up(self, at: SimTime, node: NodeId) -> Self {
        self.push(at, Fault::CtrlUp { node })
    }

    /// Partition `node` from the control plane for `duration` starting
    /// at `at`.
    pub fn ctrl_partition(self, at: SimTime, duration: SimTime, node: NodeId) -> Self {
        self.ctrl_down(at, node).ctrl_up(at + duration, node)
    }

    /// Crash `node` at `at` with no recovery: it loses all state
    /// ([`crate::Node::on_reset`]) and stays partitioned from the
    /// control plane forever.
    pub fn crash(self, at: SimTime, node: NodeId) -> Self {
        self.ctrl_down(at, node).reset(at, node)
    }

    /// Crash `node` at `at` and bring it back `outage` later: state is
    /// lost at the crash instant and the control plane reconnects at
    /// `at + outage` — the node restarts blank and must be resynced by
    /// its peers.
    pub fn crash_restart(self, at: SimTime, outage: SimTime, node: NodeId) -> Self {
        self.crash(at, node).ctrl_up(at + outage, node)
    }

    /// The scheduled entries in time order (ties keep insertion order).
    pub fn entries(&self) -> Vec<(SimTime, Fault)> {
        let mut v = self.entries.clone();
        v.sort_by_key(|(at, _)| *at); // stable: same-instant entries keep order
        v
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_sort_by_time_keeping_insertion_order_on_ties() {
        let t = SimTime::from_millis(1);
        let plan = FaultPlan::new()
            .reset(SimTime::from_millis(2), NodeId(1))
            .link_down(t, NodeId(0), PortId(0))
            .link_up(t, NodeId(0), PortId(0));
        let e = plan.entries();
        assert_eq!(e.len(), 3);
        assert!(matches!(e[0].1, Fault::LinkDown { .. }));
        assert!(matches!(e[1].1, Fault::LinkUp { .. }));
        assert!(matches!(e[2].1, Fault::Reset { .. }));
    }

    #[test]
    fn crash_restart_expands_to_down_reset_up() {
        let plan = FaultPlan::new().crash_restart(
            SimTime::from_millis(10),
            SimTime::from_millis(4),
            NodeId(2),
        );
        let e = plan.entries();
        assert_eq!(e.len(), 3);
        assert!(matches!(e[0].1, Fault::CtrlDown { node: NodeId(2) }));
        assert!(matches!(e[1].1, Fault::Reset { node: NodeId(2) }));
        assert_eq!(
            e[2],
            (SimTime::from_millis(14), Fault::CtrlUp { node: NodeId(2) })
        );
    }

    #[test]
    fn noop_profile_detection() {
        assert!(CtrlProfile::lossless().is_noop());
        assert!(!CtrlProfile::lossy(0.1).is_noop());
        assert!(!CtrlProfile::lossless()
            .with_extra_delay(SimTime::from_micros(1))
            .is_noop());
        assert!(!CtrlProfile::lossless()
            .with_reorder(0.5, SimTime::from_micros(10))
            .is_noop());
    }

    #[test]
    fn flap_expands_to_down_then_up() {
        let plan = FaultPlan::new().link_flap(
            SimTime::from_millis(3),
            SimTime::from_millis(2),
            NodeId(4),
            PortId(2),
        );
        let e = plan.entries();
        assert_eq!(e[0].0, SimTime::from_millis(3));
        assert_eq!(e[1].0, SimTime::from_millis(5));
    }
}
