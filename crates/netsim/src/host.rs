//! A minimal end host: one NIC, an ARP resolver/responder, an ICMP echo
//! responder, UDP send/receive with a mailbox, and a TCP SYN counter.
//!
//! Hosts are the endpoints of the use-case demos (DMZ, parental control,
//! quickstart ping) — they generate *correct* protocol exchanges so the
//! switches under test see realistic traffic.

use bytes::Bytes;
use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use netpkt::{
    builder, ArpOp, ArpPacket, ArpRepr, EtherType, EthernetFrame, FlowKey, Icmpv4Type, IpProto,
    Ipv4Packet, MacAddr, TcpPacket, UdpPacket,
};

use crate::node::{Node, NodeCtx, PortId};
use crate::time::SimTime;

/// The single NIC port of every host.
pub const NIC: PortId = PortId(0);

/// A frame waiting for ARP resolution.
enum Pending {
    Udp {
        dst_ip: Ipv4Addr,
        dst_port: u16,
        src_port: u16,
        payload: Vec<u8>,
    },
    Ping {
        dst_ip: Ipv4Addr,
        payload: Vec<u8>,
    },
    TcpSyn {
        dst_ip: Ipv4Addr,
        dst_port: u16,
        src_port: u16,
    },
}

/// A received UDP datagram kept in the mailbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Arrival time.
    pub at: SimTime,
    /// Sender IP.
    pub src_ip: Ipv4Addr,
    /// Sender UDP port.
    pub src_port: u16,
    /// Destination UDP port.
    pub dst_port: u16,
    /// Payload bytes — a zero-copy slice of the delivered frame's
    /// backing storage (refcount bump, no allocation per datagram).
    pub payload: Bytes,
}

/// A simulated end host.
pub struct Host {
    name: String,
    mac: MacAddr,
    ip: Ipv4Addr,
    arp_table: HashMap<Ipv4Addr, MacAddr>,
    pending: Vec<Pending>,
    mailbox: Vec<Datagram>,
    echo_replies: u64,
    echo_requests_answered: u64,
    syns_received: u64,
    syn_acks_received: u64,
    rx_frames: u64,
    ping_seq: u16,
    udp_src_seq: u16,
}

impl Host {
    /// Create a host with the given L2/L3 identity.
    pub fn new(name: impl Into<String>, mac: MacAddr, ip: Ipv4Addr) -> Host {
        Host {
            name: name.into(),
            mac,
            ip,
            arp_table: HashMap::new(),
            pending: Vec::new(),
            mailbox: Vec::new(),
            echo_replies: 0,
            echo_requests_answered: 0,
            syns_received: 0,
            syn_acks_received: 0,
            rx_frames: 0,
            ping_seq: 0,
            udp_src_seq: 40_000,
        }
    }

    /// This host's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// This host's IPv4 address.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// Echo replies received (successful pings).
    pub fn echo_replies_received(&self) -> u64 {
        self.echo_replies
    }

    /// Echo requests this host answered.
    pub fn echo_requests_answered(&self) -> u64 {
        self.echo_requests_answered
    }

    /// TCP SYNs received (the host always answers SYN+ACK).
    pub fn syns_received(&self) -> u64 {
        self.syns_received
    }

    /// TCP SYN+ACKs received (successful "connections" initiated by us).
    pub fn syn_acks_received(&self) -> u64 {
        self.syn_acks_received
    }

    /// Total frames delivered to this host.
    pub fn rx_frames(&self) -> u64 {
        self.rx_frames
    }

    /// Received UDP datagrams addressed to us.
    pub fn mailbox(&self) -> &[Datagram] {
        &self.mailbox
    }

    /// The learned ARP table.
    pub fn arp_table(&self) -> &HashMap<Ipv4Addr, MacAddr> {
        &self.arp_table
    }

    /// Sends still waiting for ARP resolution.
    pub fn pending_sends(&self) -> usize {
        self.pending.len()
    }

    /// Queue an ICMP echo request to `dst_ip` (resolving ARP first if
    /// needed). Effective on the next simulation event; typically called
    /// through [`crate::Network::with_node_ctx`].
    pub fn ping(&mut self, payload: &[u8], dst_ip: Ipv4Addr) {
        self.pending.push(Pending::Ping {
            dst_ip,
            payload: payload.to_vec(),
        });
    }

    /// Queue a UDP datagram to `dst_ip:dst_port`.
    pub fn send_udp(&mut self, dst_ip: Ipv4Addr, dst_port: u16, payload: &[u8]) {
        self.udp_src_seq = self.udp_src_seq.wrapping_add(1).max(1024);
        self.pending.push(Pending::Udp {
            dst_ip,
            dst_port,
            src_port: self.udp_src_seq,
            payload: payload.to_vec(),
        });
    }

    /// Queue a TCP SYN ("connection attempt") to `dst_ip:dst_port`.
    pub fn connect_tcp(&mut self, dst_ip: Ipv4Addr, dst_port: u16) {
        self.udp_src_seq = self.udp_src_seq.wrapping_add(1).max(1024);
        self.pending.push(Pending::TcpSyn {
            dst_ip,
            dst_port,
            src_port: self.udp_src_seq,
        });
    }

    /// Flush queued sends now. Needed when queueing traffic from outside
    /// an event (e.g. through [`crate::Network::with_node_ctx`]) after the
    /// simulation has started; `on_start`/`on_packet`/`on_timer` flush
    /// automatically.
    pub fn flush(&mut self, ctx: &mut NodeCtx) {
        self.flush_pending(ctx, true);
    }

    /// Flush any queued sends whose next hop is resolved. With `arp`,
    /// broadcast an ARP request for each unresolved destination.
    ///
    /// Only *send-time* flushes pass `arp = true`. Frame-triggered
    /// flushes must not: broadcast ARP traffic reaches every host in the
    /// broadcast domain, and hosts that re-ARP for their own unresolved
    /// destinations on every incoming ARP frame amplify each other —
    /// in a multi-pod fabric where all hosts resolve at once, that
    /// cascade grows combinatorially with the pod count (observed as
    /// hundreds of thousands of spurious packet-ins on a 4-pod fabric).
    /// Real stacks queue on the ARP entry and retransmit on a timer, not
    /// on receipt of unrelated ARP frames.
    ///
    /// Consequence: the host itself never retries — if the one
    /// send-time ARP request (or its reply) is tail-dropped, the
    /// pending send waits until the next send-time flush. This host has
    /// no autonomous timers, so drivers that run hosts into sustained
    /// overload should either provision queues for the ARP burst (as
    /// the fabric experiments do) or schedule a retry timer —
    /// [`Node::on_timer`] re-flushes with `arp = true`. Convergence
    /// assertions in the experiments catch a stranded send loudly.
    fn flush_pending(&mut self, ctx: &mut NodeCtx, arp: bool) {
        let mut keep = Vec::new();
        let pending = std::mem::take(&mut self.pending);
        let mut arped: Vec<Ipv4Addr> = Vec::new();
        for p in pending {
            let dst_ip = match &p {
                Pending::Udp { dst_ip, .. } => *dst_ip,
                Pending::Ping { dst_ip, .. } => *dst_ip,
                Pending::TcpSyn { dst_ip, .. } => *dst_ip,
            };
            match self.arp_table.get(&dst_ip).copied() {
                Some(dst_mac) => self.send_now(p, dst_mac, ctx),
                None => {
                    if arp && !arped.contains(&dst_ip) {
                        arped.push(dst_ip);
                        ctx.transmit(NIC, builder::arp_request(self.mac, self.ip, dst_ip));
                    }
                    keep.push(p);
                }
            }
        }
        self.pending = keep;
    }

    fn send_now(&mut self, p: Pending, dst_mac: MacAddr, ctx: &mut NodeCtx) {
        match p {
            Pending::Udp {
                dst_ip,
                dst_port,
                src_port,
                payload,
            } => {
                let f = builder::udp_packet(
                    self.mac, dst_mac, self.ip, dst_ip, src_port, dst_port, &payload,
                );
                ctx.transmit(NIC, f);
            }
            Pending::Ping { dst_ip, payload } => {
                self.ping_seq = self.ping_seq.wrapping_add(1);
                let f = builder::icmp_echo_request(
                    self.mac,
                    dst_mac,
                    self.ip,
                    dst_ip,
                    1,
                    self.ping_seq,
                    &payload,
                );
                ctx.transmit(NIC, f);
            }
            Pending::TcpSyn {
                dst_ip,
                dst_port,
                src_port,
            } => {
                let f = builder::tcp_packet(
                    self.mac,
                    dst_mac,
                    self.ip,
                    dst_ip,
                    src_port,
                    dst_port,
                    netpkt::tcp::flags::SYN,
                    b"",
                );
                ctx.transmit(NIC, f);
            }
        }
    }

    fn handle_arp(&mut self, frame: &[u8], ctx: &mut NodeCtx) {
        let eth = EthernetFrame::new_unchecked(frame);
        let Ok(arp) = ArpPacket::new_checked(eth.payload()) else {
            return;
        };
        let Ok(repr) = ArpRepr::parse(&arp) else {
            return;
        };
        // Learn the sender either way.
        self.arp_table.insert(repr.sender_ip, repr.sender_mac);
        match repr.op {
            ArpOp::Request if repr.target_ip == self.ip => {
                ctx.transmit(NIC, builder::arp_reply(&repr, self.mac));
            }
            _ => {}
        }
        // Send queued traffic the learned sender unblocks — without
        // re-ARPing for unrelated destinations (see `flush_pending`).
        self.flush_pending(ctx, false);
    }

    fn handle_ipv4(&mut self, frame: &Bytes, ctx: &mut NodeCtx) {
        let eth = EthernetFrame::new_unchecked(frame);
        let Ok(ip) = Ipv4Packet::new_checked(eth.payload()) else {
            return;
        };
        if ip.dst() != self.ip {
            return; // promiscuous traffic (e.g. flooded); not for us
        }
        match ip.proto() {
            IpProto::ICMP => {
                let Ok(icmp) = netpkt::Icmpv4Packet::new_checked(ip.payload()) else {
                    return;
                };
                match icmp.msg_type() {
                    Icmpv4Type::EchoRequest => {
                        self.echo_requests_answered += 1;
                        let reply = builder::icmp_echo_reply(
                            self.mac,
                            eth.src(),
                            self.ip,
                            ip.src(),
                            icmp.echo_ident(),
                            icmp.echo_seq(),
                            icmp.payload(),
                        );
                        ctx.transmit(NIC, reply);
                    }
                    Icmpv4Type::EchoReply => {
                        self.echo_replies += 1;
                    }
                    _ => {}
                }
            }
            IpProto::UDP => {
                let Ok(udp) = UdpPacket::new_checked(ip.payload()) else {
                    return;
                };
                self.mailbox.push(Datagram {
                    at: ctx.now(),
                    src_ip: ip.src(),
                    src_port: udp.src_port(),
                    dst_port: udp.dst_port(),
                    payload: frame.slice_ref(udp.payload()),
                });
            }
            IpProto::TCP => {
                let Ok(tcp) = TcpPacket::new_checked(ip.payload()) else {
                    return;
                };
                if tcp.is_syn() {
                    self.syns_received += 1;
                    // Answer SYN+ACK so the initiator can count success.
                    let f = builder::tcp_packet(
                        self.mac,
                        eth.src(),
                        self.ip,
                        ip.src(),
                        tcp.dst_port(),
                        tcp.src_port(),
                        netpkt::tcp::flags::SYN | netpkt::tcp::flags::ACK,
                        b"",
                    );
                    ctx.transmit(NIC, f);
                } else if tcp.flags() & netpkt::tcp::flags::SYN != 0
                    && tcp.flags() & netpkt::tcp::flags::ACK != 0
                {
                    self.syn_acks_received += 1;
                }
            }
            _ => {}
        }
    }
}

impl Node for Host {
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        self.flush_pending(ctx, true);
    }

    fn on_packet(&mut self, _port: PortId, frame: Bytes, ctx: &mut NodeCtx) {
        self.rx_frames += 1;
        let Ok(key) = FlowKey::extract(0, &frame) else {
            return;
        };
        // Hosts are access devices: a VLAN tag reaching a host means the
        // switch misdelivered; count it by ignoring.
        if key.vlan_vid != 0 {
            return;
        }
        match EtherType(key.eth_type) {
            EtherType::ARP => self.handle_arp(&frame, ctx),
            EtherType::IPV4 => self.handle_ipv4(&frame, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut NodeCtx) {
        self.flush_pending(ctx, true);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::net::Network;

    fn two_hosts() -> (Network, crate::net::NodeId, crate::net::NodeId) {
        let mut net = Network::new(5);
        let a = net.add_node(Host::new("a", MacAddr::host(1), Ipv4Addr::new(10, 0, 0, 1)));
        let b = net.add_node(Host::new("b", MacAddr::host(2), Ipv4Addr::new(10, 0, 0, 2)));
        net.connect(a, NIC, b, NIC, LinkSpec::gigabit());
        (net, a, b)
    }

    #[test]
    fn ping_back_to_back() {
        let (mut net, a, b) = two_hosts();
        net.node_mut::<Host>(a)
            .ping(b"hello", Ipv4Addr::new(10, 0, 0, 2));
        net.run_until(SimTime::from_millis(10));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 1);
        assert_eq!(net.node_ref::<Host>(b).echo_requests_answered(), 1);
        // ARP was learned both ways.
        assert_eq!(
            net.node_ref::<Host>(a).arp_table()[&Ipv4Addr::new(10, 0, 0, 2)],
            MacAddr::host(2)
        );
        assert_eq!(
            net.node_ref::<Host>(b).arp_table()[&Ipv4Addr::new(10, 0, 0, 1)],
            MacAddr::host(1)
        );
    }

    #[test]
    fn udp_lands_in_mailbox() {
        let (mut net, a, b) = two_hosts();
        net.node_mut::<Host>(a)
            .send_udp(Ipv4Addr::new(10, 0, 0, 2), 5353, b"query");
        net.run_until(SimTime::from_millis(10));
        let mb = net.node_ref::<Host>(b).mailbox();
        assert_eq!(mb.len(), 1);
        assert_eq!(&mb[0].payload[..], b"query");
        assert_eq!(mb[0].dst_port, 5353);
        assert_eq!(mb[0].src_ip, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn tcp_syn_gets_syn_ack() {
        let (mut net, a, b) = two_hosts();
        net.node_mut::<Host>(a)
            .connect_tcp(Ipv4Addr::new(10, 0, 0, 2), 80);
        net.run_until(SimTime::from_millis(10));
        assert_eq!(net.node_ref::<Host>(b).syns_received(), 1);
        assert_eq!(net.node_ref::<Host>(a).syn_acks_received(), 1);
    }

    #[test]
    fn host_ignores_foreign_ip() {
        let (mut net, a, b) = two_hosts();
        // a pings an address that belongs to nobody; b must not answer.
        net.node_mut::<Host>(a)
            .ping(b"x", Ipv4Addr::new(10, 0, 0, 99));
        net.run_until(SimTime::from_millis(10));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 0);
        assert_eq!(net.node_ref::<Host>(b).echo_requests_answered(), 0);
    }

    #[test]
    fn multiple_pings_resolve_arp_once() {
        let (mut net, a, b) = two_hosts();
        {
            let h = net.node_mut::<Host>(a);
            h.ping(b"1", Ipv4Addr::new(10, 0, 0, 2));
            h.ping(b"2", Ipv4Addr::new(10, 0, 0, 2));
            h.ping(b"3", Ipv4Addr::new(10, 0, 0, 2));
        }
        net.run_until(SimTime::from_millis(10));
        assert_eq!(net.node_ref::<Host>(a).echo_replies_received(), 3);
        assert_eq!(net.node_ref::<Host>(b).echo_requests_answered(), 3);
    }
}
