//! The persistent shard-worker runtime: a long-lived worker pool and
//! recycled mailbox buffers for the sharded engine.
//!
//! Before this module existed, every `run_until` call on a sharded
//! [`crate::Network`] spawned its worker threads, ran its windows, and
//! joined the threads again — and every window allocated fresh
//! `Vec<Remote>` mailbox buffers. Staggered experiment drivers call
//! `run_for` hundreds of times per round, so a single experiment paid
//! thousands of thread spawns and tens of thousands of allocations for
//! constants that have nothing to do with the simulated workload.
//!
//! The `Runtime` owns both constants:
//!
//! * **Workers are created once**, in [`crate::Network::set_threads`],
//!   and live until the network is dropped or the thread count is
//!   reconfigured. Between runs (and between the `Adopt`/`Release`
//!   handshakes of one run) each worker parks in `mpsc::Receiver::recv`
//!   — a condvar block, not a spin — and is unparked by the next
//!   command. `run_until`/`run_for` never touch `std::thread::spawn`.
//! * **Mailbox buffers are recycled** through a `BufPool` free-list:
//!   the per-window routing buckets, the per-worker outboxes, and the
//!   pending-mail scratch all draw from the pool and return to it, so a
//!   steady-state window performs no mailbox allocations at all.
//!
//! The window protocol itself is unchanged from the original spawn-join
//! engine: the coordinator routes cross-shard mail in total
//! `(time, source shard, source seq)` order and computes horizons, the
//! workers burn windows — so results remain **bit-identical for any
//! thread count**, persistent pool or not. [`RuntimeStats`] exposes the
//! spawn and allocation counters the regression tests assert on.
//!
//! ## One run of a sharded network (threads > 1)
//!
//! ```text
//! set_threads(N):   spawn N workers          (workers_spawned += N)
//!                      each parks in recv()
//! run_until:        Adopt{shards, env} ──►   workers own their shards
//!   window loop:    Window{horizon, mail, outbox} ──► burn, fill outbox
//!                      ◄── Reply::Window{next, outbox, spent mail}
//!                      (all buffers return to the pool)
//!   run ends:       Release ──►  ◄── Reply::Done{shards}
//!                      workers park again, still alive
//! drop / set_threads(M): channels close, workers exit, threads joined
//! ```

use std::sync::mpsc;
use std::thread::JoinHandle;

use crate::shard::{Env, Remote, Shard};
use crate::time::SimTime;

/// Counters describing the runtime's resource behavior, for tests and
/// diagnostics. Obtain a snapshot with [`crate::Network::runtime_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Worker threads spawned over the network's lifetime. Grows only in
    /// `set_threads` (once per reconfiguration), never in `run_until`.
    pub workers_spawned: u64,
    /// Mailbox buffers allocated because the free-list was empty. Flat
    /// at steady state: once the pool is warm, windows recycle.
    pub mailbox_allocs: u64,
    /// Synchronization windows executed (inline or parallel).
    pub windows: u64,
}

/// Free-list of `Vec<Remote>` mailbox buffers. Buffers keep their
/// capacity across reuse, so a warmed-up pool serves every window
/// allocation-free; only pool misses allocate (and are counted).
pub(crate) struct BufPool {
    free: Vec<Vec<Remote>>,
    allocs: u64,
}

impl BufPool {
    fn new() -> BufPool {
        BufPool {
            free: Vec::new(),
            allocs: 0,
        }
    }

    pub fn get(&mut self) -> Vec<Remote> {
        self.free.pop().unwrap_or_else(|| {
            self.allocs += 1;
            Vec::new()
        })
    }

    pub fn put(&mut self, mut buf: Vec<Remote>) {
        buf.clear();
        self.free.push(buf);
    }
}

/// Commands from the coordinator to a parked worker.
enum Cmd {
    /// Take ownership of `shards` for the duration of one `run_*` call.
    Adopt { shards: Vec<(u32, Shard)>, env: Env },
    /// Run one window: merge `mail` (pre-sorted per shard), burn every
    /// owned shard to `horizon`, collect cross-shard events into
    /// `outbox`.
    Window {
        horizon: SimTime,
        limit: SimTime,
        mail: Vec<(u32, Vec<Remote>)>,
        outbox: Vec<Remote>,
    },
    /// Hand the shards back to the coordinator; park until the next
    /// `Adopt` (the thread stays alive).
    Release,
}

/// Worker-to-coordinator replies.
enum Reply {
    /// One window finished on this worker.
    Window {
        worker: usize,
        /// Earliest pending event across the worker's shards.
        next: SimTime,
        /// Cross-shard events generated this window.
        outbox: Vec<Remote>,
        /// The drained mail buffers, returned for recycling.
        spent: Vec<(u32, Vec<Remote>)>,
    },
    /// The worker's shards, handed back on [`Cmd::Release`].
    Done { shards: Vec<(u32, Shard)> },
}

/// Body of one persistent worker thread. Parks in `recv()` between
/// commands; owns a set of shards between `Adopt` and `Release`; exits
/// when the command channel closes (runtime drop or reconfigure).
/// Communication is pure `std::sync::mpsc`; the worker never touches
/// another shard's state.
fn worker_loop(worker: usize, rx: mpsc::Receiver<Cmd>, tx: mpsc::Sender<Reply>) {
    let mut shards: Vec<(u32, Shard)> = Vec::new();
    let mut env: Option<Env> = None;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Adopt { shards: s, env: e } => {
                shards = s;
                env = Some(e);
            }
            Cmd::Window {
                horizon,
                limit,
                mut mail,
                mut outbox,
            } => {
                let env = env.as_ref().expect("Adopt precedes Window");
                for (id, batch) in &mut mail {
                    let (_, shard) = shards
                        .iter_mut()
                        .find(|(sid, _)| sid == id)
                        .expect("mail routed to an owned shard");
                    for r in batch.drain(..) {
                        shard.insert_remote(r, env);
                    }
                }
                let mut next = SimTime::MAX;
                for (_, shard) in &mut shards {
                    shard.burn(horizon, limit, env);
                    outbox.append(&mut shard.outbox);
                    next = next.min(shard.next_time());
                }
                if tx
                    .send(Reply::Window {
                        worker,
                        next,
                        outbox,
                        spent: mail,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Cmd::Release => {
                env = None;
                if tx
                    .send(Reply::Done {
                        shards: std::mem::take(&mut shards),
                    })
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// One worker thread's handle: its command channel and join handle.
struct Worker {
    tx: mpsc::Sender<Cmd>,
    join: Option<JoinHandle<()>>,
}

/// The persistent execution backend of a sharded [`crate::Network`]:
/// worker threads, their channels, and the mailbox buffer pools.
pub(crate) struct Runtime {
    /// Configured worker-thread count (resolved; always ≥ 1).
    threads: usize,
    workers: Vec<Worker>,
    reply_rx: Option<mpsc::Receiver<Reply>>,
    pub pool: BufPool,
    /// Free-list for the per-worker `(shard, batch)` mail holders.
    mail_pool: Vec<Vec<(u32, Vec<Remote>)>>,
    workers_spawned: u64,
    windows: u64,
}

impl Runtime {
    pub fn new() -> Runtime {
        Runtime {
            threads: 1,
            workers: Vec::new(),
            reply_rx: None,
            pool: BufPool::new(),
            mail_pool: Vec::new(),
            workers_spawned: 0,
            windows: 0,
        }
    }

    /// Resolved worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            workers_spawned: self.workers_spawned,
            mailbox_allocs: self.pool.allocs,
            windows: self.windows,
        }
    }

    /// Count one synchronization window (also called by the inline
    /// window loop so `windows` means the same thing at any thread
    /// count).
    pub fn count_window(&mut self) {
        self.windows += 1;
    }

    /// (Re)configure the pool to `threads` workers. A no-op when the
    /// count is unchanged; otherwise existing workers are joined and a
    /// fresh pool is spawned — the only two places threads are ever
    /// created or destroyed are here and `drop`.
    pub fn configure(&mut self, threads: usize) {
        let threads = threads.max(1);
        if threads == self.threads && (threads == 1 || !self.workers.is_empty()) {
            return;
        }
        self.shutdown();
        self.threads = threads;
        if threads == 1 {
            return;
        }
        let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
        self.reply_rx = Some(reply_rx);
        for w in 0..threads {
            let (tx, rx) = mpsc::channel::<Cmd>();
            let reply_tx = reply_tx.clone();
            let join = std::thread::spawn(move || worker_loop(w, rx, reply_tx));
            self.workers.push(Worker {
                tx,
                join: Some(join),
            });
            self.workers_spawned += 1;
        }
        // The original reply sender drops here: once every worker has
        // exited, `recv` errors instead of blocking forever.
    }

    /// Join all workers (hang up their command channels first).
    fn shutdown(&mut self) {
        let workers = std::mem::take(&mut self.workers);
        for mut w in workers {
            drop(w.tx);
            if let Some(join) = w.join.take() {
                // A worker that panicked already reported via the test
                // harness; don't double-panic in drop paths.
                let _ = join.join();
            }
        }
        self.reply_rx = None;
    }

    /// The window loop across the persistent workers. Shards move into
    /// the workers for the duration of the call (`Adopt`) and come back
    /// at the end (`Release`); the coordinator only routes mailboxes and
    /// computes horizons. Identical window/barrier/merge sequence to the
    /// inline loop, so results match any thread count.
    pub fn run_windows(
        &mut self,
        shards: &mut Vec<Shard>,
        limit: SimTime,
        lookahead: SimTime,
        env: &Env,
    ) {
        let n = shards.len();
        let t = self.threads.min(n);
        debug_assert!(t > 1, "inline loop handles t <= 1");
        let mut worker_next: Vec<SimTime> = vec![SimTime::MAX; t];
        for (i, s) in shards.iter().enumerate() {
            worker_next[i % t] = worker_next[i % t].min(s.next_time());
        }

        // Move the shards into their workers (round-robin by shard id).
        let mut buckets: Vec<Vec<(u32, Shard)>> = (0..t).map(|_| Vec::new()).collect();
        for (i, s) in std::mem::take(shards).into_iter().enumerate() {
            buckets[i % t].push((i as u32, s));
        }
        for (w, bucket) in buckets.into_iter().enumerate() {
            self.workers[w]
                .tx
                .send(Cmd::Adopt {
                    shards: bucket,
                    env: env.clone(),
                })
                .expect("worker alive");
        }

        let mut pending: Vec<Remote> = self.pool.get();
        loop {
            let mut next = worker_next.iter().copied().min().unwrap_or(SimTime::MAX);
            for r in &pending {
                next = next.min(r.at);
            }
            if next > limit || next == SimTime::MAX {
                break;
            }
            let horizon = next + lookahead;
            if horizon == SimTime::MAX {
                break;
            }
            self.windows += 1;
            // Route the pending mail: global deterministic order, then
            // grouped per destination shard, then per owning worker —
            // all through pooled buffers.
            pending.sort_by_key(Remote::key);
            let mut by_shard: Vec<Vec<Remote>> = (0..n).map(|_| self.pool.get()).collect();
            for r in pending.drain(..) {
                by_shard[env.loc[r.dest().0].shard as usize].push(r);
            }
            let mut mails: Vec<Vec<(u32, Vec<Remote>)>> = (0..t)
                .map(|_| self.mail_pool.pop().unwrap_or_default())
                .collect();
            for (sid, batch) in by_shard.into_iter().enumerate() {
                if batch.is_empty() {
                    self.pool.put(batch);
                } else {
                    mails[sid % t].push((sid as u32, batch));
                }
            }
            for (w, mail) in mails.into_iter().enumerate() {
                let outbox = self.pool.get();
                self.workers[w]
                    .tx
                    .send(Cmd::Window {
                        horizon,
                        limit,
                        mail,
                        outbox,
                    })
                    .expect("worker alive");
            }
            let reply_rx = self.reply_rx.as_ref().expect("pool is configured");
            for _ in 0..t {
                match reply_rx.recv().expect("worker alive") {
                    Reply::Window {
                        worker,
                        next,
                        mut outbox,
                        mut spent,
                    } => {
                        worker_next[worker] = next;
                        pending.append(&mut outbox);
                        self.pool.put(outbox);
                        for (_, batch) in spent.drain(..) {
                            self.pool.put(batch);
                        }
                        self.mail_pool.push(spent);
                    }
                    Reply::Done { .. } => unreachable!("no Release sent yet"),
                }
            }
        }

        // Retrieve the shards and re-assemble them in id order.
        for w in 0..t {
            self.workers[w].tx.send(Cmd::Release).expect("worker alive");
        }
        let mut returned: Vec<Option<Shard>> = (0..n).map(|_| None).collect();
        let reply_rx = self.reply_rx.as_ref().expect("pool is configured");
        let mut done = 0;
        while done < t {
            match reply_rx.recv().expect("worker alive") {
                Reply::Done { shards } => {
                    for (id, s) in shards {
                        returned[id as usize] = Some(s);
                    }
                    done += 1;
                }
                Reply::Window { .. } => unreachable!("all windows were joined"),
            }
        }
        *shards = returned
            .into_iter()
            .map(|s| s.expect("every shard returned"))
            .collect();

        // Mail beyond the limit (or from the last window) still has to
        // reach its destination queue for future runs.
        if !pending.is_empty() {
            pending.sort_by_key(Remote::key);
            for r in pending.drain(..) {
                let l = env.loc[r.dest().0];
                shards[l.shard as usize].insert_remote(r, env);
            }
        }
        self.pool.put(pending);
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}
