//! The sharded event engine: conservative parallel discrete-event
//! simulation.
//!
//! A [`crate::Network`] is always a collection of shards. The default
//! is a single shard, which runs the classic sequential loop and behaves
//! exactly as the historical single-queue simulator. Calling
//! [`crate::Network::set_shards`] with a [`ShardMap`] splits the nodes,
//! links and the pending event queue into independent shards — in fabric
//! terms, one shard per pod plus shard 0 for the spine, the controller
//! and management nodes.
//!
//! ## The conservative window protocol
//!
//! Shards only interact through two mechanisms, both of which carry a
//! *lookahead* — a guaranteed minimum latency:
//!
//! * frames crossing an inter-shard link arrive no earlier than the
//!   link's propagation delay after they were transmitted;
//! * control-plane messages arrive exactly `ctrl_delay` after they were
//!   sent.
//!
//! With `lookahead = min(min cross-shard link delay, ctrl_delay)`, any
//! cross-shard event *generated* at time `t` *arrives* at `t + lookahead`
//! or later. The engine exploits this with a barrier loop:
//!
//! ```text
//! next    = min over shards of earliest pending event
//! horizon = next + lookahead
//! every shard burns all events with  at < horizon   (in parallel)
//! barrier: cross-shard events produced this window are exchanged,
//!          sorted by (time, source shard, source sequence)
//! repeat
//! ```
//!
//! No event below the horizon can be affected by another shard, so each
//! shard can process its window without synchronization. Cross-shard
//! events land in a per-window *outbox* and are merged into the
//! destination shard's queue at the barrier, in a deterministic order
//! that does not depend on how many OS threads executed the window.
//! Results are therefore **bit-identical for any `--threads` value**;
//! the thread count only changes wall-clock time.
//!
//! ## Determinism and randomness
//!
//! Each shard owns its own `StdRng` stream derived from the network seed
//! and the shard id, so device randomness never depends on the global
//! interleaving of events. Shard 0 uses the network seed itself, which
//! keeps the single-shard configuration bit-compatible with the
//! pre-shard simulator.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use crate::fault::CtrlProfile;
use crate::link::LinkDir;
use crate::net::NodeId;
use crate::node::{Action, Node, NodeCtx, PortId};
use crate::stats::CtrlStats;
use crate::time::SimTime;

/// Assignment of every node of a network to a shard.
///
/// Build one with [`ShardMap::new`] and [`ShardMap::assign`], then hand
/// it to [`crate::Network::set_shards`]. Nodes that are never assigned
/// default to shard 0 — by convention the *system shard* holding the
/// spine, the controller and management-plane nodes.
#[derive(Debug, Clone)]
pub struct ShardMap {
    n_shards: usize,
    assign: Vec<u32>,
}

impl ShardMap {
    /// A map with `n_shards` shards (at least 1) and every node defaulted
    /// to shard 0.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero.
    pub fn new(n_shards: usize) -> ShardMap {
        assert!(n_shards >= 1, "a network needs at least one shard");
        ShardMap {
            n_shards,
            assign: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Put `node` into `shard`.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn assign(&mut self, node: NodeId, shard: usize) {
        assert!(
            shard < self.n_shards,
            "shard {shard} out of range (map has {})",
            self.n_shards
        );
        if self.assign.len() <= node.0 {
            self.assign.resize(node.0 + 1, 0);
        }
        self.assign[node.0] = shard as u32;
    }

    /// The shard `node` is assigned to (0 if never assigned).
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.assign.get(node.0).copied().unwrap_or(0) as usize
    }

    /// The highest node id this map explicitly assigns, if any — used by
    /// [`crate::Network::set_shards`] to reject maps built against a
    /// different (larger) network.
    pub fn max_assigned_node(&self) -> Option<NodeId> {
        if self.assign.is_empty() {
            None
        } else {
            Some(NodeId(self.assign.len() - 1))
        }
    }
}

/// Where a node lives: its shard and its index within that shard.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Loc {
    pub shard: u32,
    pub idx: u32,
}

/// Immutable per-run context shared by every shard (and cloned into
/// worker threads): the global node→shard table and the control delay.
#[derive(Clone)]
pub(crate) struct Env {
    pub loc: Arc<Vec<Loc>>,
    pub ctrl_delay: SimTime,
    /// Stochastic control-channel impairment (see
    /// [`crate::fault::CtrlProfile`]); the default no-op profile keeps
    /// the historical fast path and RNG streams.
    pub ctrl_profile: CtrlProfile,
}

/// Events of one shard's queue. Node references are *local* indices
/// within the shard; only `Ctrl::from` keeps a global [`NodeId`] because
/// it is handed back to device code.
#[derive(Debug)]
pub(crate) enum Ev {
    /// A frame finishes arriving at a node's port.
    Deliver {
        node: u32,
        port: PortId,
        frame: Bytes,
    },
    /// A device timer fires.
    Timer { node: u32, token: u64 },
    /// A control-plane message arrives.
    Ctrl {
        node: u32,
        from: NodeId,
        data: Bytes,
    },
    /// A link serializer finishes the current frame.
    TxDone { chan: u32 },
    /// A delayed transmit enters the egress queue.
    Emit {
        node: u32,
        port: PortId,
        frame: Bytes,
    },
    /// A scheduled fault fires (see [`crate::fault::FaultPlan`]).
    Fault(FaultEv),
}

/// Shard-local fault events. Link faults reference the egress channel
/// owned by this shard; a full link-down therefore schedules one event
/// per direction, each in the shard owning that direction, at the same
/// instant — which keeps fault processing inside the normal `(at, seq)`
/// order and bit-identical for any thread count.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FaultEv {
    /// Take one egress direction down (queued frames blackhole).
    LinkDown { chan: u32 },
    /// Bring one egress direction back up.
    LinkUp { chan: u32 },
    /// Power-cycle a node: fires [`Node::on_reset`].
    Reset { node: u32 },
    /// Partition a node (global id — the blocked set spans shards) from
    /// the control plane. Replicated into every shard's queue at the
    /// same instant so each sender can decide locally.
    CtrlDown { node: NodeId },
    /// Heal a node's control-plane partition (replicated likewise).
    CtrlUp { node: NodeId },
}

pub(crate) struct Sched {
    pub at: SimTime,
    pub seq: u64,
    pub ev: Ev,
}

impl PartialEq for Sched {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Sched {}
impl PartialOrd for Sched {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sched {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One egress channel: the transmitting half of a duplex link, owned by
/// the shard of the transmitting node. The destination may live in
/// another shard, in which case the final `Deliver` crosses via the
/// outbox.
pub(crate) struct Chan {
    pub dir: LinkDir,
    pub peer: NodeId,
    pub peer_port: PortId,
    pub peer_shard: u32,
    pub peer_idx: u32,
}

/// A cross-shard event in flight between windows. `src_shard`/`src_seq`
/// make the barrier merge order total and thread-count independent.
pub(crate) struct Remote {
    pub at: SimTime,
    pub src_shard: u32,
    pub src_seq: u64,
    pub ev: REv,
}

impl Remote {
    /// Global id of the destination node.
    pub fn dest(&self) -> NodeId {
        match self.ev {
            REv::Deliver { node, .. } | REv::Ctrl { node, .. } => node,
        }
    }

    /// The deterministic merge key used at every barrier.
    pub fn key(&self) -> (SimTime, u32, u64) {
        (self.at, self.src_shard, self.src_seq)
    }
}

/// Payload of a [`Remote`]; node references are global ids, resolved to
/// local indices by the destination shard.
pub(crate) enum REv {
    /// A frame crossing an inter-shard link.
    Deliver {
        node: NodeId,
        port: PortId,
        frame: Bytes,
    },
    /// A control-plane message to a node in another shard.
    Ctrl {
        node: NodeId,
        from: NodeId,
        data: Bytes,
    },
}

/// One shard: a self-contained slice of the network with its own clock,
/// event queue, sequence counter and RNG stream.
pub(crate) struct Shard {
    pub id: u32,
    pub now: SimTime,
    seq: u64,
    queue: BinaryHeap<Sched>,
    pub nodes: Vec<Box<dyn Node>>,
    /// Global id of each local node (parallel to `nodes`).
    pub gids: Vec<NodeId>,
    pub started: Vec<bool>,
    /// Per-node egress map: `ports[idx][port] = Some(chan)` — a plain
    /// vector lookup on the `emit` hot path (one per frame hop) instead
    /// of the former `HashMap<(NodeId, PortId), _>` probe.
    pub ports: Vec<Vec<Option<u32>>>,
    pub chans: Vec<Chan>,
    pub rng: StdRng,
    pub trace: Option<Vec<(SimTime, String)>>,
    pub unconnected_drops: u64,
    pub events_processed: u64,
    /// Frames actually handed to a node's `on_packet`/`on_frames` — the
    /// packet-level delivery volume the flow-level engine compares its
    /// modeled volume against.
    pub delivered_frames: u64,
    /// Bytes of those delivered frames.
    pub delivered_bytes: u64,
    /// Frames that finished their flight into a port whose link was down
    /// on arrival. Counted at the shard (not per link direction) because
    /// the transmitting direction lives in the sender's shard.
    pub blackholed_in_flight: u64,
    /// This shard's replica of the control-plane partition state,
    /// indexed by **global** node id. Every shard processes the same
    /// `CtrlDown`/`CtrlUp` events at the same instant, so the replicas
    /// agree at every window boundary.
    pub ctrl_blocked: Vec<bool>,
    /// Per-channel control impairment counters, keyed by the global
    /// `(from, to)` node pair. Send-side impairments accumulate in the
    /// sender's shard; partition drops of in-flight messages in the
    /// receiver's.
    pub ctrl_stats: HashMap<(usize, usize), CtrlStats>,
    pub outbox: Vec<Remote>,
}

impl Shard {
    /// An empty shard with its own RNG stream.
    pub fn new(id: u32, rng: StdRng) -> Shard {
        Shard {
            id,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            gids: Vec::new(),
            started: Vec::new(),
            ports: Vec::new(),
            chans: Vec::new(),
            rng,
            trace: None,
            unconnected_drops: 0,
            events_processed: 0,
            delivered_frames: 0,
            delivered_bytes: 0,
            blackholed_in_flight: 0,
            ctrl_blocked: Vec::new(),
            ctrl_stats: HashMap::new(),
            outbox: Vec::new(),
        }
    }

    /// True when `node` is partitioned from the control plane.
    pub fn ctrl_blocked(&self, node: NodeId) -> bool {
        self.ctrl_blocked.get(node.0).copied().unwrap_or(false)
    }

    /// Flip `node`'s control-plane partition state in this replica.
    pub fn set_ctrl_blocked(&mut self, node: NodeId, blocked: bool) {
        if self.ctrl_blocked.len() <= node.0 {
            self.ctrl_blocked.resize(node.0 + 1, false);
        }
        self.ctrl_blocked[node.0] = blocked;
    }

    fn ctrl_stat(&mut self, from: NodeId, to: NodeId) -> &mut CtrlStats {
        self.ctrl_stats.entry((from.0, to.0)).or_default()
    }

    /// The RNG stream of shard `id` for a network seeded with `seed`.
    /// Shard 0 uses the seed itself so a single-shard network matches the
    /// historical single-queue simulator bit for bit.
    pub fn rng_stream(seed: u64, id: u32) -> StdRng {
        if id == 0 {
            StdRng::seed_from_u64(seed)
        } else {
            // SplitMix64-style decorrelation of the per-shard streams.
            StdRng::seed_from_u64(seed ^ (u64::from(id)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }
    }

    /// Register a local node; returns its local index.
    pub fn add_node(&mut self, node: Box<dyn Node>, gid: NodeId) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        self.gids.push(gid);
        self.started.push(false);
        self.ports.push(Vec::new());
        idx
    }

    /// Map `(local node, port)` to an egress channel.
    ///
    /// # Panics
    /// Panics if the port is already connected.
    pub fn set_port(&mut self, idx: u32, port: PortId, chan: u32) {
        let row = &mut self.ports[idx as usize];
        let p = usize::from(port.0);
        if row.len() <= p {
            row.resize(p + 1, None);
        }
        if let Some(old) = row[p] {
            // A dead channel (torn out by a host detach) may be replaced
            // on re-attach; it stays allocated as a tombstone so pending
            // TxDone events referencing it resolve safely.
            assert!(
                self.chans[old as usize].dir.dead,
                "port {port} of {} already connected",
                self.gids[idx as usize]
            );
        }
        row[p] = Some(chan);
    }

    fn chan_of(&self, idx: u32, port: PortId) -> Option<u32> {
        self.ports[idx as usize]
            .get(usize::from(port.0))
            .copied()
            .flatten()
    }

    pub fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Sched { at, seq, ev });
    }

    /// Earliest pending event ([`SimTime::MAX`] if idle).
    pub fn next_time(&self) -> SimTime {
        self.queue.peek().map(|s| s.at).unwrap_or(SimTime::MAX)
    }

    /// True while any event is queued. Distinguishes "idle" from "an
    /// event scheduled exactly at [`SimTime::MAX`]", which
    /// [`Shard::next_time`] conflates.
    pub fn has_events(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Drain the queue in `(time, seq)` order (used when repartitioning).
    pub fn drain_events(&mut self) -> Vec<Sched> {
        let mut evs = std::mem::take(&mut self.queue).into_vec();
        evs.sort_by_key(|s| (s.at, s.seq));
        evs
    }

    /// Resolve and enqueue one cross-shard event. Callers must feed
    /// remotes in sorted [`Remote::key`] order so the local sequence
    /// numbers are assigned deterministically.
    pub fn insert_remote(&mut self, r: Remote, env: &Env) {
        let ev = match r.ev {
            REv::Deliver { node, port, frame } => Ev::Deliver {
                node: env.loc[node.0].idx,
                port,
                frame,
            },
            REv::Ctrl { node, from, data } => Ev::Ctrl {
                node: env.loc[node.0].idx,
                from,
                data,
            },
        };
        self.push(r.at, ev);
    }

    /// Fire `on_start` for any nodes that have not started yet, at `now`.
    pub fn start_pending(&mut self, now: SimTime, env: &Env) {
        self.now = now;
        for i in 0..self.nodes.len() {
            if !self.started[i] {
                self.started[i] = true;
                self.dispatch(i as u32, env, |n, ctx| n.on_start(ctx));
            }
        }
    }

    /// Process every event strictly below `horizon` and at or below
    /// `limit`. Cross-shard events generated along the way accumulate in
    /// [`Shard::outbox`].
    pub fn burn(&mut self, horizon: SimTime, limit: SimTime, env: &Env) {
        while let Some(top) = self.queue.peek() {
            if top.at >= horizon || top.at > limit {
                break;
            }
            let sched = self.queue.pop().expect("peeked event exists");
            self.now = sched.at;
            self.events_processed += 1;
            self.handle(sched.ev, env);
        }
    }

    /// Process every event at or below `limit`, with no horizon — the
    /// classic single-queue loop (valid only when the whole network is
    /// one shard, or from the sequential fallback that exchanges after
    /// every shard).
    pub fn burn_all(&mut self, limit: SimTime, env: &Env) {
        while let Some(top) = self.queue.peek() {
            if top.at > limit {
                break;
            }
            let sched = self.queue.pop().expect("peeked event exists");
            self.now = sched.at;
            self.events_processed += 1;
            self.handle(sched.ev, env);
        }
    }

    /// Deliver a frame plus any immediately following same-instant
    /// deliveries for the same node as one burst. Coalescing only merges
    /// events that would have been processed back-to-back anyway (they
    /// are adjacent in `(time, seq)` order), so per-port FIFO order,
    /// action ordering and determinism are untouched; nodes that do not
    /// override [`Node::on_frames`] see the exact per-frame callbacks
    /// they always did. Same-instant events never straddle a window
    /// horizon, so coalescing is also shard-safe.
    fn deliver_burst(&mut self, node: u32, port: PortId, frame: Bytes, env: &Env) {
        let mut frames = vec![(port, frame)];
        loop {
            match self.queue.peek() {
                Some(top) if top.at == self.now => match &top.ev {
                    Ev::Deliver { node: n, .. } if *n == node => {}
                    _ => break,
                },
                _ => break,
            }
            let Some(Sched {
                ev: Ev::Deliver { port, frame, .. },
                ..
            }) = self.queue.pop()
            else {
                unreachable!("peeked event was a Deliver");
            };
            self.events_processed += 1;
            if self.ingress_down(node, port) {
                self.blackholed_in_flight += 1;
                continue;
            }
            frames.push((port, frame));
        }
        self.delivered_frames += frames.len() as u64;
        self.delivered_bytes += frames.iter().map(|(_, f)| f.len() as u64).sum::<u64>();
        if frames.len() == 1 {
            let (port, frame) = frames.pop().expect("exactly one frame");
            self.dispatch(node, env, |n, ctx| n.on_packet(port, frame, ctx));
        } else {
            self.dispatch(node, env, |n, ctx| n.on_frames(frames, ctx));
        }
    }

    /// True when the link into `(node, port)` is down on arrival. The
    /// transmitting direction is owned by the sender's shard, so the
    /// check uses the receiver's *own* egress channel on the same port —
    /// the paired half of the same duplex link, which fault scheduling
    /// always downs at the same instant as its twin.
    fn ingress_down(&self, node: u32, port: PortId) -> bool {
        self.chan_of(node, port)
            .is_some_and(|c| self.chans[c as usize].dir.down)
    }

    fn handle(&mut self, ev: Ev, env: &Env) {
        match ev {
            Ev::Deliver { node, port, frame } => {
                if self.ingress_down(node, port) {
                    self.blackholed_in_flight += 1;
                    return;
                }
                self.deliver_burst(node, port, frame, env);
            }
            Ev::Timer { node, token } => {
                self.dispatch(node, env, |n, ctx| n.on_timer(token, ctx));
            }
            Ev::Ctrl { node, from, data } => {
                // A message already in flight when the receiver was
                // partitioned is discarded on delivery (the send-time
                // check lives in `apply`).
                let to = self.gids[node as usize];
                if self.ctrl_blocked(to) {
                    self.ctrl_stat(from, to).dropped += 1;
                    return;
                }
                self.dispatch(node, env, |n, ctx| n.on_ctrl(from, data, ctx));
            }
            Ev::Emit { node, port, frame } => {
                self.emit(node, port, frame);
            }
            Ev::TxDone { chan } => {
                self.chans[chan as usize].dir.tx_in_flight = false;
                self.kick(chan);
            }
            Ev::Fault(f) => match f {
                FaultEv::LinkDown { chan } => self.chans[chan as usize].dir.take_down(),
                FaultEv::LinkUp { chan } => {
                    self.chans[chan as usize].dir.bring_up();
                    self.kick(chan);
                }
                FaultEv::Reset { node } => {
                    self.dispatch(node, env, |n, ctx| n.on_reset(ctx));
                }
                FaultEv::CtrlDown { node } => self.set_ctrl_blocked(node, true),
                FaultEv::CtrlUp { node } => self.set_ctrl_blocked(node, false),
            },
        }
    }

    fn dispatch(&mut self, idx: u32, env: &Env, f: impl FnOnce(&mut dyn Node, &mut NodeCtx)) {
        let mut actions = Vec::new();
        {
            let node = self.nodes[idx as usize].as_mut();
            let mut ctx = NodeCtx {
                now: self.now,
                node: self.gids[idx as usize],
                actions: &mut actions,
                rng: &mut self.rng,
                trace: self.trace.as_mut(),
            };
            f(node, &mut ctx);
        }
        self.apply(idx, actions, env);
    }

    /// Apply the deferred side effects of one callback of local node
    /// `idx`. Cross-shard control messages go to the outbox; everything
    /// else is local by construction.
    pub fn apply(&mut self, idx: u32, actions: Vec<Action>, env: &Env) {
        for a in actions {
            match a {
                Action::Transmit { port, frame } => self.emit(idx, port, frame),
                Action::TransmitAfter { delay, port, frame } => {
                    let at = self.now + delay;
                    self.push(
                        at,
                        Ev::Emit {
                            node: idx,
                            port,
                            frame,
                        },
                    );
                }
                Action::Timer { at, token } => self.push(at, Ev::Timer { node: idx, token }),
                Action::Ctrl { to, data } => {
                    let from = self.gids[idx as usize];
                    // Control partition: either endpoint down ⇒ the
                    // message dies at the sender. The blocked set is a
                    // per-shard replica, so this check is local and
                    // thread-count independent.
                    if self.ctrl_blocked(from) || self.ctrl_blocked(to) {
                        self.ctrl_stat(from, to).dropped += 1;
                        continue;
                    }
                    let mut at = self.now + env.ctrl_delay;
                    let mut copies = 1u32;
                    let p = env.ctrl_profile;
                    if !p.is_noop() {
                        // Impairment decisions come from this shard's
                        // RNG stream, at the send instant — the one
                        // point where ordering is already fixed.
                        at += p.extra_delay;
                        let st = self.ctrl_stat(from, to);
                        st.sent += 1;
                        if p.drop > 0.0 && self.rng.gen_bool(p.drop) {
                            self.ctrl_stat(from, to).dropped += 1;
                            continue;
                        }
                        if p.dup > 0.0 && self.rng.gen_bool(p.dup) {
                            self.ctrl_stat(from, to).duplicated += 1;
                            copies = 2;
                        }
                        if p.reorder > 0.0
                            && p.reorder_bound > SimTime::ZERO
                            && self.rng.gen_bool(p.reorder)
                        {
                            let jitter = self.rng.gen_range(1..=p.reorder_bound.as_nanos());
                            at += SimTime::from_nanos(jitter);
                            self.ctrl_stat(from, to).reordered += 1;
                        }
                    }
                    let l = env.loc[to.0];
                    for _ in 0..copies {
                        let data = data.clone();
                        if l.shard == self.id {
                            self.push(
                                at,
                                Ev::Ctrl {
                                    node: l.idx,
                                    from,
                                    data,
                                },
                            );
                        } else {
                            let src_seq = self.seq;
                            self.seq += 1;
                            self.outbox.push(Remote {
                                at,
                                src_shard: self.id,
                                src_seq,
                                ev: REv::Ctrl {
                                    node: to,
                                    from,
                                    data,
                                },
                            });
                        }
                    }
                }
            }
        }
    }

    /// Enqueue a frame onto the egress channel of `(idx, port)`.
    fn emit(&mut self, idx: u32, port: PortId, frame: Bytes) {
        let Some(chan) = self.chan_of(idx, port) else {
            self.unconnected_drops += 1;
            return;
        };
        if self.chans[chan as usize].dir.enqueue(frame) {
            self.kick(chan);
        }
    }

    /// If the serializer of `chan` is idle and frames are queued, start
    /// transmitting the head-of-line frame.
    fn kick(&mut self, chan: u32) {
        let now = self.now;
        let c = &mut self.chans[chan as usize];
        if c.dir.tx_in_flight || c.dir.down {
            return;
        }
        let Some(frame) = c.dir.dequeue() else { return };
        let ser = c.dir.spec.ser_time(frame.len());
        let tx_done = now + ser;
        let arrive = tx_done + c.dir.spec.delay;
        c.dir.tx_in_flight = true;
        c.dir.busy_until = tx_done;
        let (peer, peer_port, peer_shard, peer_idx) =
            (c.peer, c.peer_port, c.peer_shard, c.peer_idx);
        self.push(tx_done, Ev::TxDone { chan });
        if peer_shard == self.id {
            self.push(
                arrive,
                Ev::Deliver {
                    node: peer_idx,
                    port: peer_port,
                    frame,
                },
            );
        } else {
            let src_seq = self.seq;
            self.seq += 1;
            self.outbox.push(Remote {
                at: arrive,
                src_shard: self.id,
                src_seq,
                ev: REv::Deliver {
                    node: peer,
                    port: peer_port,
                    frame,
                },
            });
        }
    }
}

// The worker-thread machinery (commands, replies, the worker loop and
// the persistent pool that owns them) lives in [`crate::runtime`]; this
// module only defines the shard state those workers execute.
