//! Traffic generation and measurement endpoints.
//!
//! Generators stamp every frame with a sequence number and send timestamp
//! (16 bytes at the start of the UDP payload); sinks recover the stamp to
//! build one-way latency histograms, like a hardware tester's latency tags.

use bytes::Bytes;
use rand::Rng;
use std::any::Any;
use std::net::Ipv4Addr;

use netpkt::vlan::{push_vlan, VlanTag};
use netpkt::{builder, EtherType, Ipv4Packet, MacAddr, UdpPacket};

use crate::node::{Node, NodeCtx, PortId};
use crate::stats::{Counter, Histogram, SloMeter};
use crate::time::SimTime;

/// Size of the measurement stamp embedded in generated payloads.
pub const STAMP_LEN: usize = 16;

/// The measurement stamp: sequence number + send time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// Monotonic per-generator sequence number.
    pub seq: u64,
    /// Send time in simulated nanoseconds.
    pub sent_ns: u64,
}

impl Stamp {
    /// Serialize into the first [`STAMP_LEN`] bytes of `buf`.
    pub fn write(&self, buf: &mut [u8]) {
        buf[0..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..16].copy_from_slice(&self.sent_ns.to_be_bytes());
    }

    /// Recover a stamp from a payload, if long enough.
    pub fn read(buf: &[u8]) -> Option<Stamp> {
        if buf.len() < STAMP_LEN {
            return None;
        }
        Some(Stamp {
            seq: u64::from_be_bytes(buf[0..8].try_into().unwrap()),
            sent_ns: u64::from_be_bytes(buf[8..16].try_into().unwrap()),
        })
    }

    /// Extract the stamp of a generated frame (Ethernet/[802.1Q]/IPv4/UDP).
    pub fn from_frame(frame: &[u8]) -> Option<Stamp> {
        let view = netpkt::vlan::VlanView::parse(frame).ok()?;
        if view.inner_ethertype != EtherType::IPV4 {
            return None;
        }
        let ip = Ipv4Packet::new_checked(&frame[view.payload_offset..]).ok()?;
        if ip.proto() != netpkt::IpProto::UDP {
            return None;
        }
        let udp = UdpPacket::new_checked(ip.payload()).ok()?;
        Stamp::read(udp.payload())
    }
}

/// One L2/L3/L4 flow a generator can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source MAC.
    pub src_mac: MacAddr,
    /// Destination MAC.
    pub dst_mac: MacAddr,
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
    /// Total Ethernet frame length (without FCS); at least 60.
    pub frame_len: usize,
}

impl FlowSpec {
    /// A simple host-to-host flow with standard test parameters.
    pub fn simple(src: u32, dst: u32, frame_len: usize) -> FlowSpec {
        FlowSpec {
            src_mac: MacAddr::host(src),
            dst_mac: MacAddr::host(dst),
            src_ip: Ipv4Addr::from(0x0a00_0000 | src),
            dst_ip: Ipv4Addr::from(0x0a00_0000 | dst),
            src_port: 10_000 + (src % 50_000) as u16,
            dst_port: 20_000 + (dst % 40_000) as u16,
            frame_len,
        }
    }
}

/// Inter-departure pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Constant bit rate: exactly `pps` frames per second.
    Cbr {
        /// Frames per second.
        pps: f64,
    },
    /// Poisson arrivals with mean rate `pps`.
    Poisson {
        /// Mean frames per second.
        pps: f64,
    },
    /// Pareto (heavy-tailed) inter-departure gaps with mean rate `pps`:
    /// most gaps are short, a few are very long — the burst structure of
    /// elephant flows. Requires `alpha > 1` so the mean exists.
    Pareto {
        /// Mean frames per second.
        pps: f64,
        /// Tail index; smaller = heavier tail. Must exceed 1.
        alpha: f64,
    },
}

impl Pattern {
    fn next_gap(&self, rng: &mut rand::rngs::StdRng) -> SimTime {
        match *self {
            Pattern::Cbr { pps } => SimTime::from_nanos((1e9 / pps) as u64),
            Pattern::Poisson { pps } => {
                let u: f64 = rng.gen_range(1e-12..1.0);
                SimTime::from_nanos(((-u.ln()) * 1e9 / pps) as u64)
            }
            Pattern::Pareto { pps, alpha } => {
                // Scale chosen so the mean gap is exactly 1/pps:
                // mean = alpha·x_m/(alpha-1).
                let x_m = (1e9 / pps) * (alpha - 1.0) / alpha;
                let u: f64 = rng.gen_range(1e-12..1.0);
                SimTime::from_nanos((x_m / u.powf(1.0 / alpha)) as u64)
            }
        }
    }

    /// The configured mean rate.
    pub fn pps(&self) -> f64 {
        match *self {
            Pattern::Cbr { pps } | Pattern::Poisson { pps } | Pattern::Pareto { pps, .. } => pps,
        }
    }
}

/// How a multi-flow generator picks the flow of the next frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowChoice {
    /// Cycle through flows in order.
    RoundRobin,
    /// Pick uniformly at random.
    Random,
}

const TOKEN_SEND: u64 = 1;

/// A stamped UDP traffic generator attached to one port.
pub struct Generator {
    name: String,
    port: PortId,
    pattern: Pattern,
    flows: Vec<FlowSpec>,
    choice: FlowChoice,
    start: SimTime,
    stop: SimTime,
    vlan: Option<u16>,
    next_flow: usize,
    seq: u64,
    sent: Counter,
    sent_bytes: Counter,
    running: bool,
}

impl Generator {
    /// Create a generator; it begins sending at `start` and stops at
    /// `stop` (exclusive).
    pub fn new(
        name: impl Into<String>,
        port: PortId,
        pattern: Pattern,
        flows: Vec<FlowSpec>,
        start: SimTime,
        stop: SimTime,
    ) -> Generator {
        assert!(!flows.is_empty(), "generator needs at least one flow");
        Generator {
            name: name.into(),
            port,
            pattern,
            flows,
            choice: FlowChoice::RoundRobin,
            start,
            stop,
            vlan: None,
            next_flow: 0,
            seq: 0,
            sent: Counter::new(),
            sent_bytes: Counter::new(),
            running: false,
        }
    }

    /// Select flows randomly instead of round-robin.
    pub fn with_random_flows(mut self) -> Self {
        self.choice = FlowChoice::Random;
        self
    }

    /// Tag every generated frame with this VLAN id (e.g. to emulate an
    /// already-tagged trunk feed).
    pub fn with_vlan(mut self, vid: u16) -> Self {
        self.vlan = Some(vid);
        self
    }

    /// Frames sent so far.
    pub fn sent(&self) -> u64 {
        self.sent.get()
    }

    /// Bytes sent so far (frame bytes, no wire overhead).
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes.get()
    }

    /// The configured inter-departure pattern.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// How the generator picks the flow of each frame.
    pub fn choice(&self) -> FlowChoice {
        self.choice
    }

    /// The configured flows.
    pub fn flows(&self) -> &[FlowSpec] {
        &self.flows
    }

    /// When sending begins.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// When sending stops (exclusive).
    pub fn stop(&self) -> SimTime {
        self.stop
    }

    /// The sequence number of the *next* frame (== frames emitted so
    /// far, whether transmitted or credited analytically).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// A representative wire frame of flow `idx`, exactly as the
    /// generator would emit it except for the measurement stamp (zeroed
    /// here — it lives in the UDP payload and cannot change how any
    /// switch classifies the frame). The flow-level engine uses these
    /// templates to probe per-hop cache residency.
    pub fn probe_frame(&self, idx: usize) -> Bytes {
        let f = self.flows[idx];
        let overhead = 14 + 20 + 8; // eth + ipv4 + udp
        let payload_len = f.frame_len.saturating_sub(overhead).max(STAMP_LEN);
        let payload = vec![0u8; payload_len];
        let frame = builder::udp_packet(
            f.src_mac, f.dst_mac, f.src_ip, f.dst_ip, f.src_port, f.dst_port, &payload,
        );
        match self.vlan {
            Some(vid) => push_vlan(&frame, VlanTag::new(vid)).expect("frame is well-formed"),
            None => frame,
        }
    }

    /// Stop emitting without touching the schedule: a pending send timer
    /// will fire and find `running == false`. Used by the flow-level
    /// engine when it promotes this generator's flows; restart with
    /// [`Generator::resume`].
    pub fn pause(&mut self) {
        self.running = false;
    }

    /// Resume packet-level emission after a [`Generator::pause`], with
    /// the next frame due at its CBR slot `start + seq·gap` (strictly in
    /// the future relative to `ctx.now()` whenever the modeled credit
    /// stopped at the current instant). CBR only — it is the only
    /// pattern whose departure times are reconstructible without
    /// consuming RNG, which is what keeps pause/credit/resume invisible
    /// to every other random stream.
    ///
    /// # Panics
    /// Panics if the pattern is not [`Pattern::Cbr`].
    pub fn resume(&mut self, ctx: &mut NodeCtx) {
        let Pattern::Cbr { pps } = self.pattern else {
            panic!("resume requires a CBR generator");
        };
        self.running = true;
        if ctx.now() >= self.stop {
            return;
        }
        let gap = (1e9 / pps) as u64;
        let next = self.start + SimTime::from_nanos(self.seq * gap);
        ctx.schedule(next.saturating_sub(ctx.now()), TOKEN_SEND);
    }

    /// Credit `frames` departures (totalling `bytes`) that the
    /// flow-level engine advanced analytically: counters and round-robin
    /// position move exactly as if the frames had been built and
    /// transmitted.
    pub fn credit_modeled(&mut self, frames: u64, bytes: u64) {
        self.seq += frames;
        self.sent.add(frames);
        self.sent_bytes.add(bytes);
        let n = self.flows.len();
        self.next_flow = (self.next_flow + (frames % n as u64) as usize) % n;
    }

    fn build_frame(&mut self, now: SimTime, rng: &mut rand::rngs::StdRng) -> Bytes {
        let idx = match self.choice {
            FlowChoice::RoundRobin => {
                let i = self.next_flow;
                self.next_flow = (self.next_flow + 1) % self.flows.len();
                i
            }
            FlowChoice::Random => rng.gen_range(0..self.flows.len()),
        };
        let f = self.flows[idx];
        let overhead = 14 + 20 + 8; // eth + ipv4 + udp
        let payload_len = f.frame_len.saturating_sub(overhead).max(STAMP_LEN);
        let mut payload = vec![0u8; payload_len];
        Stamp {
            seq: self.seq,
            sent_ns: now.as_nanos(),
        }
        .write(&mut payload);
        self.seq += 1;
        let frame = builder::udp_packet(
            f.src_mac, f.dst_mac, f.src_ip, f.dst_ip, f.src_port, f.dst_port, &payload,
        );
        match self.vlan {
            Some(vid) => push_vlan(&frame, VlanTag::new(vid)).expect("frame is well-formed"),
            None => frame,
        }
    }
}

impl Node for Generator {
    fn on_start(&mut self, ctx: &mut NodeCtx) {
        self.running = true;
        let delay = self.start.saturating_sub(ctx.now());
        ctx.schedule(delay, TOKEN_SEND);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx) {
        if token != TOKEN_SEND || !self.running {
            return;
        }
        if ctx.now() >= self.stop {
            self.running = false;
            return;
        }
        let now = ctx.now();
        let frame = self.build_frame(now, ctx.rng());
        self.sent.inc();
        self.sent_bytes.add(frame.len() as u64);
        ctx.transmit(self.port, frame);
        let gap = self.pattern.next_gap(ctx.rng());
        ctx.schedule(gap, TOKEN_SEND);
    }

    fn on_packet(&mut self, _port: PortId, _frame: Bytes, _ctx: &mut NodeCtx) {
        // Generators ignore return traffic.
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A measuring sink: counts everything, recovers stamps for latency.
pub struct Sink {
    name: String,
    received: Counter,
    rx_bytes: Counter,
    unstamped: Counter,
    latency: Histogram,
    first_rx: Option<SimTime>,
    last_rx: Option<SimTime>,
    /// Received per UDP destination port — used by the LB experiment to
    /// count per-backend shares when multiple flows land on one sink.
    by_dst_port: std::collections::HashMap<u16, u64>,
    /// One-way latency of the most recent stamped arrival.
    last_latency_ns: Option<u64>,
    /// Optional SLO meter fed with every arrival (see [`Sink::with_slo`]).
    slo: Option<SloMeter>,
}

impl Sink {
    /// Create a named sink.
    pub fn new(name: impl Into<String>) -> Sink {
        Sink {
            name: name.into(),
            received: Counter::new(),
            rx_bytes: Counter::new(),
            unstamped: Counter::new(),
            latency: Histogram::new(),
            first_rx: None,
            last_rx: None,
            by_dst_port: std::collections::HashMap::new(),
            last_latency_ns: None,
            slo: None,
        }
    }

    /// Attach an [`SloMeter`]: every arrival is observed, and any
    /// service gap longer than `threshold` counts as an outage. Read
    /// the results back with [`Sink::slo`] / [`Sink::slo_mut`] (call
    /// [`SloMeter::finish`] once the measurement window closes).
    pub fn with_slo(mut self, threshold: SimTime) -> Self {
        self.slo = Some(SloMeter::new(threshold.as_nanos()));
        self
    }

    /// The SLO meter, if one was attached.
    pub fn slo(&self) -> Option<&SloMeter> {
        self.slo.as_ref()
    }

    /// Mutable SLO meter access (to `finish` the window).
    pub fn slo_mut(&mut self) -> Option<&mut SloMeter> {
        self.slo.as_mut()
    }

    /// Frames received.
    pub fn received(&self) -> u64 {
        self.received.get()
    }

    /// Bytes received.
    pub fn rx_bytes(&self) -> u64 {
        self.rx_bytes.get()
    }

    /// Frames that carried no recoverable stamp.
    pub fn unstamped(&self) -> u64 {
        self.unstamped.get()
    }

    /// Time of the first arrival, if any — the service-establishment
    /// instant in migration-under-traffic scenarios.
    pub fn first_rx(&self) -> Option<SimTime> {
        self.first_rx
    }

    /// Time of the most recent arrival, if any (real or credited).
    pub fn last_rx(&self) -> Option<SimTime> {
        self.last_rx
    }

    /// Credit a window of analytically advanced arrivals: `per_port`
    /// lists `(udp_dst_port, frames)` batches, each frame `frame_len`
    /// bytes with one-way latency `latency_ns`, the last of them landing
    /// at `last_arrival`. Counters, the per-port shares and the latency
    /// histogram move exactly as if the frames had been delivered.
    ///
    /// # Panics
    /// Panics if an [`SloMeter`] is attached: outage detection needs
    /// every individual arrival time, so metered sinks must stay
    /// packet-level.
    pub fn credit_modeled(
        &mut self,
        per_port: &[(u16, u64)],
        frame_len: u64,
        latency_ns: u64,
        last_arrival: SimTime,
    ) {
        assert!(
            self.slo.is_none(),
            "flow-level credit on an SLO-metered sink ({})",
            self.name
        );
        let total: u64 = per_port.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return;
        }
        self.received.add(total);
        self.rx_bytes.add(total * frame_len);
        self.latency.record_n(latency_ns, total);
        self.last_latency_ns = Some(latency_ns);
        if self.first_rx.is_none() {
            self.first_rx = Some(last_arrival);
        }
        self.last_rx = Some(self.last_rx.map_or(last_arrival, |t| t.max(last_arrival)));
        for &(port, n) in per_port {
            if n > 0 {
                *self.by_dst_port.entry(port).or_insert(0) += n;
            }
        }
    }

    /// One-way latency histogram (nanoseconds).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// One-way latency of the most recent stamped arrival, if any. A
    /// converged CBR flow repeats this value frame after frame, which is
    /// what lets the flow-level engine model a promoted flow's arrivals
    /// with a single number.
    pub fn last_latency_ns(&self) -> Option<u64> {
        self.last_latency_ns
    }

    /// Mean receive rate in frames/second over the observation window.
    pub fn rx_pps(&self) -> f64 {
        match (self.first_rx, self.last_rx) {
            (Some(a), Some(b)) if b > a => {
                (self.received.get().saturating_sub(1)) as f64 / (b - a).as_secs_f64()
            }
            _ => 0.0,
        }
    }

    /// Mean goodput in bits/second over the observation window.
    pub fn rx_bps(&self) -> f64 {
        match (self.first_rx, self.last_rx) {
            (Some(a), Some(b)) if b > a => self.rx_bytes.get() as f64 * 8.0 / (b - a).as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Per-UDP-destination-port receive counts.
    pub fn by_dst_port(&self) -> &std::collections::HashMap<u16, u64> {
        &self.by_dst_port
    }

    /// Fold this sink's counters into a [`crate::stats::Rollup`]
    /// (per-pod/per-group aggregation in multi-pod experiments).
    pub fn roll_into(&self, rollup: &mut crate::stats::Rollup) {
        rollup.absorb(self.received.get(), self.rx_bytes.get(), &self.latency);
    }
}

impl Node for Sink {
    fn on_packet(&mut self, _port: PortId, frame: Bytes, ctx: &mut NodeCtx) {
        self.received.inc();
        self.rx_bytes.add(frame.len() as u64);
        let now = ctx.now();
        if self.first_rx.is_none() {
            self.first_rx = Some(now);
        }
        self.last_rx = Some(now);
        if let Some(slo) = self.slo.as_mut() {
            slo.observe(now.as_nanos());
        }
        match Stamp::from_frame(&frame) {
            Some(stamp) => {
                let lat = now.as_nanos().saturating_sub(stamp.sent_ns);
                self.latency.record(lat);
                self.last_latency_ns = Some(lat);
            }
            None => self.unstamped.inc(),
        }
        if let Ok(key) = netpkt::FlowKey::extract(0, &frame) {
            if key.udp_dst != 0 {
                *self.by_dst_port.entry(key.udp_dst).or_insert(0) += 1;
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One aggregated traffic demand produced by a [`TrafficMatrix`]: a
/// bundle of `n_flows` equal-rate flows from one pod to another, sharing
/// a frame size and an aggregate rate. Fabric-agnostic — the experiment
/// layer maps pods to stations and flows to [`FlowSpec`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Pod the flows originate in.
    pub src_pod: u16,
    /// Pod the flows terminate in.
    pub dst_pod: u16,
    /// Number of distinct flows in the bundle.
    pub n_flows: u32,
    /// Aggregate rate of the whole bundle, frames per second.
    pub pps: f64,
    /// Ethernet frame length for every frame of the bundle.
    pub frame_len: usize,
    /// Whether the bundle was drawn from the elephant class.
    pub elephant: bool,
}

/// A seeded, heavy-tailed traffic matrix: a small elephant class carries
/// most of the bytes while the mice class carries most of the flows —
/// the canonical datacenter mix. Deterministic for a given seed and
/// shape, so experiments regenerate the same matrix on every run.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    demands: Vec<Demand>,
}

impl TrafficMatrix {
    /// Fraction of bundles drawn from the elephant class.
    pub const ELEPHANT_FRACTION: f64 = 0.125;

    /// Generate a matrix over `n_pods` pods with `bundles_per_pod`
    /// demands sourced in each pod, each bundling `flows_per_bundle`
    /// flows. Destinations are drawn uniformly over the *other* pods
    /// (self-pod demands only when there is a single pod). Elephants
    /// (12.5% of bundles) run 2–4 frames/s per flow at 1024 B; mice run
    /// 0.05–0.2 frames/s per flow at 128 B.
    pub fn heavy_tailed(
        seed: u64,
        n_pods: u16,
        bundles_per_pod: u16,
        flows_per_bundle: u32,
    ) -> TrafficMatrix {
        use rand::SeedableRng;
        assert!(n_pods >= 1, "need at least one pod");
        assert!(flows_per_bundle >= 1, "need at least one flow per bundle");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x7261_6666_6963_6d78);
        let mut demands = Vec::new();
        for src in 0..n_pods {
            for _ in 0..bundles_per_pod {
                let dst = if n_pods == 1 {
                    0
                } else {
                    // Uniform over the other pods.
                    let d = rng.gen_range(0..n_pods - 1);
                    if d >= src {
                        d + 1
                    } else {
                        d
                    }
                };
                let elephant = rng.gen_bool(Self::ELEPHANT_FRACTION);
                let per_flow = if elephant {
                    rng.gen_range(2.0..4.0)
                } else {
                    rng.gen_range(0.05..0.2)
                };
                demands.push(Demand {
                    src_pod: src,
                    dst_pod: dst,
                    n_flows: flows_per_bundle,
                    pps: per_flow * f64::from(flows_per_bundle),
                    frame_len: if elephant { 1024 } else { 128 },
                    elephant,
                });
            }
        }
        TrafficMatrix { demands }
    }

    /// The generated demands, in (source pod, draw order).
    pub fn demands(&self) -> &[Demand] {
        &self.demands
    }

    /// Total flows across all demands.
    pub fn total_flows(&self) -> u64 {
        self.demands.iter().map(|d| u64::from(d.n_flows)).sum()
    }

    /// Total offered rate in frames per second.
    pub fn total_pps(&self) -> f64 {
        self.demands.iter().map(|d| d.pps).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::net::Network;

    #[test]
    fn stamp_round_trip() {
        let mut buf = [0u8; STAMP_LEN];
        let s = Stamp {
            seq: 42,
            sent_ns: 123_456_789,
        };
        s.write(&mut buf);
        assert_eq!(Stamp::read(&buf), Some(s));
        assert_eq!(Stamp::read(&buf[..8]), None);
    }

    #[test]
    fn stamp_recoverable_from_tagged_frame() {
        let f = FlowSpec::simple(1, 2, 100);
        let mut payload = vec![0u8; 32];
        Stamp {
            seq: 7,
            sent_ns: 999,
        }
        .write(&mut payload);
        let frame = builder::udp_packet(
            f.src_mac, f.dst_mac, f.src_ip, f.dst_ip, f.src_port, f.dst_port, &payload,
        );
        let tagged = push_vlan(&frame, VlanTag::new(101)).unwrap();
        assert_eq!(Stamp::from_frame(&tagged).unwrap().seq, 7);
    }

    #[test]
    fn cbr_generator_hits_target_rate() {
        let mut net = Network::new(7);
        let g = net.add_node(Generator::new(
            "gen",
            PortId(0),
            Pattern::Cbr { pps: 10_000.0 },
            vec![FlowSpec::simple(1, 2, 128)],
            SimTime::ZERO,
            SimTime::from_millis(100),
        ));
        let s = net.add_node(Sink::new("sink"));
        net.connect(g, PortId(0), s, PortId(0), LinkSpec::gigabit());
        net.run_until(SimTime::from_millis(200));
        let sent = net.node_ref::<Generator>(g).sent();
        let recv = net.node_ref::<Sink>(s).received();
        assert_eq!(sent, 1000); // 10 kpps for 100 ms
        assert_eq!(recv, sent);
        let sink = net.node_ref::<Sink>(s);
        assert_eq!(sink.unstamped(), 0);
        // Latency = ser (128+24 B at 1 Gbps = 1216 ns) + 1 µs prop.
        assert_eq!(sink.latency().max(), 2216);
        assert!(
            (sink.rx_pps() - 10_000.0).abs() < 150.0,
            "pps={}",
            sink.rx_pps()
        );
    }

    #[test]
    fn poisson_generator_approximates_rate() {
        let mut net = Network::new(3);
        let g = net.add_node(Generator::new(
            "gen",
            PortId(0),
            Pattern::Poisson { pps: 50_000.0 },
            vec![FlowSpec::simple(1, 2, 60)],
            SimTime::ZERO,
            SimTime::from_secs(1),
        ));
        let s = net.add_node(Sink::new("sink"));
        net.connect(g, PortId(0), s, PortId(0), LinkSpec::gigabit());
        net.run_until(SimTime::from_secs(2));
        let sent = net.node_ref::<Generator>(g).sent() as f64;
        assert!((sent - 50_000.0).abs() < 1_500.0, "sent={sent}");
    }

    #[test]
    fn generator_respects_start_stop_window() {
        let mut net = Network::new(3);
        let g = net.add_node(Generator::new(
            "gen",
            PortId(0),
            Pattern::Cbr { pps: 1_000.0 },
            vec![FlowSpec::simple(1, 2, 60)],
            SimTime::from_millis(500),
            SimTime::from_millis(600),
        ));
        let s = net.add_node(Sink::new("sink"));
        net.connect(g, PortId(0), s, PortId(0), LinkSpec::gigabit());
        net.run_until(SimTime::from_millis(400));
        assert_eq!(net.node_ref::<Generator>(g).sent(), 0);
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.node_ref::<Generator>(g).sent(), 100);
    }

    #[test]
    fn multi_flow_round_robin_covers_all_flows() {
        let flows = vec![
            FlowSpec::simple(1, 2, 60),
            FlowSpec::simple(1, 3, 60),
            FlowSpec::simple(1, 4, 60),
        ];
        let mut net = Network::new(3);
        let g = net.add_node(Generator::new(
            "gen",
            PortId(0),
            Pattern::Cbr { pps: 3_000.0 },
            flows,
            SimTime::ZERO,
            SimTime::from_millis(10),
        ));
        let s = net.add_node(Sink::new("sink"));
        net.connect(g, PortId(0), s, PortId(0), LinkSpec::gigabit());
        net.run_until(SimTime::from_millis(20));
        let sink = net.node_ref::<Sink>(s);
        // 31 sends in [0, 10ms) at 3 kpps (k·333µs for k = 0..=30), dealt
        // round-robin: flow 0 gets 11, flows 1 and 2 get 10 each.
        assert_eq!(sink.by_dst_port().len(), 3);
        assert_eq!(sink.by_dst_port()[&20002], 11);
        assert_eq!(sink.by_dst_port()[&20003], 10);
        assert_eq!(sink.by_dst_port()[&20004], 10);
    }
}
