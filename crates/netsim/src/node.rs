//! The device trait and the context handed to device callbacks.

use bytes::Bytes;
use rand::rngs::StdRng;
use std::any::Any;

use crate::net::NodeId;
use crate::time::SimTime;

/// A node-local port number. Port numbering is per-device and starts at
/// whatever the device chooses (switches in this workspace use 1-based
/// numbering to match OpenFlow, hosts use port 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortId(pub u16);

impl From<u16> for PortId {
    fn from(v: u16) -> Self {
        PortId(v)
    }
}

impl core::fmt::Display for PortId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Deferred side effects collected while a device callback runs and applied
/// by the [`crate::Network`] afterwards.
#[derive(Debug)]
pub(crate) enum Action {
    /// Put a frame on the wire attached to `port` right now.
    Transmit { port: PortId, frame: Bytes },
    /// Put a frame on the wire after an internal processing delay.
    TransmitAfter {
        delay: SimTime,
        port: PortId,
        frame: Bytes,
    },
    /// Fire `on_timer(token)` at `at`.
    Timer { at: SimTime, token: u64 },
    /// Deliver `data` to `to`'s `on_ctrl` after the control-plane delay.
    Ctrl { to: NodeId, data: Bytes },
}

/// Execution context passed to every [`Node`] callback.
///
/// All mutations are buffered and applied by the simulator after the
/// callback returns, so callbacks always observe a consistent snapshot.
pub struct NodeCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) actions: &'a mut Vec<Action>,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) trace: Option<&'a mut Vec<(SimTime, String)>>,
}

impl<'a> NodeCtx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node whose callback is running.
    pub fn self_id(&self) -> NodeId {
        self.node
    }

    /// Transmit `frame` on `port` immediately. If the port is not connected
    /// the frame is silently dropped (and counted by the network).
    pub fn transmit(&mut self, port: PortId, frame: Bytes) {
        self.actions.push(Action::Transmit { port, frame });
    }

    /// Transmit after an internal processing `delay` (models pipeline
    /// latency without device-side timer bookkeeping).
    pub fn transmit_after(&mut self, delay: SimTime, port: PortId, frame: Bytes) {
        self.actions
            .push(Action::TransmitAfter { delay, port, frame });
    }

    /// Schedule `on_timer(token)` to fire `delay` from now.
    pub fn schedule(&mut self, delay: SimTime, token: u64) {
        self.actions.push(Action::Timer {
            at: self.now + delay,
            token,
        });
    }

    /// Send an out-of-band control message (OpenFlow, SNMP, ...) to another
    /// node; it arrives at `on_ctrl` after the network's control delay.
    pub fn ctrl_send(&mut self, to: NodeId, data: Bytes) {
        self.actions.push(Action::Ctrl { to, data });
    }

    /// The deterministic RNG of the node's shard. An unsharded network
    /// has a single stream; a sharded one keeps one stream per shard so
    /// device randomness never depends on global event interleaving (or
    /// the thread count).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Record a trace line (no-op unless tracing was enabled on the
    /// network).
    pub fn trace(&mut self, msg: impl AsRef<str>) {
        let now = self.now;
        let node = self.node.0;
        if let Some(t) = self.trace.as_deref_mut() {
            t.push((now, format!("[{now}] n{node}: {}", msg.as_ref())));
        }
    }
}

/// A simulated device: anything that owns ports and reacts to packets,
/// timers and control messages.
///
/// Nodes must be [`Send`]: a sharded network (see
/// [`crate::Network::set_shards`]) moves each shard's devices onto a
/// worker thread for the duration of a `run_*` call. A device is only
/// ever touched by one thread at a time, so no `Sync` bound is needed.
pub trait Node: Any + Send {
    /// A frame arrived on `port`.
    fn on_packet(&mut self, port: PortId, frame: Bytes, ctx: &mut NodeCtx);

    /// A burst of frames arrived back-to-back (same simulated instant,
    /// possibly on different ports). The default forwards each frame to
    /// [`Node::on_packet`] in arrival order, which is exactly what the
    /// per-frame delivery used to do; devices with a batch-capable fast
    /// path (the software switch) override this to hand the whole burst
    /// to their datapath at once.
    fn on_frames(&mut self, frames: Vec<(PortId, Bytes)>, ctx: &mut NodeCtx) {
        for (port, frame) in frames {
            self.on_packet(port, frame, ctx);
        }
    }

    /// A timer scheduled with [`NodeCtx::schedule`] fired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut NodeCtx) {}

    /// An out-of-band control message arrived.
    fn on_ctrl(&mut self, _from: NodeId, _data: Bytes, _ctx: &mut NodeCtx) {}

    /// Called once when the simulation starts running.
    fn on_start(&mut self, _ctx: &mut NodeCtx) {}

    /// The device was power-cycled by the fault layer (see
    /// [`crate::fault::FaultPlan`]). Implementations must drop whatever
    /// state a real reboot would lose — learned tables, caches, queued
    /// work — and keep only persistent configuration (their "startup
    /// config"). Timers survive in the event queue; devices whose timers
    /// carry pre-reset context must treat stale tokens defensively. The
    /// default is a no-op: a stateless device reboots into the same
    /// behaviour.
    fn on_reset(&mut self, _ctx: &mut NodeCtx) {}

    /// Flow-residency probe for the flow-level engine
    /// ([`crate::flowsim`]): would `frame`, arriving on `port`, be
    /// served entirely from this device's fast path (flow caches, NAT
    /// table) without generating table misses or packet-ins?
    ///
    /// `None` means the device cannot answer (the default — hosts,
    /// legacy bridges); the flowsim layer then relies on the
    /// [`Node::quiescence`] signal alone for that hop. `Some(false)`
    /// vetoes promotion.
    fn flow_resident(&self, _port: PortId, _frame: &[u8]) -> Option<bool> {
        None
    }

    /// A monotonic disturbance counter for the flow-level engine: any
    /// event that could change how this device forwards an established
    /// flow (table miss, packet-in, cache-epoch bump, NAT eviction,
    /// drop, reset) must advance it. The flowsim layer promotes flows
    /// only after this value holds still across whole windows, and
    /// demotes them the moment it moves. `None` (the default) means the
    /// device never disturbs converged flows (e.g. sinks).
    fn quiescence(&self) -> Option<u64> {
        None
    }

    /// Credit this device's throughput counters with `frames`/`bytes`
    /// that the flow-level engine advanced analytically on its behalf.
    /// The default ignores the credit; devices with meaningful
    /// per-frame counters (software switches) override it.
    fn credit_modeled(&mut self, _frames: u64, _bytes: u64) {}

    /// Human-readable name used in traces.
    fn name(&self) -> &str {
        "node"
    }

    /// Downcast support (`&dyn Node → &T`).
    fn as_any(&self) -> &dyn Any;

    /// Downcast support (`&mut dyn Node → &mut T`).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}
