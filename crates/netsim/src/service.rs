//! A bounded multi-server service queue for modelling CPU-bound packet
//! processing inside a device.
//!
//! Devices own a [`ServiceQueue`] and drive it with their timer callbacks:
//!
//! ```text
//! on_packet:  match sq.submit(work) {
//!                 Submit::Start(slot) => schedule(svc_time, TOKEN + slot),
//!                 Submit::Queued | Submit::Dropped => {}
//!             }
//! on_timer:   let work = sq.complete(slot);
//!             if sq.start_queued(slot) { schedule(svc_time, TOKEN + slot) }
//!             ... emit results of `work` ...
//! ```
//!
//! This yields an M/G/k queue whose service times the device computes per
//! item (e.g. from a [`ProcessingTrace`](https://docs.rs) of its pipeline).

use std::collections::VecDeque;

/// Outcome of [`ServiceQueue::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// A server slot was free; service starts now in slot `.0`. The caller
    /// must schedule a completion timer for it.
    Start(usize),
    /// All servers busy; the item waits in the queue.
    Queued,
    /// The queue was full; the item was dropped.
    Dropped,
}

/// Bounded FIFO queue in front of `k` parallel servers.
#[derive(Debug)]
pub struct ServiceQueue<T> {
    slots: Vec<Option<T>>,
    queue: VecDeque<T>,
    capacity: usize,
    drops: u64,
    completed: u64,
    max_queue_len: usize,
}

impl<T> ServiceQueue<T> {
    /// `servers` parallel workers with a waiting room of `capacity` items.
    pub fn new(servers: usize, capacity: usize) -> ServiceQueue<T> {
        assert!(servers >= 1, "need at least one server");
        ServiceQueue {
            slots: (0..servers).map(|_| None).collect(),
            queue: VecDeque::new(),
            capacity,
            drops: 0,
            completed: 0,
            max_queue_len: 0,
        }
    }

    /// Offer an item for service.
    pub fn submit(&mut self, item: T) -> Submit {
        if let Some(free) = self.slots.iter().position(Option::is_none) {
            self.slots[free] = Some(item);
            return Submit::Start(free);
        }
        if self.queue.len() >= self.capacity {
            self.drops += 1;
            return Submit::Dropped;
        }
        self.queue.push_back(item);
        self.max_queue_len = self.max_queue_len.max(self.queue.len());
        Submit::Queued
    }

    /// The item currently served in `slot`.
    ///
    /// # Panics
    /// Panics if the slot is idle.
    pub fn peek(&self, slot: usize) -> &T {
        self.slots[slot].as_ref().expect("peek on idle slot")
    }

    /// Finish the item in `slot`, returning it. The slot becomes idle.
    ///
    /// # Panics
    /// Panics if the slot is idle.
    pub fn complete(&mut self, slot: usize) -> T {
        self.completed += 1;
        self.slots[slot].take().expect("complete on idle slot")
    }

    /// Pull the next queued item into the (idle) `slot`. Returns true if a
    /// new service period begins; the caller must then schedule its timer.
    pub fn start_queued(&mut self, slot: usize) -> bool {
        if self.slots[slot].is_some() {
            return false;
        }
        match self.queue.pop_front() {
            Some(item) => {
                self.slots[slot] = Some(item);
                true
            }
            None => false,
        }
    }

    /// Items dropped because the waiting room was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Items that completed service.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// High-water mark of the waiting room.
    pub fn max_queue_len(&self) -> usize {
        self.max_queue_len
    }

    /// Items currently waiting (not in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of busy servers.
    pub fn busy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_flow() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(1, 2);
        assert_eq!(sq.submit(1), Submit::Start(0));
        assert_eq!(sq.submit(2), Submit::Queued);
        assert_eq!(sq.submit(3), Submit::Queued);
        assert_eq!(sq.submit(4), Submit::Dropped);
        assert_eq!(sq.drops(), 1);
        assert_eq!(*sq.peek(0), 1);
        assert_eq!(sq.complete(0), 1);
        assert!(sq.start_queued(0));
        assert_eq!(*sq.peek(0), 2);
        assert_eq!(sq.complete(0), 2);
        assert!(sq.start_queued(0));
        assert_eq!(sq.complete(0), 3);
        assert!(!sq.start_queued(0));
        assert_eq!(sq.completed(), 3);
        assert_eq!(sq.max_queue_len(), 2);
    }

    #[test]
    fn multi_server_fills_all_slots() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(3, 0);
        assert_eq!(sq.submit(1), Submit::Start(0));
        assert_eq!(sq.submit(2), Submit::Start(1));
        assert_eq!(sq.submit(3), Submit::Start(2));
        assert_eq!(sq.busy(), 3);
        assert_eq!(sq.submit(4), Submit::Dropped);
        sq.complete(1);
        assert_eq!(sq.submit(5), Submit::Start(1));
    }

    #[test]
    #[should_panic(expected = "idle slot")]
    fn complete_idle_slot_panics() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(1, 1);
        sq.complete(0);
    }
}
