//! A bounded multi-server service queue for modelling CPU-bound packet
//! processing inside a device.
//!
//! Each server slot serves a *batch* of one or more items per service
//! period (a DPDK-style burst). Devices own a [`ServiceQueue`] and drive
//! it with their timer callbacks:
//!
//! ```text
//! on_packet:  match sq.submit(work) {
//!                 Submit::Start(slot) => schedule(svc_time, TOKEN + slot),
//!                 Submit::Queued | Submit::Dropped => {}
//!             }
//! on_timer:   let batch = sq.complete(slot);
//!             if sq.start_queued_batch(slot, max_batch) > 0 {
//!                 schedule(svc_time, TOKEN + slot)
//!             }
//!             ... emit results of `batch` ...
//! ```
//!
//! This yields an M/G/k queue whose service times the device computes
//! per batch (e.g. by summing per-frame costs from the
//! `ProcessingTrace`s of its pipeline). Single-item service — the
//! pre-batching behaviour — is just `start_queued` / batches of length
//! one.

use std::collections::VecDeque;

/// Outcome of [`ServiceQueue::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// A server slot was free; service starts now in slot `.0`. The caller
    /// must schedule a completion timer for it.
    Start(usize),
    /// All servers busy; the item waits in the queue.
    Queued,
    /// The queue was full; the item was dropped.
    Dropped,
}

/// Bounded FIFO queue in front of `k` parallel servers, each serving
/// batches of items.
///
/// Two submission disciplines coexist:
///
/// * [`submit`](ServiceQueue::submit) — work-conserving: any idle slot
///   takes the item, overflow waits in one shared queue;
/// * [`submit_to`](ServiceQueue::submit_to) — *steered*: the caller
///   pins the item to a slot (e.g. by RSS flow hash), and overflow
///   waits in that slot's private ring. Per-flow FIFO order is then
///   guaranteed, since one flow only ever visits one slot.
///
/// When a slot refills ([`absorb_queued`](ServiceQueue::absorb_queued)
/// / [`start_queued_batch`](ServiceQueue::start_queued_batch)) it
/// drains its private ring before the shared queue, so both
/// disciplines can be mixed. With one server and only `submit_to(0,
/// ..)` submissions, behaviour is identical to `submit` — the ring is
/// just the shared queue under another name.
#[derive(Debug)]
pub struct ServiceQueue<T> {
    /// In-service batches; an empty vector means the slot is idle.
    slots: Vec<Vec<T>>,
    queue: VecDeque<T>,
    /// Per-slot steering rings for `submit_to`.
    rings: Vec<VecDeque<T>>,
    capacity: usize,
    drops: u64,
    completed: u64,
    max_queue_len: usize,
}

impl<T> ServiceQueue<T> {
    /// `servers` parallel workers with a waiting room of `capacity` items.
    pub fn new(servers: usize, capacity: usize) -> ServiceQueue<T> {
        assert!(servers >= 1, "need at least one server");
        ServiceQueue {
            slots: (0..servers).map(|_| Vec::new()).collect(),
            queue: VecDeque::new(),
            rings: (0..servers).map(|_| VecDeque::new()).collect(),
            capacity,
            drops: 0,
            completed: 0,
            max_queue_len: 0,
        }
    }

    /// Number of server slots.
    pub fn servers(&self) -> usize {
        self.slots.len()
    }

    /// Drop everything in flight: the waiting queues (shared and
    /// per-slot) and every in-service batch (a device power cycle).
    /// Counters survive — they model the observer, not the device.
    /// Completion timers for the flushed batches may still fire;
    /// callers must treat a completion on an idle slot as stale.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.clear();
        }
        for r in &mut self.rings {
            r.clear();
        }
        self.queue.clear();
    }

    /// Offer an item for service.
    pub fn submit(&mut self, item: T) -> Submit {
        if let Some(free) = self.slots.iter().position(Vec::is_empty) {
            self.slots[free].push(item);
            return Submit::Start(free);
        }
        if self.queue.len() >= self.capacity {
            self.drops += 1;
            return Submit::Dropped;
        }
        self.queue.push_back(item);
        self.track_high_water();
        Submit::Queued
    }

    /// Offer an item for service on a specific slot (RSS-style flow
    /// steering). The item starts immediately if the slot is idle with
    /// nothing steered ahead of it; otherwise it waits in the slot's
    /// private ring, bounded by the same `capacity` as the shared
    /// queue.
    pub fn submit_to(&mut self, slot: usize, item: T) -> Submit {
        if self.slots[slot].is_empty() && self.rings[slot].is_empty() {
            self.slots[slot].push(item);
            return Submit::Start(slot);
        }
        if self.rings[slot].len() >= self.capacity {
            self.drops += 1;
            return Submit::Dropped;
        }
        self.rings[slot].push_back(item);
        self.track_high_water();
        Submit::Queued
    }

    fn track_high_water(&mut self) {
        let waiting = self.queue.len() + self.rings.iter().map(VecDeque::len).sum::<usize>();
        self.max_queue_len = self.max_queue_len.max(waiting);
    }

    /// The head item of the batch currently served in `slot`.
    ///
    /// # Panics
    /// Panics if the slot is idle.
    pub fn peek(&self, slot: usize) -> &T {
        self.slots[slot].first().expect("peek on idle slot")
    }

    /// The whole batch currently served in `slot` (empty slice = idle).
    pub fn batch(&self, slot: usize) -> &[T] {
        &self.slots[slot]
    }

    /// Move up to `extra` queued items into the batch already started in
    /// `slot` (before its completion timer is scheduled) — the slot's
    /// own steering ring first, then the shared queue. Returns how
    /// many items were absorbed.
    ///
    /// # Panics
    /// Panics if the slot is idle — there is no service period to join.
    pub fn absorb_queued(&mut self, slot: usize, extra: usize) -> usize {
        assert!(!self.slots[slot].is_empty(), "absorb into idle slot");
        let from_ring = extra.min(self.rings[slot].len());
        for _ in 0..from_ring {
            let item = self.rings[slot].pop_front().expect("length checked");
            self.slots[slot].push(item);
        }
        let from_shared = (extra - from_ring).min(self.queue.len());
        for _ in 0..from_shared {
            let item = self.queue.pop_front().expect("length checked");
            self.slots[slot].push(item);
        }
        from_ring + from_shared
    }

    /// Finish the batch in `slot`, returning its items. The slot becomes
    /// idle.
    ///
    /// # Panics
    /// Panics if the slot is idle.
    pub fn complete(&mut self, slot: usize) -> Vec<T> {
        let items = std::mem::take(&mut self.slots[slot]);
        assert!(!items.is_empty(), "complete on idle slot");
        self.completed += items.len() as u64;
        items
    }

    /// Pull the next queued item into the (idle) `slot`. Returns true if
    /// a new service period begins; the caller must then schedule its
    /// timer.
    pub fn start_queued(&mut self, slot: usize) -> bool {
        self.start_queued_batch(slot, 1) > 0
    }

    /// Pull up to `max` queued items into the (idle) `slot` as one
    /// batched service period — the slot's own steering ring first,
    /// then the shared queue. Returns the number of items started
    /// (0 = slot busy or nothing waiting).
    pub fn start_queued_batch(&mut self, slot: usize, max: usize) -> usize {
        if !self.slots[slot].is_empty() {
            return 0;
        }
        let from_ring = max.min(self.rings[slot].len());
        for _ in 0..from_ring {
            let item = self.rings[slot].pop_front().expect("length checked");
            self.slots[slot].push(item);
        }
        let from_shared = (max - from_ring).min(self.queue.len());
        for _ in 0..from_shared {
            let item = self.queue.pop_front().expect("length checked");
            self.slots[slot].push(item);
        }
        from_ring + from_shared
    }

    /// Credit `n` items as served without passing through the queue.
    ///
    /// The flow-level engine calls this when a cache-resident flow's
    /// frames are advanced analytically: the device never sees them, but
    /// its throughput counters should read as if it had.
    pub fn credit_modeled(&mut self, n: u64) {
        self.completed += n;
    }

    /// Items dropped because the waiting room was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Items that completed service.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// High-water mark of the waiting room.
    pub fn max_queue_len(&self) -> usize {
        self.max_queue_len
    }

    /// Items currently waiting (not in service), across the shared
    /// queue and all steering rings.
    pub fn queue_len(&self) -> usize {
        self.queue.len() + self.rings.iter().map(VecDeque::len).sum::<usize>()
    }

    /// Number of busy servers.
    pub fn busy(&self) -> usize {
        self.slots.iter().filter(|s| !s.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_flow() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(1, 2);
        assert_eq!(sq.submit(1), Submit::Start(0));
        assert_eq!(sq.submit(2), Submit::Queued);
        assert_eq!(sq.submit(3), Submit::Queued);
        assert_eq!(sq.submit(4), Submit::Dropped);
        assert_eq!(sq.drops(), 1);
        assert_eq!(*sq.peek(0), 1);
        assert_eq!(sq.complete(0), vec![1]);
        assert!(sq.start_queued(0));
        assert_eq!(*sq.peek(0), 2);
        assert_eq!(sq.complete(0), vec![2]);
        assert!(sq.start_queued(0));
        assert_eq!(sq.complete(0), vec![3]);
        assert!(!sq.start_queued(0));
        assert_eq!(sq.completed(), 3);
        assert_eq!(sq.max_queue_len(), 2);
    }

    #[test]
    fn multi_server_fills_all_slots() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(3, 0);
        assert_eq!(sq.submit(1), Submit::Start(0));
        assert_eq!(sq.submit(2), Submit::Start(1));
        assert_eq!(sq.submit(3), Submit::Start(2));
        assert_eq!(sq.busy(), 3);
        assert_eq!(sq.submit(4), Submit::Dropped);
        sq.complete(1);
        assert_eq!(sq.submit(5), Submit::Start(1));
    }

    #[test]
    fn queued_items_drain_in_batches() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(1, 16);
        assert_eq!(sq.submit(1), Submit::Start(0));
        for i in 2..=9 {
            assert_eq!(sq.submit(i), Submit::Queued);
        }
        assert_eq!(sq.complete(0), vec![1]);
        // Drain the backlog four at a time.
        assert_eq!(sq.start_queued_batch(0, 4), 4);
        assert_eq!(sq.batch(0), &[2, 3, 4, 5]);
        // A busy slot refuses a second batch.
        assert_eq!(sq.start_queued_batch(0, 4), 0);
        assert_eq!(sq.complete(0), vec![2, 3, 4, 5]);
        assert_eq!(sq.start_queued_batch(0, 100), 4);
        assert_eq!(sq.complete(0), vec![6, 7, 8, 9]);
        assert_eq!(sq.completed(), 9);
    }

    #[test]
    fn absorb_extends_a_started_batch() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(1, 16);
        assert_eq!(sq.submit(1), Submit::Start(0));
        assert_eq!(sq.submit(2), Submit::Queued);
        assert_eq!(sq.submit(3), Submit::Queued);
        assert_eq!(sq.submit(4), Submit::Queued);
        assert_eq!(sq.absorb_queued(0, 2), 2);
        assert_eq!(sq.batch(0), &[1, 2, 3]);
        assert_eq!(sq.queue_len(), 1);
        // Absorbing more than is queued takes what exists.
        assert_eq!(sq.absorb_queued(0, 10), 1);
        assert_eq!(sq.complete(0), vec![1, 2, 3, 4]);
    }

    #[test]
    fn steered_submit_with_one_server_equals_shared_submit() {
        // The N=1 bit-identity guarantee behind `--datapath-cores 1`.
        let mut a: ServiceQueue<u32> = ServiceQueue::new(1, 2);
        let mut b: ServiceQueue<u32> = ServiceQueue::new(1, 2);
        for i in 1..=4 {
            assert_eq!(a.submit(i), b.submit_to(0, i), "item {i}");
        }
        assert_eq!(a.drops(), b.drops());
        assert_eq!(a.complete(0), b.complete(0));
        assert_eq!(
            a.start_queued_batch(0, 8),
            b.start_queued_batch(0, 8),
            "refill order must match"
        );
        assert_eq!(a.complete(0), b.complete(0));
        assert_eq!(a.queue_len(), b.queue_len());
        assert_eq!(a.max_queue_len(), b.max_queue_len());
    }

    #[test]
    fn steered_items_stay_on_their_slot() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(2, 4);
        // Flow A → slot 0, flow B → slot 1; interleaved arrivals.
        assert_eq!(sq.submit_to(0, 10), Submit::Start(0));
        assert_eq!(sq.submit_to(1, 20), Submit::Start(1));
        assert_eq!(sq.submit_to(0, 11), Submit::Queued);
        assert_eq!(sq.submit_to(1, 21), Submit::Queued);
        assert_eq!(sq.submit_to(0, 12), Submit::Queued);
        assert_eq!(sq.queue_len(), 3);
        // Slot 0 finishes: its refill sees only its own flow, in order.
        assert_eq!(sq.complete(0), vec![10]);
        assert_eq!(sq.start_queued_batch(0, 8), 2);
        assert_eq!(sq.batch(0), &[11, 12]);
        // Slot 1 likewise.
        assert_eq!(sq.complete(1), vec![20]);
        assert_eq!(sq.start_queued_batch(1, 8), 1);
        assert_eq!(sq.batch(1), &[21]);
    }

    #[test]
    fn steering_ring_is_bounded_and_drains_before_shared() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(1, 2);
        assert_eq!(sq.submit_to(0, 1), Submit::Start(0));
        assert_eq!(sq.submit_to(0, 2), Submit::Queued);
        assert_eq!(sq.submit_to(0, 3), Submit::Queued);
        assert_eq!(sq.submit_to(0, 4), Submit::Dropped, "ring bounded");
        // A shared-queue item waits behind the steered ones.
        sq.queue.push_back(99);
        assert_eq!(sq.absorb_queued(0, 10), 3);
        assert_eq!(sq.complete(0), vec![1, 2, 3, 99]);
        // An idle slot whose ring holds items must not let a newcomer
        // jump the line.
        assert_eq!(sq.submit_to(0, 5), Submit::Start(0));
        assert_eq!(sq.submit_to(0, 6), Submit::Queued);
        assert_eq!(sq.complete(0), vec![5]);
        assert_eq!(sq.submit_to(0, 7), Submit::Queued, "FIFO behind ring");
        assert_eq!(sq.start_queued_batch(0, 8), 2);
        assert_eq!(sq.batch(0), &[6, 7]);
    }

    #[test]
    fn clear_flushes_steering_rings() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(2, 4);
        sq.submit_to(0, 1);
        sq.submit_to(0, 2);
        sq.submit_to(1, 3);
        sq.clear();
        assert_eq!(sq.queue_len(), 0);
        assert_eq!(sq.busy(), 0);
        assert_eq!(sq.servers(), 2);
    }

    #[test]
    #[should_panic(expected = "idle slot")]
    fn complete_idle_slot_panics() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(1, 1);
        sq.complete(0);
    }

    #[test]
    #[should_panic(expected = "idle slot")]
    fn absorb_into_idle_slot_panics() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(1, 1);
        sq.absorb_queued(0, 1);
    }
}
