//! A bounded multi-server service queue for modelling CPU-bound packet
//! processing inside a device.
//!
//! Each server slot serves a *batch* of one or more items per service
//! period (a DPDK-style burst). Devices own a [`ServiceQueue`] and drive
//! it with their timer callbacks:
//!
//! ```text
//! on_packet:  match sq.submit(work) {
//!                 Submit::Start(slot) => schedule(svc_time, TOKEN + slot),
//!                 Submit::Queued | Submit::Dropped => {}
//!             }
//! on_timer:   let batch = sq.complete(slot);
//!             if sq.start_queued_batch(slot, max_batch) > 0 {
//!                 schedule(svc_time, TOKEN + slot)
//!             }
//!             ... emit results of `batch` ...
//! ```
//!
//! This yields an M/G/k queue whose service times the device computes
//! per batch (e.g. by summing per-frame costs from the
//! `ProcessingTrace`s of its pipeline). Single-item service — the
//! pre-batching behaviour — is just `start_queued` / batches of length
//! one.

use std::collections::VecDeque;

/// Outcome of [`ServiceQueue::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// A server slot was free; service starts now in slot `.0`. The caller
    /// must schedule a completion timer for it.
    Start(usize),
    /// All servers busy; the item waits in the queue.
    Queued,
    /// The queue was full; the item was dropped.
    Dropped,
}

/// Bounded FIFO queue in front of `k` parallel servers, each serving
/// batches of items.
#[derive(Debug)]
pub struct ServiceQueue<T> {
    /// In-service batches; an empty vector means the slot is idle.
    slots: Vec<Vec<T>>,
    queue: VecDeque<T>,
    capacity: usize,
    drops: u64,
    completed: u64,
    max_queue_len: usize,
}

impl<T> ServiceQueue<T> {
    /// `servers` parallel workers with a waiting room of `capacity` items.
    pub fn new(servers: usize, capacity: usize) -> ServiceQueue<T> {
        assert!(servers >= 1, "need at least one server");
        ServiceQueue {
            slots: (0..servers).map(|_| Vec::new()).collect(),
            queue: VecDeque::new(),
            capacity,
            drops: 0,
            completed: 0,
            max_queue_len: 0,
        }
    }

    /// Drop everything in flight: the waiting queue and every
    /// in-service batch (a device power cycle). Counters survive —
    /// they model the observer, not the device. Completion timers for
    /// the flushed batches may still fire; callers must treat a
    /// completion on an idle slot as stale.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.clear();
        }
        self.queue.clear();
    }

    /// Offer an item for service.
    pub fn submit(&mut self, item: T) -> Submit {
        if let Some(free) = self.slots.iter().position(Vec::is_empty) {
            self.slots[free].push(item);
            return Submit::Start(free);
        }
        if self.queue.len() >= self.capacity {
            self.drops += 1;
            return Submit::Dropped;
        }
        self.queue.push_back(item);
        self.max_queue_len = self.max_queue_len.max(self.queue.len());
        Submit::Queued
    }

    /// The head item of the batch currently served in `slot`.
    ///
    /// # Panics
    /// Panics if the slot is idle.
    pub fn peek(&self, slot: usize) -> &T {
        self.slots[slot].first().expect("peek on idle slot")
    }

    /// The whole batch currently served in `slot` (empty slice = idle).
    pub fn batch(&self, slot: usize) -> &[T] {
        &self.slots[slot]
    }

    /// Move up to `extra` queued items into the batch already started in
    /// `slot` (before its completion timer is scheduled). Returns how
    /// many items were absorbed.
    ///
    /// # Panics
    /// Panics if the slot is idle — there is no service period to join.
    pub fn absorb_queued(&mut self, slot: usize, extra: usize) -> usize {
        assert!(!self.slots[slot].is_empty(), "absorb into idle slot");
        let n = extra.min(self.queue.len());
        for _ in 0..n {
            let item = self.queue.pop_front().expect("length checked");
            self.slots[slot].push(item);
        }
        n
    }

    /// Finish the batch in `slot`, returning its items. The slot becomes
    /// idle.
    ///
    /// # Panics
    /// Panics if the slot is idle.
    pub fn complete(&mut self, slot: usize) -> Vec<T> {
        let items = std::mem::take(&mut self.slots[slot]);
        assert!(!items.is_empty(), "complete on idle slot");
        self.completed += items.len() as u64;
        items
    }

    /// Pull the next queued item into the (idle) `slot`. Returns true if
    /// a new service period begins; the caller must then schedule its
    /// timer.
    pub fn start_queued(&mut self, slot: usize) -> bool {
        self.start_queued_batch(slot, 1) > 0
    }

    /// Pull up to `max` queued items into the (idle) `slot` as one
    /// batched service period. Returns the number of items started
    /// (0 = slot busy or queue empty).
    pub fn start_queued_batch(&mut self, slot: usize, max: usize) -> usize {
        if !self.slots[slot].is_empty() {
            return 0;
        }
        let n = max.min(self.queue.len());
        for _ in 0..n {
            let item = self.queue.pop_front().expect("length checked");
            self.slots[slot].push(item);
        }
        n
    }

    /// Credit `n` items as served without passing through the queue.
    ///
    /// The flow-level engine calls this when a cache-resident flow's
    /// frames are advanced analytically: the device never sees them, but
    /// its throughput counters should read as if it had.
    pub fn credit_modeled(&mut self, n: u64) {
        self.completed += n;
    }

    /// Items dropped because the waiting room was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Items that completed service.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// High-water mark of the waiting room.
    pub fn max_queue_len(&self) -> usize {
        self.max_queue_len
    }

    /// Items currently waiting (not in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of busy servers.
    pub fn busy(&self) -> usize {
        self.slots.iter().filter(|s| !s.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_flow() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(1, 2);
        assert_eq!(sq.submit(1), Submit::Start(0));
        assert_eq!(sq.submit(2), Submit::Queued);
        assert_eq!(sq.submit(3), Submit::Queued);
        assert_eq!(sq.submit(4), Submit::Dropped);
        assert_eq!(sq.drops(), 1);
        assert_eq!(*sq.peek(0), 1);
        assert_eq!(sq.complete(0), vec![1]);
        assert!(sq.start_queued(0));
        assert_eq!(*sq.peek(0), 2);
        assert_eq!(sq.complete(0), vec![2]);
        assert!(sq.start_queued(0));
        assert_eq!(sq.complete(0), vec![3]);
        assert!(!sq.start_queued(0));
        assert_eq!(sq.completed(), 3);
        assert_eq!(sq.max_queue_len(), 2);
    }

    #[test]
    fn multi_server_fills_all_slots() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(3, 0);
        assert_eq!(sq.submit(1), Submit::Start(0));
        assert_eq!(sq.submit(2), Submit::Start(1));
        assert_eq!(sq.submit(3), Submit::Start(2));
        assert_eq!(sq.busy(), 3);
        assert_eq!(sq.submit(4), Submit::Dropped);
        sq.complete(1);
        assert_eq!(sq.submit(5), Submit::Start(1));
    }

    #[test]
    fn queued_items_drain_in_batches() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(1, 16);
        assert_eq!(sq.submit(1), Submit::Start(0));
        for i in 2..=9 {
            assert_eq!(sq.submit(i), Submit::Queued);
        }
        assert_eq!(sq.complete(0), vec![1]);
        // Drain the backlog four at a time.
        assert_eq!(sq.start_queued_batch(0, 4), 4);
        assert_eq!(sq.batch(0), &[2, 3, 4, 5]);
        // A busy slot refuses a second batch.
        assert_eq!(sq.start_queued_batch(0, 4), 0);
        assert_eq!(sq.complete(0), vec![2, 3, 4, 5]);
        assert_eq!(sq.start_queued_batch(0, 100), 4);
        assert_eq!(sq.complete(0), vec![6, 7, 8, 9]);
        assert_eq!(sq.completed(), 9);
    }

    #[test]
    fn absorb_extends_a_started_batch() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(1, 16);
        assert_eq!(sq.submit(1), Submit::Start(0));
        assert_eq!(sq.submit(2), Submit::Queued);
        assert_eq!(sq.submit(3), Submit::Queued);
        assert_eq!(sq.submit(4), Submit::Queued);
        assert_eq!(sq.absorb_queued(0, 2), 2);
        assert_eq!(sq.batch(0), &[1, 2, 3]);
        assert_eq!(sq.queue_len(), 1);
        // Absorbing more than is queued takes what exists.
        assert_eq!(sq.absorb_queued(0, 10), 1);
        assert_eq!(sq.complete(0), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "idle slot")]
    fn complete_idle_slot_panics() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(1, 1);
        sq.complete(0);
    }

    #[test]
    #[should_panic(expected = "idle slot")]
    fn absorb_into_idle_slot_panics() {
        let mut sq: ServiceQueue<u32> = ServiceQueue::new(1, 1);
        sq.absorb_queued(0, 1);
    }
}
